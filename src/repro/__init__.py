"""repro — reproduction of Mohanty & Cole, "Autotuning Wavefront Applications
for Multicore Multi-GPU Hybrid Architectures" (PMAM 2014).

The package provides:

* :mod:`repro.core` — the wavefront pattern abstraction, tunable-parameter
  model and the three-phase hybrid decomposition.
* :mod:`repro.hardware` — heterogeneous platform descriptions (Table 4 of the
  paper) and the analytic cost model used in place of the 2014 testbed.
* :mod:`repro.device` — a simulated OpenCL-like harness (contexts, buffers,
  command queues, kernels, work-groups).
* :mod:`repro.runtime` — serial, tiled CPU-parallel, single-GPU, multi-GPU and
  hybrid three-phase executors with both *functional* and *simulate* modes.
* :mod:`repro.apps` — the synthetic training application and the real
  evaluation applications (Nash equilibrium, biological sequence comparison,
  0/1 knapsack).
* :mod:`repro.ml` — from-scratch machine-learning substrate: REP trees, M5P
  model trees, linear SVM, linear regression and cross-validation.
* :mod:`repro.autotuner` — exhaustive search, training-set generation and the
  learned autotuner.
* :mod:`repro.analysis` — helpers that regenerate the paper's figures
  (heatmaps, speedups, average-case aggregates, dispersion statistics).
* :mod:`repro.session` / :mod:`repro.facade` — the high-level
  :class:`~repro.session.Session` facade (plan/execute separation, batched
  serving) that the CLI and new code build on.
* :mod:`repro.server` — the concurrent serving subsystem over the session:
  bounded request queue with backpressure, coalescing batch scheduler,
  JSON metrics, stdlib HTTP endpoint and load generator (the ``repro
  serve`` / ``repro loadgen`` CLI verbs).

The supported entry point is the session::

    from repro import Session

    with Session(system="i7-2600K", tuner="learned") as session:
        plan = session.plan("lcs", 256)     # inspect / save / replay
        result = session.run(plan)

Everything below it (executors, tuners, registries) remains public for
research use, but :func:`~repro.autotuner.tuner.autotune_and_run` is
deprecated in favour of :meth:`~repro.session.Session.solve`.
"""

from __future__ import annotations

from repro.version import __version__
from repro.core.params import InputParams, TunableParams
from repro.core.pattern import WavefrontProblem, WavefrontKernel
from repro.core.plan import ThreePhasePlan
from repro.hardware import platforms
from repro.hardware.system import SystemSpec
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.result import ExecutionResult
from repro.autotuner.protocol import PlanDecision, Tuner
from repro.autotuner.tuner import AutoTuner, autotune_and_run
from repro.facade.plan import ResolvedPlan, load_plan, save_plan
from repro.facade.policy import ExecutionPolicy
from repro.runtime.registry import EngineSpec
from repro.session import Session

__all__ = [
    "__version__",
    "InputParams",
    "TunableParams",
    "WavefrontProblem",
    "WavefrontKernel",
    "ThreePhasePlan",
    "SystemSpec",
    "platforms",
    "HybridExecutor",
    "ExecutionResult",
    "AutoTuner",
    "autotune_and_run",
    "Session",
    "ResolvedPlan",
    "ExecutionPolicy",
    "EngineSpec",
    "PlanDecision",
    "Tuner",
    "save_plan",
    "load_plan",
]
