"""repro — reproduction of Mohanty & Cole, "Autotuning Wavefront Applications
for Multicore Multi-GPU Hybrid Architectures" (PMAM 2014).

The package provides:

* :mod:`repro.core` — the wavefront pattern abstraction, tunable-parameter
  model and the three-phase hybrid decomposition.
* :mod:`repro.hardware` — heterogeneous platform descriptions (Table 4 of the
  paper) and the analytic cost model used in place of the 2014 testbed.
* :mod:`repro.device` — a simulated OpenCL-like harness (contexts, buffers,
  command queues, kernels, work-groups).
* :mod:`repro.runtime` — serial, tiled CPU-parallel, single-GPU, multi-GPU and
  hybrid three-phase executors with both *functional* and *simulate* modes.
* :mod:`repro.apps` — the synthetic training application and the real
  evaluation applications (Nash equilibrium, biological sequence comparison,
  0/1 knapsack).
* :mod:`repro.ml` — from-scratch machine-learning substrate: REP trees, M5P
  model trees, linear SVM, linear regression and cross-validation.
* :mod:`repro.autotuner` — exhaustive search, training-set generation and the
  learned autotuner.
* :mod:`repro.analysis` — helpers that regenerate the paper's figures
  (heatmaps, speedups, average-case aggregates, dispersion statistics).
"""

from __future__ import annotations

from repro.version import __version__
from repro.core.params import InputParams, TunableParams
from repro.core.pattern import WavefrontProblem, WavefrontKernel
from repro.core.plan import ThreePhasePlan
from repro.hardware import platforms
from repro.hardware.system import SystemSpec
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.result import ExecutionResult
from repro.autotuner.tuner import AutoTuner, autotune_and_run

__all__ = [
    "__version__",
    "InputParams",
    "TunableParams",
    "WavefrontProblem",
    "WavefrontKernel",
    "ThreePhasePlan",
    "SystemSpec",
    "platforms",
    "HybridExecutor",
    "ExecutionResult",
    "AutoTuner",
    "autotune_and_run",
]
