"""The tuning parameter space of Table 3.

The exhaustive search (Section 3.1.1) sweeps the *input* parameters
(``dim``, ``tsize``, ``dsize``) and, for each instance, the *tunable*
parameters (``cpu-tile``, ``band``, ``gpu-count``, ``gpu-tile``, ``halo``).
The paper spaces band/halo/tsize values irregularly "to avoid any cyclic
pattern"; :class:`ParameterSpace` reproduces that by generating irregular
sequences deterministically from a seed.

Two preset spaces are provided:

* :meth:`ParameterSpace.paper` — the ranges of Table 3;
* :meth:`ParameterSpace.reduced` — a coarser grid with the same shape, used
  by the test-suite and the quick benchmark mode so sweeps finish in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core.exceptions import InvalidParameterError
from repro.core.params import InputParams, TunableParams
from repro.utils.rng import make_rng

#: Table 3 input parameter values.
PAPER_DIMS = (500, 700, 1100, 1900, 2700, 3100)
PAPER_TSIZES = (10, 50, 100, 500, 750, 1000, 2000, 4000, 6000, 8000, 10000, 12000)
PAPER_DSIZES = (1, 3, 5)
PAPER_CPU_TILES = (1, 2, 4, 8, 10)
PAPER_GPU_TILES = (1, 4, 8, 11, 16, 21, 25)

#: Reduced grids with the same spread, for tests and quick benches.
REDUCED_DIMS = (500, 1100, 1900, 2700)
REDUCED_TSIZES = (10, 100, 750, 2000, 6000, 12000)
REDUCED_DSIZES = (1, 5)
REDUCED_CPU_TILES = (1, 4, 8)
REDUCED_GPU_TILES = (1, 8, 16)


@dataclass(frozen=True)
class ParameterSpace:
    """Cartesian description of the instances and configurations to sweep."""

    dims: Sequence[int] = PAPER_DIMS
    tsizes: Sequence[float] = PAPER_TSIZES
    dsizes: Sequence[int] = PAPER_DSIZES
    cpu_tiles: Sequence[int] = PAPER_CPU_TILES
    gpu_tiles: Sequence[int] = PAPER_GPU_TILES
    #: How many band values to sample per instance (irregularly spaced).
    n_band_values: int = 8
    #: How many non-trivial halo values to sample per (instance, band).
    n_halo_values: int = 4
    #: Seed for the irregular band/halo spacing.
    seed: int = 7

    def __post_init__(self) -> None:
        for name in ("dims", "tsizes", "dsizes", "cpu_tiles", "gpu_tiles"):
            values = getattr(self, name)
            if len(values) == 0:
                raise InvalidParameterError(f"{name} must not be empty")
        if self.n_band_values < 1:
            raise InvalidParameterError("n_band_values must be >= 1")
        if self.n_halo_values < 1:
            raise InvalidParameterError("n_halo_values must be >= 1")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "ParameterSpace":
        """The full Table 3 space."""
        return cls()

    @classmethod
    def reduced(cls, n_band_values: int = 5, n_halo_values: int = 3) -> "ParameterSpace":
        """A coarser space with the same structure, for tests / quick benches."""
        return cls(
            dims=REDUCED_DIMS,
            tsizes=REDUCED_TSIZES,
            dsizes=REDUCED_DSIZES,
            cpu_tiles=REDUCED_CPU_TILES,
            gpu_tiles=REDUCED_GPU_TILES,
            n_band_values=n_band_values,
            n_halo_values=n_halo_values,
        )

    @classmethod
    def tiny(cls) -> "ParameterSpace":
        """A minimal space used by unit tests (a handful of configurations)."""
        return cls(
            dims=(64, 128),
            tsizes=(10, 500),
            dsizes=(1,),
            cpu_tiles=(1, 4),
            gpu_tiles=(1, 8),
            n_band_values=3,
            n_halo_values=2,
        )

    # ------------------------------------------------------------------
    # Instances (input parameters)
    # ------------------------------------------------------------------
    def instances(self) -> Iterator[InputParams]:
        """Iterate every (dim, tsize, dsize) instance of the space."""
        for dim in self.dims:
            for tsize in self.tsizes:
                for dsize in self.dsizes:
                    yield InputParams(dim=dim, tsize=tsize, dsize=dsize)

    @property
    def n_instances(self) -> int:
        """Number of instances in the space."""
        return len(self.dims) * len(self.tsizes) * len(self.dsizes)

    # ------------------------------------------------------------------
    # Tunable values per instance
    # ------------------------------------------------------------------
    def band_values(self, dim: int) -> list[int]:
        """Irregularly spaced band values for a given ``dim``.

        Always includes -1 (no GPU), a small band, a mid band and the maximal
        band ``dim - 1`` (whole grid on the GPU); the remaining values are
        drawn irregularly, deterministically from the space's seed.
        """
        if dim < 2:
            raise InvalidParameterError(f"dim must be >= 2, got {dim}")
        max_band = dim - 1
        anchors = {-1, 0, max_band}
        rng = make_rng(self.seed * 1_000_003 + dim)
        # Irregular interior points, biased towards mid-size bands where the
        # interesting CPU/GPU trade-off lives.
        while len(anchors) < self.n_band_values + 1:
            frac = float(rng.beta(2.0, 2.0))
            anchors.add(int(round(frac * max_band)))
        return sorted(anchors)

    def halo_values(self, dim: int, band: int) -> list[int]:
        """Halo values for a given band: -1 (single GPU) plus irregular sizes."""
        if band < 0:
            return [-1]
        first_len = dim - min(band, dim - 1)
        max_halo = max(0, first_len // 2)
        values = {-1, 0}
        if max_halo > 0:
            values.add(max_halo)
            rng = make_rng(self.seed * 2_000_003 + dim * 31 + band)
            while len(values) < self.n_halo_values + 2 and len(values) < max_halo + 2:
                values.add(int(rng.integers(1, max_halo + 1)))
        return sorted(values)

    def configurations(
        self, instance: InputParams, max_gpus: int = 2
    ) -> Iterator[TunableParams]:
        """Iterate the tunable configurations explored for one instance.

        ``max_gpus`` restricts the space to what the target platform offers
        (the i3-540 system has a single GPU, so no halo dimension).
        """
        if max_gpus < 0:
            raise InvalidParameterError(f"max_gpus must be >= 0, got {max_gpus}")
        dim = instance.dim
        for cpu_tile in self.cpu_tiles:
            for band in self.band_values(dim):
                if band < 0:
                    yield TunableParams(cpu_tile=min(cpu_tile, dim))
                    continue
                if max_gpus == 0:
                    continue
                halos = self.halo_values(dim, band)
                for halo in halos:
                    if halo >= 0 and max_gpus < 2:
                        continue
                    for gpu_tile in self.gpu_tiles:
                        yield TunableParams.from_encoding(
                            cpu_tile=cpu_tile, band=band, halo=halo, gpu_tile=gpu_tile
                        ).clipped(dim)

    def count_configurations(self, instance: InputParams, max_gpus: int = 2) -> int:
        """Number of configurations yielded for ``instance`` (after dedup)."""
        return len(set(self.configurations(instance, max_gpus)))

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        """Summary dictionary (used by the Table 3 bench report)."""
        return {
            "dims": list(self.dims),
            "tsizes": list(self.tsizes),
            "dsizes": list(self.dsizes),
            "cpu_tiles": list(self.cpu_tiles),
            "gpu_tiles": list(self.gpu_tiles),
            "n_band_values": self.n_band_values,
            "n_halo_values": self.n_halo_values,
            "n_instances": self.n_instances,
        }
