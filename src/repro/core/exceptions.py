"""Exception hierarchy for the repro package.

All package-specific errors derive from :class:`ReproError` so callers can
catch everything the library raises deliberately with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidParameterError(ReproError, ValueError):
    """An input or tunable parameter is outside its legal range.

    Raised by :class:`repro.core.params.InputParams` /
    :class:`repro.core.params.TunableParams` validation and by the parameter
    space when an inconsistent combination is requested (e.g. a halo value
    with a single GPU).
    """


class PlanError(ReproError):
    """A three-phase plan could not be constructed or is inconsistent."""


class PartitionError(ReproError):
    """A diagonal could not be partitioned across the requested devices."""


class KernelError(ReproError):
    """A wavefront kernel produced invalid output or was misconfigured."""


class DeviceError(ReproError):
    """An operation on the simulated device layer was invalid.

    Examples: reading a buffer that was never written, enqueuing a kernel on
    a released context, exceeding device memory.
    """


class ExecutionError(ReproError):
    """A runtime executor failed to complete an execution."""


class WorkerCrashError(ExecutionError):
    """A worker process of a multicore pool died mid-execution.

    Raised by :class:`repro.runtime.mp_parallel.MPWavefrontPool` when the
    underlying :class:`concurrent.futures.ProcessPoolExecutor` reports a
    broken pool (a worker was killed or segfaulted).  The pool marks itself
    broken; :class:`repro.runtime.lifecycle.EngineHost` rebuilds it on the
    next request, so one crashed worker costs one failed execution, never a
    poisoned session.  The shard supervisor treats this as a shard crash
    and re-dispatches the in-flight request to a healthy shard.
    """


class ModelNotFittedError(ReproError):
    """A machine-learning model was used before being fitted."""


class SearchError(ReproError):
    """The exhaustive / random search could not produce a result."""


class RegistryError(ReproError, KeyError):
    """A name was not found in one of the package registries.

    Subclasses :class:`KeyError` so existing ``except KeyError`` callers keep
    working; new code should catch :class:`ReproError` (or a specific
    subclass below) instead.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; registry errors are
        # human-readable sentences, so use the plain message.
        return self.args[0] if self.args else ""


class UnknownApplicationError(RegistryError):
    """An application name is not in :data:`repro.apps.registry.APPLICATIONS`."""


class UnknownExecutorError(RegistryError):
    """An executor name is not in :data:`repro.runtime.registry.EXECUTORS`."""


class UnknownSystemError(RegistryError):
    """A system name is neither a Table 4 platform nor ``"local"``."""


class ArtifactError(ReproError):
    """A persisted artifact (profile, model, plan) is missing or unusable.

    Raised by the session facade when a requested tuner cannot be built from
    its on-disk artifacts, e.g. ``tuner="measured"`` before ``repro profile``
    has produced a profile.
    """


class CacheError(ArtifactError):
    """A persistent result-cache or trace artifact is unusable or stale.

    Raised by :mod:`repro.cache` when an on-disk cache directory (or one of
    its entries) carries an incompatible ``format_version``, and by the
    trace record/replay layer (:mod:`repro.server.trace`) for stale or
    malformed trace files.  Subclasses :class:`ArtifactError`, so the CLI
    maps it to exit code 3 — a stale artifact is a missing artifact, not a
    bug.  Note that *corrupt* cache entries (truncated or garbage files) do
    **not** raise: the store treats them as misses, counts them and deletes
    them, because a result cache must stay best-effort under disk faults.
    """


class ServerError(ReproError):
    """The serving layer was used outside its lifecycle contract.

    Examples: submitting to a :class:`repro.server.ReproServer` that was
    closed, or waiting on a request whose server was torn down before the
    request completed.
    """


class BackpressureError(ServerError):
    """A request was rejected by admission control (the queue is full).

    The serving layer's explicit backpressure signal: the bounded request
    queue of :class:`repro.server.ReproServer` is at capacity, so the
    request was refused instead of queued.  The HTTP endpoint maps this to
    status 429; clients should retry with backoff or reduce their offered
    load.
    """


class DeadlineError(ServerError):
    """A request's deadline expired before its result was delivered.

    The serving layer's typed timeout: a per-request ``deadline_s``
    (defaulting to :attr:`repro.server.ServerConfig.default_deadline_s`)
    propagates client → HTTP → queue → scheduler → shard, and a request
    that cannot be answered in time fails with this error instead of
    hanging — the HTTP endpoint maps it to status 504.  The failed ticket
    is counted in the ``deadline_expired`` metrics counter.
    """


class ShardCrashError(ServerError):
    """A worker shard died (or was declared dead) mid-request.

    Raised inside a shard by the chaos-injection layer (a ``kill`` fault)
    and synthesised by the supervisor's monitor when a shard misses its
    heartbeats or hangs past a request deadline.  The supervisor restarts
    the shard under jittered exponential backoff and re-dispatches the
    in-flight request; only a request that exhausts its re-dispatch budget
    surfaces this error to the client.
    """


class ShardUnavailableError(BackpressureError):
    """No healthy shard can accept work (restart budget exhausted).

    The supervisor's circuit breaker: every shard is dead or still backing
    off, so the server sheds the request early instead of queueing it into
    a black hole.  Subclasses :class:`BackpressureError`, so the HTTP
    endpoint answers 429 with a ``Retry-After`` header and load generators
    retry with backoff; with the degraded-fallback flag the server solves
    the request directly in-process instead of raising this.
    """


class UsageError(ReproError):
    """The caller asked for something inconsistent (bad argument combination).

    The CLI maps this (and every other :class:`ReproError` subclass) to an
    exit code in exactly one place, :func:`repro.cli.main`.
    """
