"""Exception hierarchy for the repro package.

All package-specific errors derive from :class:`ReproError` so callers can
catch everything the library raises deliberately with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidParameterError(ReproError, ValueError):
    """An input or tunable parameter is outside its legal range.

    Raised by :class:`repro.core.params.InputParams` /
    :class:`repro.core.params.TunableParams` validation and by the parameter
    space when an inconsistent combination is requested (e.g. a halo value
    with a single GPU).
    """


class PlanError(ReproError):
    """A three-phase plan could not be constructed or is inconsistent."""


class PartitionError(ReproError):
    """A diagonal could not be partitioned across the requested devices."""


class KernelError(ReproError):
    """A wavefront kernel produced invalid output or was misconfigured."""


class DeviceError(ReproError):
    """An operation on the simulated device layer was invalid.

    Examples: reading a buffer that was never written, enqueuing a kernel on
    a released context, exceeding device memory.
    """


class ExecutionError(ReproError):
    """A runtime executor failed to complete an execution."""


class ModelNotFittedError(ReproError):
    """A machine-learning model was used before being fitted."""


class SearchError(ReproError):
    """The exhaustive / random search could not produce a result."""
