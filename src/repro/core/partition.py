"""Multi-GPU partitioning of band diagonals and halo bookkeeping (Figure 3).

When two GPUs share the band, every diagonal is split into contiguous
segments, one per GPU.  Because the wavefront dependencies reach across the
split point, each GPU also keeps a *halo* of ``halo`` cells belonging to its
neighbour.  The halo data goes stale as successive diagonals are computed
locally; after ``halo`` steps (or every step when ``halo == 0``) the fresh
border values must be exchanged through the host — a *halo swap*.

The functions here are pure geometry/bookkeeping; the actual data movement is
performed by :mod:`repro.runtime.gpu_multi` through the simulated device
layer, and the costs are charged by :mod:`repro.hardware.costmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import PartitionError


@dataclass(frozen=True)
class DiagonalPartition:
    """One GPU's share of a diagonal, in diagonal-local offsets.

    ``own_start .. own_stop`` (half-open) is the region this GPU owns (writes
    authoritatively); ``halo_lo`` / ``halo_hi`` are the number of extra cells
    it additionally computes redundantly below/above its own region so that
    border dependencies can be satisfied locally between halo swaps.
    """

    device: int
    own_start: int
    own_stop: int
    halo_lo: int
    halo_hi: int

    @property
    def own_cells(self) -> int:
        """Number of diagonal cells this partition owns (halo excluded)."""
        return self.own_stop - self.own_start

    @property
    def compute_start(self) -> int:
        """First diagonal-local offset this GPU computes (including halo)."""
        return self.own_start - self.halo_lo

    @property
    def compute_stop(self) -> int:
        """One past the last diagonal-local offset this GPU computes."""
        return self.own_stop + self.halo_hi

    @property
    def compute_cells(self) -> int:
        """Cells computed including redundant halo cells."""
        return self.compute_stop - self.compute_start

    @property
    def redundant_cells(self) -> int:
        """Cells computed redundantly because of the halo overlap."""
        return self.halo_lo + self.halo_hi


def partition_diagonal(
    length: int, gpu_count: int, halo: int
) -> list[DiagonalPartition]:
    """Split a diagonal of ``length`` cells across ``gpu_count`` GPUs.

    The split is as even as possible; the halo is clipped so a device never
    computes outside the diagonal.  ``gpu_count == 1`` returns a single
    partition covering everything with no halo.
    """
    if length < 1:
        raise PartitionError(f"diagonal length must be >= 1, got {length}")
    if gpu_count < 1:
        raise PartitionError(f"gpu_count must be >= 1, got {gpu_count}")
    if gpu_count == 1:
        return [DiagonalPartition(0, 0, length, 0, 0)]
    if halo < 0:
        raise PartitionError(f"halo must be >= 0 for {gpu_count} GPUs, got {halo}")

    base = length // gpu_count
    extra = length % gpu_count
    partitions: list[DiagonalPartition] = []
    start = 0
    for dev in range(gpu_count):
        size = base + (1 if dev < extra else 0)
        stop = start + size
        halo_lo = min(halo, start) if dev > 0 else 0
        halo_hi = min(halo, length - stop) if dev < gpu_count - 1 else 0
        partitions.append(
            DiagonalPartition(
                device=dev,
                own_start=start,
                own_stop=stop,
                halo_lo=halo_lo,
                halo_hi=halo_hi,
            )
        )
        start = stop
    if start != length:  # pragma: no cover - arithmetic invariant
        raise PartitionError("partitioning did not cover the diagonal exactly")
    return partitions


def swap_interval(halo: int) -> int:
    """Number of diagonal steps between successive halo swaps.

    A halo of ``h`` cells lets each GPU compute ``h`` diagonals before the
    border values it holds are too stale to produce its *own* cells correctly;
    with ``h == 0`` an exchange is needed after every diagonal.
    """
    if halo < 0:
        raise PartitionError(f"halo must be >= 0, got {halo}")
    return max(1, halo)


def count_halo_swaps(n_diagonals: int, halo: int) -> int:
    """How many halo swaps a band of ``n_diagonals`` needs with a given halo."""
    if n_diagonals <= 1:
        return 0
    interval = swap_interval(halo)
    # A swap happens after every `interval` computed diagonals except the last
    # group (no further diagonals depend on it).
    return max(0, -(-n_diagonals // interval) - 1)


def redundant_cells_for_band(
    diagonal_lengths: list[int], gpu_count: int, halo: int
) -> int:
    """Total redundant (halo) cells computed across a band of diagonals."""
    if gpu_count <= 1:
        return 0
    total = 0
    for length in diagonal_lengths:
        for part in partition_diagonal(length, gpu_count, halo):
            total += part.redundant_cells
    return total


def halo_swap_nbytes(
    diagonal_length: int, gpu_count: int, halo: int, element_nbytes: int
) -> int:
    """Bytes moved through the host by one halo swap at a given diagonal length.

    Each internal boundary exchanges ``halo + 1`` cells in each direction
    (the halo region plus the owner's border cell), and every hop goes
    device -> host -> device, so the byte count below is per direction;
    the cost model charges host and device legs separately.
    """
    if gpu_count <= 1:
        return 0
    boundaries = gpu_count - 1
    cells = min(halo + 1, diagonal_length)
    return boundaries * 2 * cells * element_nbytes
