"""The user-facing wavefront pattern API.

An application supplies a :class:`WavefrontKernel` — the per-element
recurrence step — and wraps it with input parameters into a
:class:`WavefrontProblem`.  Executors never know anything about the
application beyond this interface, which is precisely the property the paper
exploits to train its autotuner on a synthetic application and deploy it on
real ones.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.core.exceptions import InvalidParameterError, KernelError
from repro.core.grid import WavefrontGrid
from repro.core.params import InputParams

#: Signature of a fused diagonal evaluator:
#: ``evaluate(d, i_min, i_max, west, north, northwest, out) -> None``.
DiagonalEvaluator = Callable[[int, int, int, np.ndarray, np.ndarray, np.ndarray, np.ndarray], None]


class WavefrontKernel(abc.ABC):
    """The per-element recurrence of a wavefront application.

    Subclasses must implement :meth:`diagonal`, the vectorised evaluation of
    one anti-diagonal given the west / north / north-west neighbour values.
    A scalar convenience wrapper :meth:`cell` is provided for tests and for
    kernels that are inherently scalar.

    The two cost attributes ``tsize`` and ``dsize`` describe the kernel on the
    synthetic scale of the paper (Section 3.2.1): ``tsize`` is the task
    granularity in synthetic-kernel iterations and ``dsize`` the number of
    float payload values per element.
    """

    #: Task granularity on the synthetic scale (see Section 3.2.1).
    tsize: float = 1.0
    #: Data granularity (number of payload floats per element).
    dsize: int = 0
    #: Human-readable kernel name.
    name: str = "kernel"

    @abc.abstractmethod
    def diagonal(
        self,
        i: np.ndarray,
        j: np.ndarray,
        west: np.ndarray,
        north: np.ndarray,
        northwest: np.ndarray,
    ) -> np.ndarray:
        """Compute the values of the cells ``(i, j)`` of one anti-diagonal.

        All five arguments are 1-D arrays of equal length; out-of-grid
        neighbours arrive as the problem's boundary value.  The return value
        must be a 1-D float array of the same length.
        """

    def cell(self, i: int, j: int, west: float, north: float, northwest: float) -> float:
        """Scalar evaluation of a single cell (reference/checking path)."""
        out = self.diagonal(
            np.array([i]), np.array([j]),
            np.array([west], dtype=float),
            np.array([north], dtype=float),
            np.array([northwest], dtype=float),
        )
        return float(out[0])

    def make_diagonal_evaluator(self, dim: int, boundary: float) -> "DiagonalEvaluator | None":
        """Optional fused fast path used by the vectorized engine.

        A kernel may return a callable ``evaluate(d, i_min, i_max, west,
        north, northwest, out)`` that writes the values of rows
        ``i_min .. i_max`` of diagonal ``d`` into the 1-D array ``out``
        (length ``i_max - i_min + 1``), given read-only neighbour views of
        the same length.  The evaluator is built once per sweep, so it can
        precompute position-dependent tables (substitution scores, payoff
        preferences, ...) and use in-place ufuncs; it must produce results
        numerically identical to :meth:`diagonal`.

        The default returns ``None``, meaning the engine falls back to
        :meth:`diagonal` with explicit index arrays — still batched per
        diagonal, just without the fused precomputation.
        """
        return None

    def reconstruct_witness(self, values: np.ndarray) -> "np.ndarray | None":
        """Optional traceback over the completed value grid.

        Kernels whose answer has a *certificate* — the decoded state path of
        a Viterbi recurrence, the taken-item set of a knapsack policy — may
        override this to reconstruct it from the finished ``dim x dim``
        value grid.  The return value must be a 1-D ``int64`` array (the
        shape is kernel-defined) that is a pure function of ``values`` and
        the kernel's own tables, so backends producing identical grids
        yield byte-identical witnesses.  Executors call this exactly once
        per functional run and attach the result to the
        :class:`repro.runtime.result.ExecutionResult`; the default ``None``
        means the kernel has no witness.
        """
        return None

    def validate_output(self, values: np.ndarray, expected_len: int) -> np.ndarray:
        """Check a diagonal result for shape/NaN problems and return it."""
        values = np.asarray(values, dtype=float)
        if values.ndim != 1 or values.shape[0] != expected_len:
            raise KernelError(
                f"kernel {self.name!r} returned shape {values.shape}, "
                f"expected ({expected_len},)"
            )
        if not np.all(np.isfinite(values)):
            raise KernelError(f"kernel {self.name!r} produced non-finite values")
        return values


class FunctionKernel(WavefrontKernel):
    """Adapter turning a plain function into a :class:`WavefrontKernel`.

    The function receives ``(i, j, west, north, northwest)`` arrays and
    returns the diagonal's values.  Useful for quick experiments:

    >>> import numpy as np
    >>> k = FunctionKernel(lambda i, j, w, n, nw: np.maximum(w, n) + 1.0, tsize=1.0)
    >>> k.cell(1, 1, 2.0, 3.0, 0.0)
    4.0
    """

    def __init__(
        self,
        func: Callable[..., np.ndarray],
        tsize: float = 1.0,
        dsize: int = 0,
        name: str = "function-kernel",
    ) -> None:
        if tsize <= 0:
            raise InvalidParameterError(f"tsize must be positive, got {tsize}")
        if dsize < 0:
            raise InvalidParameterError(f"dsize must be >= 0, got {dsize}")
        self._func = func
        self.tsize = float(tsize)
        self.dsize = int(dsize)
        self.name = name

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        """Delegate one anti-diagonal to the wrapped function."""
        return self._func(i, j, west, north, northwest)


class WavefrontProblem:
    """A wavefront instance: a kernel plus the size of the grid it sweeps."""

    def __init__(
        self,
        dim: int,
        kernel: WavefrontKernel,
        boundary: float = 0.0,
        name: str | None = None,
    ) -> None:
        if dim < 2:
            raise InvalidParameterError(f"dim must be >= 2, got {dim}")
        self.dim = int(dim)
        self.kernel = kernel
        self.boundary = float(boundary)
        self.name = name or kernel.name

    def input_params(self) -> InputParams:
        """The instance's (dim, tsize, dsize) characteristics."""
        return InputParams(dim=self.dim, tsize=self.kernel.tsize, dsize=self.kernel.dsize)

    def make_grid(self) -> WavefrontGrid:
        """Allocate an empty value grid for this problem."""
        return WavefrontGrid(self.dim, self.kernel.dsize)

    def features(self) -> dict[str, float]:
        """Features presented to the autotuner for this problem."""
        return self.input_params().features()

    def __getstate__(self) -> dict:
        """Pickle without process-local caches.

        Runtime layers memoise derived state on the problem under
        ``_cached_*`` attributes (e.g. the vectorized sweep engine, whose
        fused evaluators are closures and unpicklable).  Those caches are
        meaningless in another process — the multicore backend ships
        problems to pool workers under spawn start methods — so they are
        dropped here and rebuilt lazily on the receiving side.
        """
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.startswith("_cached_")
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WavefrontProblem(name={self.name!r}, dim={self.dim}, "
            f"tsize={self.kernel.tsize}, dsize={self.kernel.dsize})"
        )
