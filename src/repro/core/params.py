"""Input and tunable parameter models (Tables 1 and 2 of the paper).

Input parameters describe a wavefront *instance*:

* ``dim``   — width of the (square) array,
* ``tsize`` — granularity of the per-element computation, measured in units of
  one iteration of the synthetic kernel on a single CPU core,
* ``dsize`` — number of floating-point payload values per element (each
  element additionally carries two ints, so the element size in bytes is
  ``8 + 8 * dsize``).

Tunable parameters are the targets of the autotuner:

* ``cpu_tile``  — side length of the square CPU tiles,
* ``band``      — number of diagonals on each side of the main anti-diagonal
  offloaded to the GPU(s); ``-1`` means the GPU is not used,
* ``gpu_count`` — number of GPU devices used (0, 1 or 2),
* ``gpu_tile``  — work-group tiling factor inside the GPU,
* ``halo``      — overlap between the partitions of neighbouring GPUs;
  ``-1`` when fewer than two GPUs are used.

The paper overloads ``band`` and ``halo`` to encode ``gpu_count``
(Section 3.1.1): ``band == -1`` means no GPU, ``band >= 0`` with
``halo == -1`` means one GPU, and ``band >= 0`` with ``halo >= 0`` means two
GPUs.  :meth:`TunableParams.from_encoding` implements exactly that decoding,
and :meth:`TunableParams.to_encoding` the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.core.exceptions import InvalidParameterError

#: Size in bytes of the two ``int`` bookkeeping fields each element carries.
ELEMENT_INT_BYTES = 8
#: Size in bytes of one floating point payload value.
ELEMENT_FLOAT_BYTES = 8


@dataclass(frozen=True, order=True)
class InputParams:
    """Characteristics of a wavefront instance (Table 1)."""

    dim: int
    tsize: float
    dsize: int

    def __post_init__(self) -> None:
        if self.dim < 2:
            raise InvalidParameterError(f"dim must be >= 2, got {self.dim}")
        if self.tsize <= 0:
            raise InvalidParameterError(f"tsize must be positive, got {self.tsize}")
        if self.dsize < 0:
            raise InvalidParameterError(f"dsize must be >= 0, got {self.dsize}")

    @property
    def element_nbytes(self) -> int:
        """Size of one grid element in bytes (2 ints + ``dsize`` floats)."""
        return ELEMENT_INT_BYTES + ELEMENT_FLOAT_BYTES * self.dsize

    @property
    def cells(self) -> int:
        """Total number of elements in the square grid."""
        return self.dim * self.dim

    @property
    def total_nbytes(self) -> int:
        """Total size of the grid in bytes."""
        return self.cells * self.element_nbytes

    @property
    def n_diagonals(self) -> int:
        """Number of anti-diagonals in the square grid."""
        return 2 * self.dim - 1

    @property
    def main_diagonal(self) -> int:
        """Index of the longest (main) anti-diagonal."""
        return self.dim - 1

    def features(self) -> dict[str, float]:
        """Feature dictionary used by the machine-learning tuner."""
        return {"dim": float(self.dim), "tsize": float(self.tsize), "dsize": float(self.dsize)}

    def with_(self, **kwargs) -> "InputParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True, order=True)
class TunableParams:
    """The five tunable parameters of the implementation strategy (Table 2)."""

    cpu_tile: int = 1
    band: int = -1
    gpu_count: int = 0
    gpu_tile: int = 1
    halo: int = -1

    def __post_init__(self) -> None:
        if self.cpu_tile < 1:
            raise InvalidParameterError(f"cpu_tile must be >= 1, got {self.cpu_tile}")
        if self.band < -1:
            raise InvalidParameterError(f"band must be >= -1, got {self.band}")
        if self.gpu_count not in (0, 1, 2):
            raise InvalidParameterError(
                f"gpu_count must be 0, 1 or 2, got {self.gpu_count}"
            )
        if self.gpu_tile < 1:
            raise InvalidParameterError(f"gpu_tile must be >= 1, got {self.gpu_tile}")
        if self.halo < -1:
            raise InvalidParameterError(f"halo must be >= -1, got {self.halo}")
        # Consistency of the band/halo/gpu_count encoding (Section 3.1.1).
        if self.gpu_count == 0:
            if self.band != -1:
                raise InvalidParameterError(
                    "band must be -1 when gpu_count is 0 "
                    f"(got band={self.band})"
                )
            if self.halo != -1:
                raise InvalidParameterError(
                    "halo must be -1 when gpu_count is 0 "
                    f"(got halo={self.halo})"
                )
        else:
            if self.band < 0:
                raise InvalidParameterError(
                    f"band must be >= 0 when gpu_count={self.gpu_count}"
                )
            if self.gpu_count == 1 and self.halo != -1:
                raise InvalidParameterError(
                    "halo must be -1 for a single GPU "
                    f"(got halo={self.halo})"
                )
            if self.gpu_count == 2 and self.halo < 0:
                raise InvalidParameterError(
                    "halo must be >= 0 for two GPUs "
                    f"(got halo={self.halo})"
                )

    # ------------------------------------------------------------------
    # Encoding helpers (paper Section 3.1.1)
    # ------------------------------------------------------------------
    @classmethod
    def from_encoding(
        cls, cpu_tile: int, band: int, halo: int, gpu_tile: int = 1
    ) -> "TunableParams":
        """Decode the paper's overloaded (band, halo) encoding.

        ``band == -1``              -> no GPU,
        ``band >= 0, halo == -1``   -> one GPU,
        ``band >= 0, halo >= 0``    -> two GPUs.
        """
        if band < 0:
            return cls(cpu_tile=cpu_tile, band=-1, gpu_count=0, gpu_tile=1, halo=-1)
        gpu_count = 2 if halo >= 0 else 1
        return cls(
            cpu_tile=cpu_tile,
            band=band,
            gpu_count=gpu_count,
            gpu_tile=gpu_tile,
            halo=halo,
        )

    def to_encoding(self) -> tuple[int, int, int, int]:
        """Return the (cpu_tile, band, halo, gpu_tile) overloaded encoding."""
        return (self.cpu_tile, self.band, self.halo, self.gpu_tile)

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    @property
    def uses_gpu(self) -> bool:
        """True when at least one GPU participates in the execution."""
        return self.gpu_count > 0 and self.band >= 0

    @property
    def is_cpu_only(self) -> bool:
        """True when the whole computation runs on the CPU."""
        return not self.uses_gpu

    @property
    def offloaded_diagonals(self) -> int:
        """Number of diagonals assigned to the GPU phase (``2*band + 1``)."""
        if not self.uses_gpu:
            return 0
        return 2 * self.band + 1

    def clipped(self, dim: int) -> "TunableParams":
        """Clip band/halo/tiles to the legal maxima for a ``dim`` x ``dim`` grid.

        The exhaustive search enumerates band/halo values on an absolute
        scale (Table 3); for small grids those have to be clipped so the
        resulting plan is well formed.
        """
        if dim < 2:
            raise InvalidParameterError(f"dim must be >= 2, got {dim}")
        cpu_tile = min(self.cpu_tile, dim)
        if not self.uses_gpu:
            return TunableParams(cpu_tile=cpu_tile)
        band = min(self.band, dim - 1)
        gpu_tile = max(1, min(self.gpu_tile, dim))
        if self.gpu_count == 2:
            # The first offloaded diagonal has length dim - band; the halo may
            # not exceed half of it (Table 3).
            first_len = dim - band
            max_halo = max(0, first_len // 2)
            halo = min(self.halo, max_halo)
        else:
            halo = -1
        return TunableParams(
            cpu_tile=cpu_tile,
            band=band,
            gpu_count=self.gpu_count,
            gpu_tile=gpu_tile,
            halo=halo,
        )

    def features(self) -> dict[str, float]:
        """Feature dictionary (targets) used by the machine-learning tuner."""
        return {
            "cpu_tile": float(self.cpu_tile),
            "band": float(self.band),
            "gpu_count": float(self.gpu_count),
            "gpu_tile": float(self.gpu_tile),
            "halo": float(self.halo),
        }

    @classmethod
    def from_features(cls, feats: Mapping[str, float], dim: int | None = None) -> "TunableParams":
        """Build tunables from (possibly fractional) predicted feature values.

        Predictions from regression trees are real numbers; they are rounded
        and snapped to the nearest legal value, and optionally clipped to the
        instance ``dim``.
        """
        band = int(round(feats.get("band", -1)))
        halo = int(round(feats.get("halo", -1)))
        cpu_tile = max(1, int(round(feats.get("cpu_tile", 1))))
        gpu_tile = max(1, int(round(feats.get("gpu_tile", 1))))
        if band < 0:
            params = cls(cpu_tile=cpu_tile)
        else:
            halo = max(-1, halo)
            params = cls.from_encoding(cpu_tile, band, halo, gpu_tile)
        if dim is not None:
            params = params.clipped(dim)
        return params

    def describe(self) -> str:
        """Human-readable one-line description."""
        if self.is_cpu_only:
            return f"CPU-only(cpu_tile={self.cpu_tile})"
        halo = f", halo={self.halo}" if self.gpu_count == 2 else ""
        return (
            f"hybrid(cpu_tile={self.cpu_tile}, band={self.band}, "
            f"gpus={self.gpu_count}, gpu_tile={self.gpu_tile}{halo})"
        )


#: Tunables describing the optimised sequential baseline.
SERIAL_BASELINE = TunableParams(cpu_tile=1, band=-1, gpu_count=0, gpu_tile=1, halo=-1)
