"""The three-phase hybrid execution plan (Section 2, Figure 2 of the paper).

Given input parameters and tunable parameters, :class:`ThreePhasePlan`
derives which anti-diagonals belong to each phase:

* **phase 1** — diagonals before the GPU band, computed on the CPU with
  tiled parallelism;
* **phase 2** — the band of ``2*band + 1`` diagonals centred on the main
  anti-diagonal, computed on one or two GPUs;
* **phase 3** — the remaining diagonals, back on the CPU.

Either the CPU phases or the GPU phase may be empty: ``band == -1`` yields a
pure-CPU plan, and a band that covers every diagonal yields a pure-GPU plan.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core import diagonal as dg
from repro.core.exceptions import PlanError
from repro.core.params import InputParams, TunableParams


class Phase(enum.Enum):
    """The three phases of the hybrid execution strategy."""

    CPU_PRE = 1
    GPU_BAND = 2
    CPU_POST = 3


@dataclass(frozen=True)
class PhaseSpan:
    """A contiguous, possibly empty, range of diagonals ``[lo, hi]`` of one phase."""

    phase: Phase
    lo: int
    hi: int

    @property
    def is_empty(self) -> bool:
        """True when the span covers no diagonals."""
        return self.hi < self.lo

    @property
    def n_diagonals(self) -> int:
        """Number of diagonals the span covers."""
        return 0 if self.is_empty else self.hi - self.lo + 1

    def cells(self, dim: int) -> int:
        """Number of grid cells covered by this span on a ``dim`` square grid."""
        if self.is_empty:
            return 0
        return dg.cells_in_diagonal_range(self.lo, self.hi, dim)


class ThreePhasePlan:
    """Concrete decomposition of one wavefront instance under given tunables."""

    def __init__(self, input_params: InputParams, tunables: TunableParams) -> None:
        self.input_params = input_params
        # Clip the tunables to the instance so that plans built from raw
        # search-space points (whose band/halo scales are absolute) are valid.
        self.tunables = tunables.clipped(input_params.dim)
        dim = input_params.dim
        last = 2 * dim - 2

        if not self.tunables.uses_gpu:
            band_lo, band_hi = 0, -1  # empty GPU span
        else:
            band_lo, band_hi = dg.band_diagonal_range(dim, self.tunables.band)

        self.pre = PhaseSpan(Phase.CPU_PRE, 0, band_lo - 1)
        self.gpu = PhaseSpan(Phase.GPU_BAND, band_lo, band_hi)
        self.post = PhaseSpan(Phase.CPU_POST, band_hi + 1, last)
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        dim = self.input_params.dim
        last = 2 * dim - 2
        spans = [s for s in (self.pre, self.gpu, self.post) if not s.is_empty]
        if not spans:
            raise PlanError("plan covers no diagonals")
        covered = sum(s.n_diagonals for s in spans)
        if covered != last + 1:
            raise PlanError(
                f"plan covers {covered} diagonals, expected {last + 1}"
            )
        total_cells = sum(s.cells(dim) for s in (self.pre, self.gpu, self.post))
        if total_cells != self.input_params.cells:
            raise PlanError(
                f"plan covers {total_cells} cells, expected {self.input_params.cells}"
            )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def is_all_cpu(self) -> bool:
        """True when the GPU phase is empty."""
        return self.gpu.is_empty

    @property
    def is_all_gpu(self) -> bool:
        """True when both CPU phases are empty."""
        return self.pre.is_empty and self.post.is_empty and not self.gpu.is_empty

    @property
    def spans(self) -> tuple[PhaseSpan, PhaseSpan, PhaseSpan]:
        """The (pre, gpu, post) spans in execution order."""
        return (self.pre, self.gpu, self.post)

    def phase_of_diagonal(self, d: int) -> Phase:
        """Which phase computes diagonal ``d``."""
        dim = self.input_params.dim
        if d < 0 or d > 2 * dim - 2:
            raise PlanError(f"diagonal {d} out of range for dim={dim}")
        for span in self.spans:
            if not span.is_empty and span.lo <= d <= span.hi:
                return span.phase
        raise PlanError(f"diagonal {d} not covered by any phase")  # pragma: no cover

    def cells_per_phase(self) -> dict[Phase, int]:
        """Number of cells computed by each phase."""
        dim = self.input_params.dim
        return {span.phase: span.cells(dim) for span in self.spans}

    def gpu_diagonal_lengths(self) -> list[int]:
        """Lengths of the diagonals in the GPU band, in execution order."""
        if self.gpu.is_empty:
            return []
        dim = self.input_params.dim
        return [
            dg.diagonal_length(d, dim, dim) for d in range(self.gpu.lo, self.gpu.hi + 1)
        ]

    def offload_nbytes(self) -> int:
        """Bytes transferred host->device before phase 2 (and back after it).

        The GPU needs the band's cells plus the two boundary diagonals
        preceding the band (wavefront dependencies reach back two diagonals).
        """
        if self.gpu.is_empty:
            return 0
        dim = self.input_params.dim
        cells = self.gpu.cells(dim)
        boundary = 0
        for d in (self.gpu.lo - 1, self.gpu.lo - 2):
            if d >= 0:
                boundary += dg.diagonal_length(d, dim, dim)
        return (cells + boundary) * self.input_params.element_nbytes

    def describe(self) -> str:
        """Human-readable summary of the plan."""
        dim = self.input_params.dim
        parts = []
        for span in self.spans:
            if span.is_empty:
                continue
            parts.append(
                f"{span.phase.name}[{span.lo}..{span.hi}] ({span.cells(dim)} cells)"
            )
        return " -> ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreePhasePlan({self.describe()})"
