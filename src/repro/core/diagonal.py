"""Anti-diagonal geometry of a rectangular wavefront grid.

The wavefront pattern sweeps a ``rows x cols`` array along anti-diagonals:
diagonal ``d`` contains the cells ``(i, j)`` with ``i + j == d``.  These
helpers are shared by the executors, the cost model and the partitioner, so
they live in one well-tested module.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import InvalidParameterError


def num_diagonals(rows: int, cols: int) -> int:
    """Number of anti-diagonals in a ``rows x cols`` grid."""
    _check_shape(rows, cols)
    return rows + cols - 1


def diagonal_length(d: int, rows: int, cols: int) -> int:
    """Number of cells on anti-diagonal ``d`` of a ``rows x cols`` grid."""
    _check_shape(rows, cols)
    if d < 0 or d > rows + cols - 2:
        raise InvalidParameterError(
            f"diagonal {d} out of range for a {rows}x{cols} grid"
        )
    return min(d + 1, rows, cols, rows + cols - 1 - d)


def diagonal_lengths(rows: int, cols: int) -> np.ndarray:
    """Vector of all anti-diagonal lengths, indexed by diagonal number."""
    _check_shape(rows, cols)
    d = np.arange(rows + cols - 1)
    return np.minimum.reduce([d + 1, np.full_like(d, rows), np.full_like(d, cols), rows + cols - 1 - d])

def diagonal_bounds(d: int, rows: int, cols: int) -> tuple[int, int]:
    """Return the inclusive row range ``(i_min, i_max)`` of diagonal ``d``.

    Cell ``(i, d - i)`` is on the diagonal for ``i_min <= i <= i_max``.
    """
    _check_shape(rows, cols)
    if d < 0 or d > rows + cols - 2:
        raise InvalidParameterError(
            f"diagonal {d} out of range for a {rows}x{cols} grid"
        )
    i_min = max(0, d - (cols - 1))
    i_max = min(rows - 1, d)
    return i_min, i_max


def diagonal_cells(d: int, rows: int, cols: int) -> np.ndarray:
    """Return an ``(n, 2)`` array of the (row, col) cells on diagonal ``d``.

    Cells are ordered by increasing row index, which is the canonical order
    used everywhere in the package (buffers, partitions, halo exchange).
    """
    i_min, i_max = diagonal_bounds(d, rows, cols)
    i = np.arange(i_min, i_max + 1)
    return np.stack([i, d - i], axis=1)


def diagonal_index_arrays(d: int, rows: int, cols: int) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``(i, j)`` index arrays of diagonal ``d`` in canonical order.

    Equivalent to splitting :func:`diagonal_cells` into its columns but
    without materialising the stacked ``(n, 2)`` array — the whole-diagonal
    index form that kernels' ``diagonal()`` methods consume (the vectorized
    engine inlines the same arithmetic on its hot path).
    """
    i_min, i_max = diagonal_bounds(d, rows, cols)
    i = np.arange(i_min, i_max + 1)
    return i, d - i


def flat_diagonal_slice(d: int, dim: int) -> slice:
    """Strided slice addressing diagonal ``d`` in the flattened square grid.

    In a row-major ``dim x dim`` array the cell ``(i, d - i)`` sits at flat
    index ``d + i * (dim - 1)``, so one anti-diagonal is an arithmetic
    sequence with stride ``dim - 1``: ``values.reshape(-1)[flat_diagonal_slice(d, dim)]``
    is a zero-copy *view* of the diagonal in canonical (increasing-row)
    order.  This is what lets the vectorized engine read and write whole
    diagonals without fancy indexing.
    """
    if dim < 2:
        raise InvalidParameterError(f"dim must be >= 2, got {dim}")
    i_min, i_max = diagonal_bounds(d, dim, dim)
    stride = dim - 1
    start = i_min * dim + (d - i_min)
    stop = i_max * dim + (d - i_max) + 1
    return slice(start, stop, stride)


def flat_diagonal_segment(d: int, dim: int, i_min: int, i_max: int) -> slice:
    """Strided slice of the diagonal-``d`` cells with rows ``i_min .. i_max``.

    The sub-range counterpart of :func:`flat_diagonal_slice`, used by fused
    kernel evaluators so their position tables line up with *any* row range
    an engine sweeps — the tile-local sweeps of the multicore backend hand
    evaluators partial diagonals, not just whole ones.
    """
    if dim < 2:
        raise InvalidParameterError(f"dim must be >= 2, got {dim}")
    lo, hi = diagonal_bounds(d, dim, dim)
    if i_min < lo or i_max > hi or i_max < i_min:
        raise InvalidParameterError(
            f"row range [{i_min}, {i_max}] invalid for diagonal {d} of dim={dim}"
        )
    stride = dim - 1
    start = i_min * dim + (d - i_min)
    stop = i_max * dim + (d - i_max) + 1
    return slice(start, stop, stride)


def cells_before_diagonal(d: int, dim: int) -> int:
    """Number of cells strictly before diagonal ``d`` in a square grid.

    "Before" means on a diagonal with smaller index, i.e. cells ``(i, j)``
    with ``i + j < d``.  ``d`` may be up to ``2*dim - 1`` (one past the last
    diagonal), in which case the full grid size is returned.
    """
    if dim < 1:
        raise InvalidParameterError(f"dim must be >= 1, got {dim}")
    if d < 0 or d > 2 * dim - 1:
        raise InvalidParameterError(
            f"diagonal {d} out of range for cells_before_diagonal with dim={dim}"
        )
    if d <= dim:
        # Triangle of diagonals 0 .. d-1 with lengths 1 .. d.
        return d * (d + 1) // 2
    # Full upper triangle plus the trailing (shrinking) diagonals.
    k = d - dim  # number of diagonals past the one of length dim
    upper = dim * (dim + 1) // 2
    # Diagonals dim .. d-1 have lengths dim-1, dim-2, ..., dim-k.
    trailing = k * dim - k * (k + 1) // 2
    return upper + trailing


def cells_in_diagonal_range(d_lo: int, d_hi: int, dim: int) -> int:
    """Number of cells on diagonals ``d_lo .. d_hi`` inclusive of a square grid."""
    if d_hi < d_lo:
        return 0
    return cells_before_diagonal(min(d_hi + 1, 2 * dim - 1), dim) - cells_before_diagonal(
        max(d_lo, 0), dim
    )


def band_diagonal_range(dim: int, band: int) -> tuple[int, int]:
    """Inclusive range of diagonals offloaded to the GPU for a given ``band``.

    A band of ``n`` means ``2n + 1`` diagonals centred on the main
    anti-diagonal (index ``dim - 1``), clipped to the grid.
    """
    if dim < 2:
        raise InvalidParameterError(f"dim must be >= 2, got {dim}")
    if band < 0:
        raise InvalidParameterError(f"band must be >= 0, got {band}")
    main = dim - 1
    lo = max(0, main - band)
    hi = min(2 * dim - 2, main + band)
    return lo, hi


def _check_shape(rows: int, cols: int) -> None:
    if rows < 1 or cols < 1:
        raise InvalidParameterError(
            f"grid shape must be positive, got {rows}x{cols}"
        )
