"""Core wavefront-pattern abstractions.

This subpackage contains everything that is independent of *how* a wavefront
is executed: the input/tunable parameter model (Tables 1-3 of the paper), the
anti-diagonal geometry of the grid, CPU tiling, the three-phase hybrid
decomposition and the multi-GPU diagonal partitioning with halo regions.
"""

from repro.core.exceptions import (
    ReproError,
    InvalidParameterError,
    PlanError,
    PartitionError,
    KernelError,
)
from repro.core.params import InputParams, TunableParams
from repro.core.parameter_space import ParameterSpace
from repro.core.diagonal import (
    num_diagonals,
    diagonal_length,
    diagonal_cells,
    band_diagonal_range,
)
from repro.core.grid import WavefrontGrid
from repro.core.tiling import TileDecomposition
from repro.core.plan import ThreePhasePlan, Phase
from repro.core.partition import DiagonalPartition, partition_diagonal
from repro.core.pattern import WavefrontKernel, WavefrontProblem

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "PlanError",
    "PartitionError",
    "KernelError",
    "InputParams",
    "TunableParams",
    "ParameterSpace",
    "num_diagonals",
    "diagonal_length",
    "diagonal_cells",
    "band_diagonal_range",
    "WavefrontGrid",
    "TileDecomposition",
    "ThreePhasePlan",
    "Phase",
    "DiagonalPartition",
    "partition_diagonal",
    "WavefrontKernel",
    "WavefrontProblem",
]
