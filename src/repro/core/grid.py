"""The wavefront value grid and its diagonal-major view.

:class:`WavefrontGrid` stores the values of the recurrence.  Each element
carries a scalar *value* (the quantity the recurrence is defined over, e.g.
the alignment score in Smith-Waterman) plus ``dsize`` floating-point payload
slots and two integer bookkeeping slots, mirroring the element layout of the
paper's synthetic application (Section 3.1.1).

Only the scalar value participates in the recurrence; the payload exists to
give data-size (``dsize``) its performance meaning, and the executors move it
around faithfully so that transfer volumes in the functional mode match the
cost model's assumptions.
"""

from __future__ import annotations

import numpy as np

from repro.core import diagonal as dg
from repro.core.exceptions import InvalidParameterError


class WavefrontGrid:
    """Square grid of wavefront values with diagonal accessors.

    Parameters
    ----------
    dim:
        Side length of the square grid.
    dsize:
        Number of float payload slots per element.
    dtype:
        Floating point dtype of the value and payload arrays.
    """

    def __init__(self, dim: int, dsize: int = 0, dtype=np.float64) -> None:
        if dim < 2:
            raise InvalidParameterError(f"dim must be >= 2, got {dim}")
        if dsize < 0:
            raise InvalidParameterError(f"dsize must be >= 0, got {dsize}")
        self.dim = int(dim)
        self.dsize = int(dsize)
        self.values = np.zeros((dim, dim), dtype=dtype)
        # Payload floats; kept contiguous per cell for realistic transfers.
        self.payload = np.zeros((dim, dim, dsize), dtype=dtype) if dsize else None
        # The two int bookkeeping fields of the synthetic element.
        self.meta = np.zeros((dim, dim, 2), dtype=np.int64)

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def n_diagonals(self) -> int:
        """Number of anti-diagonals."""
        return dg.num_diagonals(self.dim, self.dim)

    def diagonal_length(self, d: int) -> int:
        """Length of anti-diagonal ``d``."""
        return dg.diagonal_length(d, self.dim, self.dim)

    def diagonal_indices(self, d: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (row, col) index arrays for diagonal ``d`` in canonical order."""
        cells = dg.diagonal_cells(d, self.dim, self.dim)
        return cells[:, 0], cells[:, 1]

    # ------------------------------------------------------------------
    # Diagonal-major access
    # ------------------------------------------------------------------
    def diagonal_view(self, d: int) -> np.ndarray:
        """Zero-copy strided view of the values on diagonal ``d``.

        Writing through the view writes straight into :attr:`values` — the
        same strided-slice arithmetic the vectorized engine inlines on its
        hot path (:class:`repro.runtime.vectorized.DiagonalSweepEngine`),
        exposed here for other layers, tooling and tests; no fancy indexing
        as in :meth:`get_diagonal` / :meth:`set_diagonal`.
        """
        return self.values.reshape(-1)[dg.flat_diagonal_slice(d, self.dim)]

    def get_diagonal(self, d: int) -> np.ndarray:
        """Copy of the values on diagonal ``d`` (ordered by increasing row)."""
        i, j = self.diagonal_indices(d)
        return self.values[i, j].copy()

    def set_diagonal(self, d: int, vals: np.ndarray) -> None:
        """Overwrite the values on diagonal ``d``."""
        i, j = self.diagonal_indices(d)
        vals = np.asarray(vals)
        if vals.shape != i.shape:
            raise InvalidParameterError(
                f"diagonal {d} has {i.size} cells, got {vals.size} values"
            )
        self.values[i, j] = vals

    def get_diagonal_segment(self, d: int, start: int, stop: int) -> np.ndarray:
        """Values of cells ``start .. stop-1`` (diagonal-local offsets) on diagonal ``d``."""
        i, j = self.diagonal_indices(d)
        return self.values[i[start:stop], j[start:stop]].copy()

    def set_diagonal_segment(self, d: int, start: int, vals: np.ndarray) -> None:
        """Write a contiguous segment of diagonal ``d`` starting at offset ``start``."""
        i, j = self.diagonal_indices(d)
        vals = np.asarray(vals)
        stop = start + vals.size
        if start < 0 or stop > i.size:
            raise InvalidParameterError(
                f"segment [{start}, {stop}) out of range for diagonal {d} "
                f"of length {i.size}"
            )
        self.values[i[start:stop], j[start:stop]] = vals

    # ------------------------------------------------------------------
    # Neighbour gathering (the wavefront dependency stencil)
    # ------------------------------------------------------------------
    def neighbours(
        self, i: np.ndarray, j: np.ndarray, boundary: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (west, north, northwest) values for the cells ``(i, j)``.

        Out-of-grid neighbours (first row / first column) take the
        ``boundary`` value, matching the zero boundary condition the paper's
        applications use.
        """
        i = np.asarray(i)
        j = np.asarray(j)
        west = np.where(j > 0, self.values[i, np.maximum(j - 1, 0)], boundary)
        north = np.where(i > 0, self.values[np.maximum(i - 1, 0), j], boundary)
        nw = np.where(
            (i > 0) & (j > 0),
            self.values[np.maximum(i - 1, 0), np.maximum(j - 1, 0)],
            boundary,
        )
        return west, north, nw

    # ------------------------------------------------------------------
    # Whole-grid helpers
    # ------------------------------------------------------------------
    def copy(self) -> "WavefrontGrid":
        """Deep copy of the grid."""
        out = WavefrontGrid(self.dim, self.dsize, dtype=self.values.dtype)
        out.values[...] = self.values
        if self.payload is not None:
            out.payload[...] = self.payload
        out.meta[...] = self.meta
        return out

    def nbytes(self) -> int:
        """Total bytes of value + payload + meta arrays."""
        total = self.values.nbytes + self.meta.nbytes
        if self.payload is not None:
            total += self.payload.nbytes
        return total

    def allclose(self, other: "WavefrontGrid", rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """True when the value arrays of two grids agree element-wise."""
        if self.dim != other.dim:
            return False
        return np.allclose(self.values, other.values, rtol=rtol, atol=atol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WavefrontGrid(dim={self.dim}, dsize={self.dsize})"
