"""CPU tiling of the wavefront grid.

The CPU phases of the three-phase strategy partition their region into square
``cpu_tile x cpu_tile`` tiles.  Tiles themselves form a coarser wavefront: a
tile may be computed once its west, north and north-west neighbour tiles are
done, and all cells inside a tile are computed sequentially to benefit from
cache reuse (Section 2 of the paper).

:class:`TileDecomposition` provides both the schedule used by the functional
CPU-parallel executor and the closed-form quantities (tiles per tile-diagonal,
critical-path lengths) used by the analytic cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import InvalidParameterError


@dataclass(frozen=True)
class Tile:
    """A rectangular tile ``[row_start, row_stop) x [col_start, col_stop)``."""

    tile_row: int
    tile_col: int
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def n_rows(self) -> int:
        """Number of grid rows the tile covers."""
        return self.row_stop - self.row_start

    @property
    def n_cols(self) -> int:
        """Number of grid columns the tile covers."""
        return self.col_stop - self.col_start

    @property
    def n_cells(self) -> int:
        """Number of grid cells the tile covers."""
        return self.n_rows * self.n_cols


class TileDecomposition:
    """Square tiling of a ``rows x cols`` grid with tile side ``tile``."""

    def __init__(self, rows: int, cols: int, tile: int) -> None:
        if rows < 1 or cols < 1:
            raise InvalidParameterError(f"grid shape must be positive, got {rows}x{cols}")
        if tile < 1:
            raise InvalidParameterError(f"tile must be >= 1, got {tile}")
        self.rows = int(rows)
        self.cols = int(cols)
        self.tile = int(min(tile, max(rows, cols)))
        self.tile_rows = -(-rows // self.tile)
        self.tile_cols = -(-cols // self.tile)

    # ------------------------------------------------------------------
    # Individual tiles
    # ------------------------------------------------------------------
    def tile_at(self, tile_row: int, tile_col: int) -> Tile:
        """Return the tile at tile coordinates ``(tile_row, tile_col)``."""
        if not (0 <= tile_row < self.tile_rows and 0 <= tile_col < self.tile_cols):
            raise InvalidParameterError(
                f"tile ({tile_row}, {tile_col}) out of range for a "
                f"{self.tile_rows}x{self.tile_cols} tile grid"
            )
        r0 = tile_row * self.tile
        c0 = tile_col * self.tile
        return Tile(
            tile_row=tile_row,
            tile_col=tile_col,
            row_start=r0,
            row_stop=min(r0 + self.tile, self.rows),
            col_start=c0,
            col_stop=min(c0 + self.tile, self.cols),
        )

    def all_tiles(self) -> list[Tile]:
        """All tiles in row-major tile order."""
        return [
            self.tile_at(tr, tc)
            for tr in range(self.tile_rows)
            for tc in range(self.tile_cols)
        ]

    @property
    def n_tiles(self) -> int:
        """Total number of tiles."""
        return self.tile_rows * self.tile_cols

    # ------------------------------------------------------------------
    # Tile-wavefront schedule
    # ------------------------------------------------------------------
    @property
    def n_tile_diagonals(self) -> int:
        """Number of anti-diagonals of the tile grid."""
        return self.tile_rows + self.tile_cols - 1

    def tiles_on_diagonal(self, td: int) -> list[Tile]:
        """Tiles whose tile coordinates sum to ``td``, ordered by tile row."""
        if td < 0 or td >= self.n_tile_diagonals:
            raise InvalidParameterError(
                f"tile diagonal {td} out of range (0..{self.n_tile_diagonals - 1})"
            )
        lo = max(0, td - (self.tile_cols - 1))
        hi = min(self.tile_rows - 1, td)
        return [self.tile_at(tr, td - tr) for tr in range(lo, hi + 1)]

    def schedule(self) -> list[list[Tile]]:
        """Tile-wavefront schedule: one list of independent tiles per wave."""
        return [self.tiles_on_diagonal(td) for td in range(self.n_tile_diagonals)]

    def tiles_per_diagonal(self) -> np.ndarray:
        """Vector of tile counts per tile-diagonal (closed form, no tile objects)."""
        td = np.arange(self.n_tile_diagonals)
        return np.minimum.reduce(
            [
                td + 1,
                np.full_like(td, self.tile_rows),
                np.full_like(td, self.tile_cols),
                self.tile_rows + self.tile_cols - 1 - td,
            ]
        )

    # ------------------------------------------------------------------
    # Parallel critical-path statistics (used by the cost model)
    # ------------------------------------------------------------------
    def wavefront_waves(self, workers: int) -> int:
        """Number of tile 'waves' when each wave runs at most ``workers`` tiles.

        This is the critical path length of the tile wavefront executed with
        ``workers`` parallel workers, in units of tiles: within one
        tile-diagonal of ``k`` independent tiles, ``ceil(k / workers)`` rounds
        are needed.
        """
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        counts = self.tiles_per_diagonal()
        return int(np.sum(-(-counts // workers)))

    def parallel_efficiency(self, workers: int) -> float:
        """Ratio of ideal to critical-path tile-rounds with ``workers`` workers.

        1.0 means perfect load balance across the tile wavefront; small grids
        or large tiles reduce it because early/late diagonals expose fewer
        independent tiles than there are workers.
        """
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        ideal = self.n_tiles / workers
        waves = self.wavefront_waves(workers)
        if waves == 0:
            return 1.0
        return min(1.0, ideal / waves)


def triangular_tile_waves(dim: int, n_diagonals: int, tile: int, workers: int) -> int:
    """Tile waves needed to cover the first ``n_diagonals`` anti-diagonals.

    Used by the cost model for phase 1 / phase 3 of the hybrid plan, whose CPU
    regions are the triangular sets of cells before/after the GPU band.  A
    tile participates in the region as soon as any of its cells does; the
    count returned is the critical path (in tile rounds) of executing those
    tiles with ``workers`` workers, assuming tiles become ready one
    tile-diagonal at a time.
    """
    if dim < 1:
        raise InvalidParameterError(f"dim must be >= 1, got {dim}")
    if n_diagonals <= 0:
        return 0
    if tile < 1:
        raise InvalidParameterError(f"tile must be >= 1, got {tile}")
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    n_diagonals = min(n_diagonals, 2 * dim - 1)
    tile_side = -(-dim // tile)
    # The triangular region of the first k cell-diagonals touches the first
    # ceil(k / tile) tile-diagonals of the tile grid.
    k_tile_diags = min(-(-n_diagonals // tile), 2 * tile_side - 1)
    td = np.arange(k_tile_diags)
    counts = np.minimum.reduce(
        [td + 1, np.full_like(td, tile_side), 2 * tile_side - 1 - td]
    )
    return int(np.sum(-(-counts // workers)))
