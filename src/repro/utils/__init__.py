"""Small shared utilities: deterministic RNG, ASCII tables, timing helpers."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.timing import Stopwatch

__all__ = ["make_rng", "spawn_rngs", "format_table", "Stopwatch"]
