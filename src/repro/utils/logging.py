"""Minimal logging configuration shared by CLI examples and benches."""

from __future__ import annotations

import logging

_PACKAGE_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a package-scoped logger (``repro`` or ``repro.<name>``)."""
    if name:
        return logging.getLogger(f"{_PACKAGE_LOGGER_NAME}.{name}")
    return logging.getLogger(_PACKAGE_LOGGER_NAME)


def configure_logging(verbose: bool = False) -> None:
    """Configure a console handler for the package logger.

    Idempotent: calling it twice does not duplicate handlers, so examples can
    call it unconditionally.
    """
    logger = logging.getLogger(_PACKAGE_LOGGER_NAME)
    logger.setLevel(logging.DEBUG if verbose else logging.INFO)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
