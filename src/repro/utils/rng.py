"""Deterministic random-number helpers.

Every stochastic component in the package (synthetic workload generation,
training-set sampling, ML model fitting) accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the conversion here keeps the
experiments reproducible run-to-run, which matters because the paper's
training sets are built by sampling the exhaustive-search results.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

DEFAULT_SEED = 20140215  # PMAM'14 date; arbitrary but fixed.


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to the package-wide :data:`DEFAULT_SEED` so that library
    entry points are deterministic unless the caller opts out by passing an
    explicit generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Used when fanning work out to per-device or per-worker components that
    each need their own stream (e.g. per-GPU synthetic data initialisation).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = make_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(count)]


def derive_seed(seed: int | None, *components: int | str) -> int:
    """Deterministically mix ``components`` into ``seed``.

    This gives stable but distinct seeds for e.g. (dim, tsize, dsize)
    instances of the synthetic application without the caller having to
    thread generators everywhere.
    """
    base = DEFAULT_SEED if seed is None else int(seed)
    mix = np.uint64(base)
    for comp in components:
        if isinstance(comp, str):
            comp_val = np.uint64(abs(hash(comp)) % (2**32))
        else:
            comp_val = np.uint64(int(comp) & 0xFFFFFFFF)
        # SplitMix64-style mixing keeps nearby inputs well separated.
        mix = np.uint64((int(mix) + 0x9E3779B97F4A7C15 + int(comp_val)) % (2**64))
        z = int(mix)
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 % (2**64)
        z = (z ^ (z >> 27)) * 0x94D049BB133111EB % (2**64)
        mix = np.uint64(z ^ (z >> 31))
    return int(mix % (2**31 - 1))


def sample_without_replacement(
    rng: np.random.Generator, items: Sequence, count: int
) -> list:
    """Sample ``count`` distinct items, or all of them if fewer exist."""
    items = list(items)
    if count >= len(items):
        return items
    idx = rng.choice(len(items), size=count, replace=False)
    return [items[i] for i in sorted(idx)]


def shuffled(rng: np.random.Generator, items: Iterable) -> list:
    """Return a shuffled copy of ``items`` without mutating the input."""
    out = list(items)
    rng.shuffle(out)
    return out
