"""A small least-recently-used cache with eviction hooks and hit statistics.

Long-lived serving sessions (:class:`repro.session.Session`) cache tuned
plans, constructed problems and worker pools across requests; left unbounded
those caches grow with every distinct request ever seen.  This module is the
one bounded-cache implementation they all share: an ordered-dict LRU with a
configurable ``maxsize``, an optional ``on_evict`` callback (used to close
worker pools when their cache slot is reclaimed) and hit/miss counters that
the session surfaces through :meth:`repro.session.Session.cache_info`.

The cache is **thread-safe**: every operation (including the eviction hook
and :meth:`LRUCache.get_or_create`'s factory call) runs under one reentrant
lock, so a session shared across server worker threads
(:class:`repro.server.ReproServer`) cannot corrupt the recency order or
build the same expensive entry twice.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator

from repro.core.exceptions import InvalidParameterError

#: Sentinel distinguishing "no default given" from ``default=None``.
_MISSING = object()


class LRUCache:
    """Bounded mapping evicting the least-recently-used entry on overflow.

    ``maxsize`` must be at least 1; ``on_evict(key, value)`` — when given —
    is called for every entry leaving the cache, whether evicted by capacity,
    replaced by :meth:`put`, or flushed by :meth:`clear`.  Only :meth:`get`
    and :meth:`put` refresh recency; membership tests and :meth:`values`
    observe without touching the LRU order.

    All operations hold one :class:`threading.RLock`.  The lock is reentrant
    because both the eviction hook and :meth:`get_or_create`'s factory may
    legitimately touch the same cache again from the same thread; holding it
    across the factory also guarantees concurrent ``get_or_create`` calls
    for one key build the value exactly once.
    """

    def __init__(
        self,
        maxsize: int,
        on_evict: Callable[[Hashable, Any], None] | None = None,
    ) -> None:
        if maxsize < 1:
            raise InvalidParameterError(f"LRU maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._on_evict = on_evict
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data))

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert ``key -> value``, evicting the oldest entry on overflow.

        Returns ``value`` so call sites can cache and use in one expression.
        """
        with self._lock:
            if key in self._data:
                old = self._data.pop(key)
                if old is not value:
                    self._evicted(key, old)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                old_key, old_value = self._data.popitem(last=False)
                self.evictions += 1
                self._evicted(old_key, old_value)
            return value

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, building (and caching) it on a miss.

        The factory runs under the cache lock, so one slow build blocks (and
        is then shared by) every other thread asking for the same key.
        """
        with self._lock:
            value = self.get(key, _MISSING)
            if value is _MISSING:
                value = self.put(key, factory())
            return value

    def pop(self, key: Hashable, default: Any = _MISSING) -> Any:
        """Remove and return an entry *without* firing the eviction hook."""
        with self._lock:
            if key in self._data:
                return self._data.pop(key)
        if default is _MISSING:
            raise KeyError(key)
        return default

    def clear(self) -> None:
        """Drop every entry, firing the eviction hook for each.

        Counters survive a clear so post-shutdown introspection (e.g. a
        closed session's ``cache_info``) still reports lifetime statistics.
        """
        with self._lock:
            while self._data:
                key, value = self._data.popitem(last=False)
                self._evicted(key, value)

    def values(self) -> list[Any]:
        """Current values, oldest first (does not refresh recency)."""
        with self._lock:
            return list(self._data.values())

    def info(self) -> dict[str, int]:
        """Counters in the style of :func:`functools.lru_cache`'s cache_info."""
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    # ------------------------------------------------------------------
    def _evicted(self, key: Hashable, value: Any) -> None:
        if self._on_evict is not None:
            self._on_evict(key, value)
