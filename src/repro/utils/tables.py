"""Plain-text table formatting used by the analysis / benchmark reports.

The paper presents its results as figures; since this reproduction runs in a
headless environment the benches print the same series as aligned ASCII
tables and CSV, which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_fmt_cell(c, float_fmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (no quoting needed for our numeric tables)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(str(c) for c in row))
    return "\n".join(lines)


def format_grid(
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    values,
    float_fmt: str = ".1f",
    corner: str = "",
) -> str:
    """Render a 2-D grid (e.g. a heatmap's numeric values) as text.

    ``values[i][j]`` corresponds to ``row_labels[i]`` x ``col_labels[j]``.
    """
    headers = [corner] + [str(c) for c in col_labels]
    rows = []
    for i, rl in enumerate(row_labels):
        row = [str(rl)]
        for j in range(len(col_labels)):
            row.append(_fmt_cell(values[i][j], float_fmt))
        rows.append(row)
    return format_table(headers, rows, float_fmt=float_fmt)
