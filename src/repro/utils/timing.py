"""Wall-clock timing helpers.

The paper measures whole-program wall-clock runtime averaged over three runs.
:class:`Stopwatch` and :func:`repeat_timer` mirror that protocol for the
functional execution paths; the simulated paths report model time instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulating stopwatch usable as a context manager.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def start(self) -> None:
        """Start timing; raises if already running."""
        if self._start is not None:
            raise RuntimeError("Stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop timing and return the last lap's seconds."""
        if self._start is None:
            raise RuntimeError("Stopwatch not running")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        """Zero the accumulated time and stop the watch."""
        self.elapsed = 0.0
        self._start = None

    @property
    def running(self) -> bool:
        """True while the watch is started."""
        return self._start is not None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def repeat_timer(func: Callable[[], T], repeats: int = 3) -> tuple[T, float, float]:
    """Run ``func`` ``repeats`` times; return (last result, mean, stdev).

    Mirrors the paper's "averaging across three runs" measurement protocol.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    times: list[float] = []
    result: T = None  # type: ignore[assignment]
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = func()
        times.append(time.perf_counter() - t0)
    mean = sum(times) / len(times)
    if len(times) > 1:
        var = sum((t - mean) ** 2 for t in times) / (len(times) - 1)
    else:
        var = 0.0
    return result, mean, var**0.5
