"""JSON (de)serialisation helpers for dataclasses and NumPy scalars.

Trained tuner models and exhaustive-search result sets are persisted as JSON
so that the "train in the factory, deploy on the user's machine" workflow in
the paper (Section 3.1.2) can be reproduced without retraining.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np


class ReproJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands NumPy scalars/arrays and dataclasses."""

    def default(self, o: Any) -> Any:  # noqa: D102 - stdlib signature
        """Encode NumPy scalars/arrays and dataclasses (stdlib hook)."""
        if isinstance(o, (np.integer,)):
            return int(o)
        if isinstance(o, (np.floating,)):
            return float(o)
        if isinstance(o, (np.bool_,)):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        if dataclasses.is_dataclass(o) and not isinstance(o, type):
            return dataclasses.asdict(o)
        return super().default(o)


def to_json(obj: Any, indent: int | None = 2) -> str:
    """Serialise ``obj`` to a JSON string."""
    return json.dumps(obj, cls=ReproJSONEncoder, indent=indent, sort_keys=True)


def from_json(text: str) -> Any:
    """Parse a JSON string produced by :func:`to_json`."""
    return json.loads(text)


def save_json(obj: Any, path: str | Path) -> Path:
    """Write ``obj`` as JSON to ``path`` (parent directories are created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_json(obj), encoding="utf-8")
    return path


def load_json(path: str | Path) -> Any:
    """Load JSON from ``path``."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
