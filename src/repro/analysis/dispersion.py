"""Figure 8: dispersion of the configuration space (violin plots as numbers).

A violin plot combines a box plot with a kernel density estimate.  The
reproduction computes the same ingredients — quartiles, extremes and a
Gaussian KDE evaluated on a uniform grid — and the dispersion bench prints
them for the paper's two highlighted samples (dim = 700 and dim = 2700 on
the i7-2600K).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.exceptions import SearchError
from repro.core.params import InputParams
from repro.autotuner.exhaustive import SearchResults


@dataclass
class ViolinStats:
    """Numeric content of one violin of Figure 8."""

    dim: int
    tsize: float
    dsize: int
    n_points: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    density_x: np.ndarray
    density_y: np.ndarray

    @property
    def iqr(self) -> float:
        """Inter-quartile range."""
        return self.q3 - self.q1

    @property
    def best_to_median_gap(self) -> float:
        """How far the best point sits below the median (the paper's focus)."""
        if self.median <= 0:
            return 0.0
        return (self.median - self.minimum) / self.median

    @property
    def flat_base(self) -> bool:
        """True when many points sit near the minimum (a "flat base" violin).

        The paper observes flat-based violins for the large / coarse-grained
        samples, where many tunable combinations achieve near-best runtime.
        """
        near_best = self.density_x <= self.minimum + 0.1 * max(self.median - self.minimum, 1e-12)
        if not np.any(near_best):
            return False
        mass_near_best = float(np.trapezoid(self.density_y[near_best], self.density_x[near_best]))
        total = float(np.trapezoid(self.density_y, self.density_x))
        return total > 0 and (mass_near_best / total) > 0.15

    def as_row(self) -> list[object]:
        """The Figure 8 table row used by the text report."""
        return [
            self.dim,
            self.tsize,
            self.dsize,
            self.n_points,
            self.minimum,
            self.q1,
            self.median,
            self.q3,
            self.maximum,
        ]


def dispersion_stats(
    results: SearchResults, params: InputParams, density_points: int = 64
) -> ViolinStats:
    """Compute the violin statistics of one instance's configuration space."""
    records = results.records_for(params)
    if len(records) < 2:
        raise SearchError(
            f"need at least two below-threshold records for {params}, "
            f"got {len(records)}"
        )
    rtimes = np.array([r.rtime for r in records])
    q1, median, q3 = np.percentile(rtimes, [25, 50, 75])
    xs = np.linspace(rtimes.min(), rtimes.max(), density_points)
    if np.ptp(rtimes) < 1e-12:
        ys = np.ones_like(xs)
    else:
        try:
            kde = stats.gaussian_kde(rtimes)
            ys = kde(xs)
        except np.linalg.LinAlgError:
            ys = np.ones_like(xs)
    return ViolinStats(
        dim=params.dim,
        tsize=params.tsize,
        dsize=params.dsize,
        n_points=len(records),
        minimum=float(rtimes.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(rtimes.max()),
        density_x=xs,
        density_y=ys,
    )
