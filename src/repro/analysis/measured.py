"""Predicted-vs-measured report for the local-host profile (Figure 7 style).

Figure 7 of the paper contrasts the *best* exhaustively-searched runtime of
each instance with the *average* across the configuration space — the gap
that makes tuning worthwhile — and the tuned configuration's position inside
it.  This module renders the same story for a measured local-host profile
(:mod:`repro.autotuner.measured`): per profiled instance, the measured best,
the measured average case, the runtime of the plan the measured tuner
selects, and the cost model's prediction for the same instance, so the
"analytic model vs. this machine" gap is visible in one table.

Written to ``benchmarks/results/local_profile_report.txt`` by the CLI's
``repro profile`` verb.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis.report import render_table
from repro.autotuner.measured import MeasuredProfile, MeasuredTuner
from repro.hardware.costmodel import CostModel
from repro.hardware.system import SystemSpec

#: Column headers of the per-instance report rows.
MEASURED_REPORT_HEADERS = (
    "app",
    "dim",
    "tsize",
    "dsize",
    "configs",
    "best backend",
    "best [ms]",
    "avg [ms]",
    "tuned backend",
    "tuned [ms]",
    "tuned/best",
    "model [ms]",
)


def measured_report_rows(
    profile: MeasuredProfile,
    tuner: MeasuredTuner,
    system: SystemSpec | None = None,
) -> list[list[object]]:
    """One row per profiled instance (see :data:`MEASURED_REPORT_HEADERS`).

    ``tuned [ms]`` is the *measured* wall of the configuration the tuner
    selects for the instance; ``model [ms]`` is the profile-calibrated cost
    model's prediction for the tuned backend, so the last two columns are
    the predicted-vs-measured gap.
    """
    model = None
    if system is not None:
        model = CostModel(system, profile.calibrated_constants(system))
    rows: list[list[object]] = []
    seen: set[tuple[str, object]] = set()
    for record in profile.records:
        app, params = record.app, record.params
        if (app, params) in seen:
            continue
        seen.add((app, params))
        records = profile.records_for(params, app=app)
        best = profile.best(params, app=app)
        walls = np.array([r.wall_s for r in records])
        plan = tuner.tune(app, params.dim)
        predicted_ms = ""
        if model is not None:
            predicted_ms = (
                model.cpu_backend_time(
                    _cost_backend(plan.backend),
                    params,
                    cpu_tile=plan.tunables.cpu_tile,
                    workers=plan.workers,
                )
                * 1e3
            )
        rows.append(
            [
                app,
                params.dim,
                params.tsize,
                params.dsize,
                len(records),
                f"{best.backend}/t{best.tunables.cpu_tile}",
                best.wall_s * 1e3,
                float(walls.mean()) * 1e3,
                f"{plan.backend}/t{plan.tunables.cpu_tile}",
                plan.expected_s * 1e3,
                plan.expected_s / best.wall_s if best.wall_s > 0 else float("inf"),
                predicted_ms,
            ]
        )
    return rows


def _cost_backend(backend: str) -> str:
    """Map a profiled backend name onto a cost-model backend name."""
    if backend.startswith("hybrid-"):
        engine = backend.removeprefix("hybrid-")
        return "mp-parallel" if engine == "mp" else engine
    return backend


def render_measured_report(
    profile: MeasuredProfile,
    tuner: MeasuredTuner,
    system: SystemSpec | None = None,
) -> str:
    """The full Figure 7-style text report for one measured profile."""
    rows = measured_report_rows(profile, tuner, system)
    tuned_over_best = np.array([float(r[10]) for r in rows])
    avg_over_best = np.array([float(r[7]) / float(r[6]) for r in rows])
    host = profile.host
    title = (
        f"Measured profile — system {profile.system} "
        f"({host.get('cpu', '?')}, {host.get('cores', '?')} cores), "
        f"{len(profile)} records over {len(rows)} instances"
    )
    table = render_table(MEASURED_REPORT_HEADERS, rows, title=title, float_fmt=".3f")
    summary = [
        "",
        f"average-case gap (avg/best): {avg_over_best.mean():.2f}x "
        f"(max {avg_over_best.max():.2f}x) — what tuning is worth on this host",
        f"tuned-plan efficiency (tuned/best): mean {tuned_over_best.mean():.3f}, "
        f"worst {tuned_over_best.max():.3f} (1.0 = measured optimum)",
        "",
        "model [ms] is the profile-calibrated analytic cost model on the paper's",
        "synthetic tsize scale; the functional kernels emulate tsize only",
        "approximately, so large gaps in that column for coarse-tsize apps are the",
        "factory-model-vs-field gap the measured pipeline exists to close.",
    ]
    if host.get("truncated"):
        summary.append(
            "NOTE: the profiling sweep hit its time budget and was truncated."
        )
    return table + "\n" + "\n".join(summary) + "\n"


def write_measured_report(
    path: str | Path,
    profile: MeasuredProfile,
    tuner: MeasuredTuner,
    system: SystemSpec | None = None,
) -> Path:
    """Render and write the report; parent directories are created."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_measured_report(profile, tuner, system), encoding="utf-8")
    return path
