"""Figure 5: heatmaps of the best band and halo values.

For every (tsize, dim) cell of one dsize slice, the heatmap holds the value
of ``band`` (or ``halo``) at the best-performing configuration found by the
exhaustive search.  The paper plots these as colour maps; the reproduction
returns the numeric grids and renders them as tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import SearchError
from repro.autotuner.exhaustive import SearchResults


@dataclass
class HeatmapData:
    """One heatmap: rows are ``dim`` values, columns are ``tsize`` values."""

    system: str
    dsize: int
    quantity: str
    dims: list[int]
    tsizes: list[float]
    values: np.ndarray  # shape (len(dims), len(tsizes))

    def value_at(self, dim: int, tsize: float) -> float:
        """Heatmap value for one (dim, tsize) cell."""
        try:
            i = self.dims.index(dim)
            j = self.tsizes.index(tsize)
        except ValueError:
            raise SearchError(
                f"({dim}, {tsize}) not present in heatmap for {self.system}"
            ) from None
        return float(self.values[i, j])

    def gpu_used_mask(self) -> np.ndarray:
        """Boolean mask of cells whose best configuration offloads to a GPU.

        Only meaningful for the ``band`` quantity (band > 0 means offload;
        the paper's "computing on the GPU becomes favourable (band>0)").
        """
        return self.values > 0

    def gpu_threshold_tsize(self, dim: int) -> float | None:
        """Smallest tsize at which the best configuration uses the GPU for ``dim``.

        Returns ``None`` when the GPU is never used for that problem size.
        """
        i = self.dims.index(dim)
        for j, tsize in enumerate(self.tsizes):
            if self.values[i, j] > 0:
                return float(tsize)
        return None


def build_heatmap(
    results: SearchResults, dsize: int, quantity: str = "band"
) -> HeatmapData:
    """Build the Figure 5 heatmap of ``quantity`` for one ``dsize`` slice."""
    if quantity not in ("band", "halo"):
        raise SearchError(f"heatmap quantity must be 'band' or 'halo', got {quantity!r}")
    instances = [p for p in results.instances() if p.dsize == dsize]
    if not instances:
        raise SearchError(f"no instances with dsize={dsize} in the search results")
    dims = sorted({p.dim for p in instances})
    tsizes = sorted({p.tsize for p in instances})
    values = np.full((len(dims), len(tsizes)), np.nan)
    for params in instances:
        best = results.best(params)
        value = best.tunables.band if quantity == "band" else best.tunables.halo
        values[dims.index(params.dim), tsizes.index(params.tsize)] = value
    if np.isnan(values).any():
        raise SearchError(
            "search results do not cover the full (dim, tsize) grid "
            f"for dsize={dsize}"
        )
    return HeatmapData(
        system=results.system,
        dsize=dsize,
        quantity=quantity,
        dims=dims,
        tsizes=[float(t) for t in tsizes],
        values=values,
    )
