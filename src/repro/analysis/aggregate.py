"""Figure 7: best exhaustive runtime vs average-case behaviour.

For every dim-tsize group the paper plots the best exhaustive runtime
("Best" / ber), the average runtime over all tunable-parameter combinations
("AVG") and the standard deviation ("S.D."), with over-threshold points
excluded from the averages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import SearchError
from repro.core.params import InputParams
from repro.autotuner.exhaustive import SearchResults


@dataclass(frozen=True)
class GroupStats:
    """One dim-tsize group of Figure 7."""

    dim: int
    tsize: float
    dsize: int
    best_rtime: float
    avg_rtime: float
    std_rtime: float
    n_configurations: int
    n_excluded: int

    @property
    def avg_over_best(self) -> float:
        """How much slower the average configuration is than the best one."""
        if self.best_rtime <= 0:
            return float("inf")
        return self.avg_rtime / self.best_rtime

    def as_row(self) -> list[object]:
        """The Figure 7 table row used by the text report."""
        return [
            self.dim,
            self.tsize,
            self.dsize,
            self.best_rtime,
            self.avg_rtime,
            self.std_rtime,
            self.avg_over_best,
            self.n_configurations,
            self.n_excluded,
        ]


def average_case_table(
    results: SearchResults, dsize: int | None = None
) -> list[GroupStats]:
    """Figure 7 rows, ordered by (dim, tsize)."""
    instances = results.instances()
    if dsize is not None:
        instances = [p for p in instances if p.dsize == dsize]
    if not instances:
        raise SearchError("no instances selected for the average-case table")
    rows: list[GroupStats] = []
    for params in sorted(instances, key=lambda p: (p.dim, p.tsize, p.dsize)):
        below = results.records_for(params)
        everything = results.records_for(params, include_threshold=True)
        if not below:
            # Every configuration exceeded the threshold; report the best of
            # the over-threshold points so the row is still present.
            best = results.best(params)
            rows.append(
                GroupStats(
                    dim=params.dim,
                    tsize=params.tsize,
                    dsize=params.dsize,
                    best_rtime=best.rtime,
                    avg_rtime=float("nan"),
                    std_rtime=float("nan"),
                    n_configurations=0,
                    n_excluded=len(everything),
                )
            )
            continue
        rows.append(
            GroupStats(
                dim=params.dim,
                tsize=params.tsize,
                dsize=params.dsize,
                best_rtime=results.best(params).rtime,
                avg_rtime=results.average_rtime(params),
                std_rtime=results.std_rtime(params),
                n_configurations=len(below),
                n_excluded=len(everything) - len(below),
            )
        )
    return rows


def group_by_dim(rows: list[GroupStats]) -> dict[int, list[GroupStats]]:
    """Group Figure 7 rows by problem size, preserving tsize order."""
    grouped: dict[int, list[GroupStats]] = {}
    for row in rows:
        grouped.setdefault(row.dim, []).append(row)
    return grouped
