"""Analysis helpers that regenerate the paper's figures as data/tables.

* :mod:`repro.analysis.heatmap`    — Figure 5 (best band / halo heatmaps);
* :mod:`repro.analysis.speedup`    — Figures 6 and 10 (speedups over the
  simple schemes and of the autotuner vs the exhaustive optimum);
* :mod:`repro.analysis.aggregate`  — Figure 7 (best vs average runtime with
  standard deviations, grouped by dim-tsize);
* :mod:`repro.analysis.dispersion` — Figure 8 (violin-style dispersion of the
  configuration space);
* :mod:`repro.analysis.report`     — plain-text / CSV rendering of all of the
  above (this reproduction runs headless, so figures become tables);
* :mod:`repro.analysis.measured`   — the Figure 7-style predicted-vs-measured
  report for local-host profiles (``repro profile``).
"""

from repro.analysis.heatmap import HeatmapData, build_heatmap
from repro.analysis.speedup import (
    SchemeSpeedups,
    scheme_speedup_summary,
    autotune_speedup_summary,
)
from repro.analysis.aggregate import GroupStats, average_case_table
from repro.analysis.dispersion import ViolinStats, dispersion_stats
from repro.analysis.report import render_heatmap, render_table, write_csv
from repro.analysis.measured import (
    measured_report_rows,
    render_measured_report,
    write_measured_report,
)

__all__ = [
    "HeatmapData",
    "build_heatmap",
    "SchemeSpeedups",
    "scheme_speedup_summary",
    "autotune_speedup_summary",
    "GroupStats",
    "average_case_table",
    "ViolinStats",
    "dispersion_stats",
    "render_heatmap",
    "render_table",
    "write_csv",
    "measured_report_rows",
    "render_measured_report",
    "write_measured_report",
]
