"""Figures 6 and 10: speedup summaries.

Figure 6 compares the best exhaustive points against the three simple
schemes (serial, parallel CPU, GPU only).  Figure 10 compares the speedup
over the sequential baseline achieved by the autotuner against the speedup
achieved by the exhaustive search, per system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import SearchError
from repro.core.params import InputParams
from repro.autotuner.baselines import simple_scheme_times
from repro.autotuner.exhaustive import SearchResults
from repro.autotuner.tuner import AutoTuner
from repro.hardware.system import SystemSpec


@dataclass
class SchemeSpeedups:
    """Average speedup of the best exhaustive points over the simple schemes."""

    system: str
    n_instances: int
    vs_serial: float
    vs_cpu_parallel: float
    vs_gpu_only: float
    max_vs_serial: float

    def as_row(self) -> list[object]:
        """The Figure 6 table row used by the text report."""
        return [
            self.system,
            self.n_instances,
            self.vs_serial,
            self.vs_cpu_parallel,
            self.vs_gpu_only,
            self.max_vs_serial,
        ]


def scheme_speedup_summary(
    system: SystemSpec, results: SearchResults, instances: list[InputParams] | None = None
) -> SchemeSpeedups:
    """Figure 6 data: best-point speedups over the three simple schemes."""
    instances = instances if instances is not None else results.instances()
    if not instances:
        raise SearchError("no instances to summarise")
    vs_serial, vs_cpu, vs_gpu = [], [], []
    for params in instances:
        best = results.best(params)
        schemes = simple_scheme_times(system, params)
        speedups = schemes.speedups_of(best.rtime)
        vs_serial.append(speedups["vs_serial"])
        vs_cpu.append(speedups["vs_cpu_parallel"])
        if np.isfinite(speedups["vs_gpu_only"]):
            vs_gpu.append(speedups["vs_gpu_only"])
    return SchemeSpeedups(
        system=system.name,
        n_instances=len(instances),
        vs_serial=float(np.mean(vs_serial)),
        vs_cpu_parallel=float(np.mean(vs_cpu)),
        vs_gpu_only=float(np.mean(vs_gpu)) if vs_gpu else float("nan"),
        max_vs_serial=float(np.max(vs_serial)),
    )


@dataclass
class AutotuneSpeedups:
    """Figure 10 data for one system: exhaustive vs autotuned speedups."""

    system: str
    n_instances: int
    exhaustive_speedup: float
    autotuned_speedup: float

    @property
    def achieved_fraction(self) -> float:
        """Fraction of the exhaustive speedup the autotuner achieves."""
        if self.exhaustive_speedup <= 0:
            return 0.0
        return self.autotuned_speedup / self.exhaustive_speedup

    def as_row(self) -> list[object]:
        """The Figure 10 table row used by the text report."""
        return [
            self.system,
            self.n_instances,
            self.exhaustive_speedup,
            self.autotuned_speedup,
            self.achieved_fraction,
        ]


def autotune_speedup_summary(
    tuner: AutoTuner, instances: list[InputParams]
) -> AutotuneSpeedups:
    """Figure 10 data: average speedups over serial, exhaustive vs autotuned."""
    if not tuner.trained:
        raise SearchError("the AutoTuner must be trained before summarising it")
    if not instances:
        raise SearchError("no instances to summarise")
    exhaustive, autotuned = [], []
    for params in instances:
        serial = tuner.cost_model.baseline_serial(params)
        best_rtime = min(
            (r.rtime for r in tuner.search.sweep_instance(params) if not r.exceeded_threshold),
            default=None,
        )
        if best_rtime is None:
            best_rtime = min(r.rtime for r in tuner.search.sweep_instance(params))
        tuned_rtime = tuner.predicted_rtime(params)
        exhaustive.append(serial / best_rtime)
        autotuned.append(serial / tuned_rtime)
    return AutotuneSpeedups(
        system=tuner.system.name,
        n_instances=len(instances),
        exhaustive_speedup=float(np.mean(exhaustive)),
        autotuned_speedup=float(np.mean(autotuned)),
    )
