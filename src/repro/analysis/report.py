"""Plain-text and CSV rendering of the analysis results.

The 2014 paper presents its evaluation as figures; this reproduction runs in
a headless environment, so every figure is regenerated as (a) the underlying
numeric series and (b) an aligned text table, which the benchmarks print and
EXPERIMENTS.md records.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.heatmap import HeatmapData
from repro.utils.tables import format_csv, format_grid, format_table


def render_heatmap(heatmap: HeatmapData, float_fmt: str = ".0f") -> str:
    """Text rendering of one Figure 5 heatmap (rows = dim, columns = tsize)."""
    title = (
        f"Figure 5 heatmap — system {heatmap.system}, dsize={heatmap.dsize}, "
        f"best {heatmap.quantity} (rows: dim, columns: tsize)"
    )
    grid = format_grid(
        row_labels=heatmap.dims,
        col_labels=[int(t) if float(t).is_integer() else t for t in heatmap.tsizes],
        values=heatmap.values,
        float_fmt=float_fmt,
        corner="dim\\tsize",
    )
    return f"{title}\n{grid}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_fmt: str = ".3f",
) -> str:
    """Text rendering of a generic results table."""
    return format_table(headers, rows, float_fmt=float_fmt, title=title)


def write_csv(
    path: str | Path, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> Path:
    """Write a results table as CSV, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(format_csv(headers, rows) + "\n", encoding="utf-8")
    return path
