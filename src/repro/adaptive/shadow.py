"""Shadow re-tuning: what would the tuner pick, given live evidence?

When drift latches on a signature, the safest first move is to *ask*, not
act: re-run the tuner's resolution with its profile corrected by what the
server actually observed, and log the would-be decision next to the
active plan.  That is the paper's factory-trained decision models
retrained from production telemetry — with production held harmless.

For a :class:`~repro.autotuner.measured.MeasuredTuner` session the shadow
pass is a real retrain: live observations are synthesized into
:class:`~repro.autotuner.measured.MeasuredRecord` entries anchored at the
nearest *profiled* instance (every profiled instance has a serial
baseline, so the training bridge never loses its reference), the stale
records of the active backend at that anchor are superseded, and a fresh
:class:`MeasuredTuner` is trained on the corrected profile.  For other
tuners (cost-model, learned, exhaustive) no profile exists to correct;
the shadow pass degrades to a *recalibration*: keep the plan, adopt the
observed mean as its expectation.

Nothing in this module mutates the live session — promotion to a real
plan swap is the controller's job (:mod:`repro.adaptive.controller`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autotuner.measured import (
    MeasuredProfile,
    MeasuredRecord,
    MeasuredTuner,
)
from repro.autotuner.protocol import PlanDecision
from repro.core.exceptions import ReproError
from repro.facade.plan import ResolvedPlan

from repro.adaptive.observations import SignatureStats, signature_label


@dataclass(frozen=True)
class ShadowDecision:
    """One shadow resolution: active plan vs what live evidence suggests.

    ``reason`` records how the proposal was produced: ``"retrained"``
    (a fresh measured-tuner fit on the observation-corrected profile) or
    ``"recalibrated"`` (no retrainable profile — expectation updated to
    the observed mean, plan unchanged).  ``would_swap`` is True when the
    proposal differs from the active plan in backend, engine, workers or
    tunables — the controller's promotion predicate.
    """

    signature: tuple
    plan: ResolvedPlan
    decision: PlanDecision
    observed_s: float
    samples: int
    reason: str

    @property
    def would_swap(self) -> bool:
        """True when the shadow choice differs from the active plan."""
        return (
            self.decision.backend != self.plan.backend
            or self.decision.engine != self.plan.engine
            or self.decision.workers != self.plan.workers
            or self.decision.tunables != self.plan.tunables
        )

    def to_dict(self) -> dict:
        """JSON-safe rendering for ``/metrics`` and reports."""
        return {
            "signature": signature_label(self.signature),
            "active": {
                "backend": self.plan.backend,
                "engine": self.plan.engine,
                "workers": self.plan.workers,
                "cpu_tile": self.plan.tunables.cpu_tile,
                "expected_ms": (
                    self.plan.expected_s * 1e3
                    if self.plan.expected_s is not None
                    else None
                ),
            },
            "proposed": {
                "backend": self.decision.backend,
                "engine": self.decision.engine,
                "workers": self.decision.workers,
                "cpu_tile": self.decision.tunables.cpu_tile,
                "expected_ms": (
                    self.decision.expected_s * 1e3
                    if self.decision.expected_s is not None
                    else None
                ),
            },
            "observed_ms": self.observed_s * 1e3,
            "samples": self.samples,
            "reason": self.reason,
            "would_swap": self.would_swap,
        }


class ShadowTuner:
    """Re-resolves drifted plans against live observations, read-only.

    Holds the live session only to reach its active tuner; it never
    installs anything.  Each :meth:`resolve` call is self-contained and
    deterministic given the plan and the observed statistics.
    """

    def __init__(self, session) -> None:
        self.session = session

    def resolve(
        self, plan: ResolvedPlan, stats: SignatureStats, signature: tuple
    ) -> ShadowDecision:
        """Shadow-resolve one drifted signature's plan.

        Returns the :class:`ShadowDecision` comparing the active plan to
        what the tuner picks once the live evidence is folded in.
        """
        observed_s = stats.mean
        samples = stats.count
        tuner = self.session.tuner
        decision: PlanDecision | None = None
        reason = "recalibrated"
        if isinstance(tuner, MeasuredTuner):
            try:
                retrained = self._retrain(tuner, plan, observed_s, samples)
                decision = retrained.resolve(plan.app, plan.params)
                reason = "retrained"
            except ReproError:
                decision = None
        if decision is None:
            decision = PlanDecision(
                backend=plan.backend,
                tunables=plan.tunables,
                workers=plan.workers,
                engine=plan.engine,
                expected_s=observed_s,
            )
        return ShadowDecision(
            signature=signature,
            plan=plan,
            decision=decision,
            observed_s=observed_s,
            samples=samples,
            reason=reason,
        )

    def _retrain(
        self,
        tuner: MeasuredTuner,
        plan: ResolvedPlan,
        observed_s: float,
        samples: int,
    ) -> MeasuredTuner:
        """A fresh measured tuner fitted on the observation-corrected profile.

        The live observation supersedes the factory measurements of the
        *active backend at the anchor instance* — under drift the whole
        stale timing of that backend is suspect, and leaving any of it in
        place would let a min() over records keep picking the stale
        number.  Records of other backends (and other instances) stay:
        they are the alternatives the retrained tuner chooses between.
        """
        profile = tuner.profile
        anchor = tuner.nearest_instance(plan.params, plan.app)
        synthesized = MeasuredRecord(
            app=plan.app,
            backend=plan.backend,
            workers=plan.workers,
            params=anchor,
            tunables=plan.tunables,
            wall_s=observed_s,
            repeats=samples,
        )
        records = [
            record
            for record in profile.records
            if not (record.backend == plan.backend and record.params == anchor)
        ]
        records.append(synthesized)
        corrected = MeasuredProfile(
            system=profile.system, host=dict(profile.host), records=records
        )
        return MeasuredTuner.train(corrected)
