"""Streaming latency observations keyed by request signature.

Every served request is a timed observation the tuner never sees during
offline profiling.  This module collects those observations cheaply and
exactly: a :class:`SignatureStats` tracks count/mean/M2/min/max with
Welford's streaming update (the constant-space moment tracking advocated
by the probabilistic-loops literature — no raw sample log needed for mean
or variance) plus a small bounded reservoir of recent latencies so
percentiles stay available for operators.  An :class:`ObservationLog`
owns one :class:`SignatureStats` per request signature, bounded LRU-style
so an adversarial stream of distinct signatures cannot grow memory.

Signatures use the same ``(app, dim, mode, overrides)`` tuple shape as
the server queue's coalescing key (:func:`observation_signature` is the
canonical implementation; ``repro.server.queue.request_signature``
delegates here), so cache keys, batch coalescing and adaptive-tuning
observations all speak about the same traffic classes.

This module must stay import-free of ``repro.server`` — the serving
layer imports the adaptive layer, never the reverse.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict, deque
from typing import Any, Hashable, Mapping

#: Default bound on distinct signatures an ObservationLog tracks.
DEFAULT_SIGNATURES = 256
#: Default per-signature reservoir of recent raw latencies (for p50/p95).
DEFAULT_RESERVOIR = 128
#: Percentiles reported by :meth:`SignatureStats.snapshot`.
SNAPSHOT_PERCENTILES = (50, 95)


def observation_signature(
    app: Any,
    dim: int | None,
    mode: str | None,
    plan_kwargs: Mapping[str, Any] | None = None,
) -> tuple:
    """The canonical traffic-class key of one request.

    Identical inputs produce identical signatures; the tuple is hashable
    so it can key coalescing queues, plan caches and observation logs
    alike.  Plan overrides are folded in by ``repr`` so unhashable values
    (lists, arrays) cannot break the key.
    """
    overrides = tuple(
        sorted((k, repr(v)) for k, v in (plan_kwargs or {}).items())
    )
    return (str(app), dim, mode, overrides)


def signature_label(signature: tuple) -> str:
    """Render a signature tuple as a compact human/JSON-friendly label."""
    app, dim, mode, overrides = signature
    label = f"{app}[dim={dim}]"
    if mode is not None:
        label += f" mode={mode}"
    if overrides:
        label += " " + ",".join(f"{k}={v}" for k, v in overrides)
    return label


def percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile of ``values`` (0 when empty).

    Uses the same rank formula as the server metrics reservoir so the
    adaptive layer and ``/metrics`` report comparable numbers.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(pct / 100 * (len(ordered) - 1))))
    return ordered[rank]


class SignatureStats:
    """Streaming latency statistics of one traffic class.

    Welford's single-pass update keeps count, mean and the centred sum of
    squares (M2) exactly, in O(1) space, under one lock; a bounded deque
    of recent samples backs the percentile view.  ``expected_s`` is a
    slot the adaptive controller fills with the active plan's predicted
    latency so snapshots can show predicted-vs-observed side by side.
    """

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min_s = math.inf
        self.max_s = -math.inf
        self._reservoir: deque[float] = deque(maxlen=max(1, int(reservoir_size)))
        #: The active plan's predicted latency for this signature (seconds),
        #: filled by the adaptive controller; ``None`` when unpredicted.
        self.expected_s: float | None = None

    def record(self, latency_s: float, count: int = 1) -> None:
        """Fold ``count`` observations of ``latency_s`` into the stream."""
        latency_s = float(latency_s)
        with self._lock:
            for _ in range(max(1, int(count))):
                self.count += 1
                delta = latency_s - self.mean
                self.mean += delta / self.count
                self._m2 += delta * (latency_s - self.mean)
            self.min_s = min(self.min_s, latency_s)
            self.max_s = max(self.max_s, latency_s)
            self._reservoir.append(latency_s)

    @property
    def variance(self) -> float:
        """Unbiased sample variance of the stream (0 below two samples)."""
        with self._lock:
            if self.count < 2:
                return 0.0
            return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation of the stream."""
        return math.sqrt(self.variance)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile over the recent-latency reservoir."""
        with self._lock:
            samples = list(self._reservoir)
        return percentile(samples, pct)

    def snapshot(self) -> dict:
        """JSON-safe summary: count, moments and reservoir percentiles."""
        with self._lock:
            count = self.count
            mean = self.mean
            m2 = self._m2
            min_s = self.min_s if self.count else 0.0
            max_s = self.max_s if self.count else 0.0
            samples = list(self._reservoir)
            expected = self.expected_s
        std = math.sqrt(m2 / (count - 1)) if count > 1 else 0.0
        summary = {
            "count": count,
            "mean_ms": mean * 1e3,
            "std_ms": std * 1e3,
            "min_ms": min_s * 1e3,
            "max_ms": max_s * 1e3,
            "expected_ms": expected * 1e3 if expected is not None else None,
        }
        for pct in SNAPSHOT_PERCENTILES:
            summary[f"p{pct}_ms"] = percentile(samples, pct) * 1e3
        return summary


class ObservationLog:
    """Bounded per-signature observation store (LRU over signatures).

    ``record`` folds one (possibly batch-coalesced) latency observation
    into the signature's :class:`SignatureStats`, creating and — beyond
    ``maxsize`` distinct signatures — evicting least-recently-updated
    entries.  ``observations`` counts every folded request, matching the
    server's completed-request counter when fed from batch completion.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_SIGNATURES,
        reservoir_size: int = DEFAULT_RESERVOIR,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"ObservationLog maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.reservoir_size = int(reservoir_size)
        self._lock = threading.RLock()
        self._stats: OrderedDict[Hashable, SignatureStats] = OrderedDict()
        self.observations = 0
        self.evictions = 0

    def record(
        self, signature: Hashable, latency_s: float, count: int = 1
    ) -> SignatureStats:
        """Fold an observation; return the signature's (live) stats."""
        count = max(1, int(count))
        with self._lock:
            stats = self._stats.get(signature)
            if stats is None:
                stats = SignatureStats(reservoir_size=self.reservoir_size)
                self._stats[signature] = stats
            else:
                self._stats.move_to_end(signature)
            while len(self._stats) > self.maxsize:
                self._stats.popitem(last=False)
                self.evictions += 1
            self.observations += count
        stats.record(latency_s, count)
        return stats

    def stats_for(self, signature: Hashable) -> SignatureStats | None:
        """The signature's stats, or ``None`` when untracked/evicted."""
        with self._lock:
            return self._stats.get(signature)

    def reset(self, signature: Hashable) -> None:
        """Forget one signature's stats (e.g. after a live plan swap)."""
        with self._lock:
            self._stats.pop(signature, None)

    def signatures(self) -> list:
        """Tracked signatures, least-recently-updated first."""
        with self._lock:
            return list(self._stats)

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)

    def snapshot(self, limit: int | None = None) -> dict:
        """JSON-safe view: totals plus per-signature summaries.

        Signatures are reported most-recently-updated first; ``limit``
        bounds how many appear (totals always cover everything).
        """
        with self._lock:
            items = list(self._stats.items())[::-1]
            observations = self.observations
            evictions = self.evictions
        tracked = len(items)
        if limit is not None:
            items = items[: max(0, int(limit))]
        return {
            "observations": observations,
            "tracked_signatures": tracked,
            "evictions": evictions,
            "signatures": {
                signature_label(sig): stats.snapshot() for sig, stats in items
            },
        }
