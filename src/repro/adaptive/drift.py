"""Latency drift detection: is a tuned plan still telling the truth?

A plan carries a prediction (``ResolvedPlan.expected_s``, from measured
profiling or the learned model's runtime anchors) that was valid when the
plan was resolved.  Hosts change — thermal throttling, noisy neighbours,
a cache directory filling up — and the prediction silently rots.  The
:class:`DriftDetector` watches each signature's *observed* service times
and decides, deterministically, when they no longer match.

The rule is calibrated rather than absolute, because CI hosts and laptops
disagree wildly on base latency:

1. the first ``min_samples`` observations of a signature form its
   **reference** (their running mean) — nothing is assessed while
   calibrating;
2. an observation **breaches** when it exceeds ``ratio_threshold`` × the
   reference *and* the reference plus ``min_excess_s`` — the absolute
   floor keeps microsecond-scale noise (3× of nothing is still nothing)
   from breaching;
3. only ``hysteresis`` *consecutive* breaching executions latch a
   :class:`DriftEvent` — one garbage-collection pause or scheduler burp
   cannot flap the detector on a noisy 1-core host;
4. a latched signature needs ``hysteresis`` consecutive clean executions
   to **recover**; re-drifting afterwards fires a fresh event.

Assessment is per *execution* (one coalesced batch = one assessment), so
a single slow batch counts once no matter how many requests it answered.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Hashable

from repro.core.exceptions import UsageError

from repro.adaptive.observations import signature_label

#: Bound on remembered drift events (oldest dropped first).
EVENT_HISTORY = 64
#: Bound on per-signature detector states tracked at once.
STATE_LIMIT = 512


@dataclass(frozen=True)
class DriftConfig:
    """Thresholds of one :class:`DriftDetector` (validated at construction).

    ``ratio_threshold`` multiplies the calibrated reference mean;
    ``min_samples`` sets the calibration length (and the minimum evidence
    before any event); ``hysteresis`` is the consecutive-breach latch
    count; ``min_excess_s`` the absolute slowdown floor.
    """

    ratio_threshold: float = 3.0
    min_samples: int = 5
    hysteresis: int = 2
    min_excess_s: float = 0.05

    def __post_init__(self) -> None:
        """Reject impossible thresholds early, with a typed error."""
        if self.ratio_threshold <= 1.0:
            raise UsageError(
                f"ratio_threshold must be > 1, got {self.ratio_threshold}"
            )
        if self.min_samples < 1:
            raise UsageError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.hysteresis < 1:
            raise UsageError(f"hysteresis must be >= 1, got {self.hysteresis}")
        if self.min_excess_s < 0:
            raise UsageError(
                f"min_excess_s must be >= 0, got {self.min_excess_s}"
            )


@dataclass(frozen=True)
class DriftEvent:
    """One latched drift detection for one signature.

    ``observed_s`` is the execution that completed the hysteresis run,
    ``reference_s`` the calibrated baseline mean it was judged against,
    ``expected_s`` the active plan's offline prediction (``None`` for
    unpredicted plans), and ``assessment`` the signature's execution
    ordinal at which the event latched.
    """

    signature: tuple
    observed_s: float
    reference_s: float
    expected_s: float | None
    assessment: int

    @property
    def ratio(self) -> float:
        """Observed over reference — how far the plan has drifted."""
        if self.reference_s <= 0:
            return float("inf")
        return self.observed_s / self.reference_s

    def to_dict(self) -> dict:
        """JSON-safe rendering for ``/metrics`` and reports."""
        return {
            "signature": signature_label(self.signature),
            "observed_ms": self.observed_s * 1e3,
            "reference_ms": self.reference_s * 1e3,
            "expected_ms": (
                self.expected_s * 1e3 if self.expected_s is not None else None
            ),
            "ratio": self.ratio if self.reference_s > 0 else None,
            "assessment": self.assessment,
        }


class _SignatureState:
    """Per-signature calibration and hysteresis bookkeeping."""

    __slots__ = (
        "baseline_count",
        "baseline_mean",
        "breaches",
        "clean",
        "drifted",
        "assessments",
    )

    def __init__(self) -> None:
        self.baseline_count = 0
        self.baseline_mean = 0.0
        self.breaches = 0
        self.clean = 0
        self.drifted = False
        self.assessments = 0


class DriftDetector:
    """Deterministic, calibrated drift detection over many signatures.

    Feed one :meth:`assess` call per execution; it returns the
    :class:`DriftEvent` that latched on this execution, or ``None``.
    The same observation sequence always produces the same events —
    there is no clock or randomness anywhere in the detector.
    """

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config if config is not None else DriftConfig()
        self._lock = threading.Lock()
        self._states: OrderedDict[Hashable, _SignatureState] = OrderedDict()
        self._events: deque[DriftEvent] = deque(maxlen=EVENT_HISTORY)
        self.events_total = 0
        self.recoveries = 0
        self.assessments = 0

    def assess(
        self,
        signature: tuple,
        observed_s: float,
        expected_s: float | None = None,
    ) -> DriftEvent | None:
        """Judge one execution's service time; return a newly-latched event."""
        config = self.config
        with self._lock:
            state = self._states.get(signature)
            if state is None:
                state = _SignatureState()
                self._states[signature] = state
                while len(self._states) > STATE_LIMIT:
                    self._states.popitem(last=False)
            else:
                self._states.move_to_end(signature)
            self.assessments += 1
            state.assessments += 1
            if state.baseline_count < config.min_samples:
                state.baseline_count += 1
                state.baseline_mean += (
                    observed_s - state.baseline_mean
                ) / state.baseline_count
                return None
            reference = state.baseline_mean
            breach = (
                observed_s > reference * config.ratio_threshold
                and observed_s > reference + config.min_excess_s
            )
            if not breach:
                state.breaches = 0
                if state.drifted:
                    state.clean += 1
                    if state.clean >= config.hysteresis:
                        state.drifted = False
                        state.clean = 0
                        self.recoveries += 1
                return None
            state.clean = 0
            state.breaches += 1
            if state.drifted or state.breaches < config.hysteresis:
                return None
            state.drifted = True
            self.events_total += 1
            event = DriftEvent(
                signature=signature,
                observed_s=observed_s,
                reference_s=reference,
                expected_s=expected_s,
                assessment=state.assessments,
            )
            self._events.append(event)
            return event

    def is_drifted(self, signature: tuple) -> bool:
        """True while the signature's drift latch is set."""
        with self._lock:
            state = self._states.get(signature)
            return state.drifted if state is not None else False

    def reset(self, signature: tuple) -> None:
        """Forget a signature entirely (recalibrates from scratch)."""
        with self._lock:
            self._states.pop(signature, None)

    def events(self) -> list[DriftEvent]:
        """Recent latched events, oldest first (bounded history)."""
        with self._lock:
            return list(self._events)

    def snapshot(self) -> dict:
        """JSON-safe counters + recent events for ``/metrics``."""
        with self._lock:
            active = sum(1 for s in self._states.values() if s.drifted)
            events = [event.to_dict() for event in self._events]
            return {
                "events": self.events_total,
                "recoveries": self.recoveries,
                "assessments": self.assessments,
                "active": active,
                "recent": events,
                "config": {
                    "ratio_threshold": self.config.ratio_threshold,
                    "min_samples": self.config.min_samples,
                    "hysteresis": self.config.hysteresis,
                    "min_excess_s": self.config.min_excess_s,
                },
            }
