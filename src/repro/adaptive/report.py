"""Text report of the adaptive loop: predicted vs observed vs shadow choice.

Renders the ``"adaptive"`` section of a ``/metrics`` snapshot (or of a
``repro loadgen`` artifact's final server metrics) as the fig9-style
table ``repro report --kind adaptive`` prints: one row per observed
signature with the plan's predicted latency, the observed mean/p95, and
— where a drift event triggered a shadow resolution — what the online
tuner would run instead.
"""

from __future__ import annotations


def _ms(value: float | None) -> str:
    """Milliseconds with two decimals, or a dash for unknowns."""
    return f"{value:.2f}" if value is not None else "-"


def render_adaptive_report(adaptive: dict | None, delta: dict | None = None) -> str:
    """The full ``repro report --kind adaptive`` text for one snapshot.

    ``adaptive`` is the server's ``/metrics`` ``"adaptive"`` section
    (``None`` when the server ran with ``--adaptive off``); ``delta`` —
    when given — is a loadgen artifact's cold→warm adaptive counter delta,
    appended as a per-run summary line.
    """
    if not isinstance(adaptive, dict):
        return "adaptive tuning: off (no adaptive section in the metrics)"
    lines: list[str] = []
    lines.append(
        f"adaptive tuning [{adaptive.get('mode', '?')}]: "
        f"{adaptive.get('observations', 0)} served observations "
        f"(+{adaptive.get('run_observations', 0)} session runs) over "
        f"{adaptive.get('tracked_signatures', 0)} signatures"
    )
    signatures = adaptive.get("signatures") or {}
    proposals = {
        d.get("signature"): d
        for d in (adaptive.get("shadow") or {}).get("decisions", [])
    }
    installed = (adaptive.get("swaps") or {}).get("installed", {})
    if signatures:
        width = max(len("signature"), max(len(label) for label in signatures))
        header = (
            f"{'signature':<{width}} {'predicted':>10} {'observed':>10} "
            f"{'p95':>10} {'n':>5}  shadow choice"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for label, stats in signatures.items():
            proposal = proposals.get(label)
            choice = "-"
            if proposal is not None:
                prop = proposal.get("proposed", {})
                verb = "swap to" if proposal.get("would_swap") else "keep"
                choice = (
                    f"{verb} {prop.get('backend')}"
                    f"(workers={prop.get('workers')}, "
                    f"tile={prop.get('cpu_tile')}) [{proposal.get('reason')}]"
                )
            if label in installed:
                choice += "  << LIVE"
            lines.append(
                f"{label:<{width}} {_ms(stats.get('expected_ms')):>10} "
                f"{_ms(stats.get('mean_ms')):>10} {_ms(stats.get('p95_ms')):>10} "
                f"{stats.get('count', 0):>5}  {choice}"
            )
    drift = adaptive.get("drift") or {}
    swaps = adaptive.get("swaps") or {}
    lines.append(
        f"drift: {drift.get('events', 0)} events "
        f"({drift.get('active', 0)} active, "
        f"{drift.get('recoveries', 0)} recoveries) over "
        f"{drift.get('assessments', 0)} assessments"
    )
    lines.append(
        f"swaps: {swaps.get('applied', 0)} applied "
        f"({swaps.get('confirmed', 0)} confirmed, "
        f"{swaps.get('rolled_back', 0)} rolled back, "
        f"budget {swaps.get('budget', 0)}); "
        f"shadow evaluations: {(adaptive.get('shadow') or {}).get('evaluations', 0)}"
    )
    if adaptive.get("errors"):
        lines.append(
            f"ERRORS: {adaptive['errors']} internal failures "
            f"(last: {adaptive.get('last_error')})"
        )
    if isinstance(delta, dict):
        lines.append(
            "this run: "
            f"+{delta.get('observations', 0)} observations, "
            f"+{delta.get('drift_events', 0)} drift events, "
            f"+{delta.get('shadow_evaluations', 0)} shadow evaluations, "
            f"+{delta.get('swaps_applied', 0)} swaps "
            f"(+{delta.get('swaps_rolled_back', 0)} rolled back)"
        )
    return "\n".join(lines)
