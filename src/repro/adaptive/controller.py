"""The adaptive control loop: observe → detect drift → shadow → swap.

:class:`AdaptiveController` is the one stateful object tying the layer
together.  The serving path feeds it a service-time observation per
executed batch (:meth:`AdaptiveController.observe`), sessions feed it
pure solve walls through their observer hook
(:meth:`AdaptiveController.record_run`), and everything downstream is
derived:

* every observation updates the per-signature streaming statistics
  (:mod:`repro.adaptive.observations`);
* functional-mode executions of tuner-predicted plans are assessed by the
  calibrated :class:`~repro.adaptive.drift.DriftDetector`;
* a latched drift event triggers one shadow resolution
  (:mod:`repro.adaptive.shadow`), always logged;
* in ``live`` mode a differing shadow decision is **promoted**: the plan
  is swapped atomically through every session's tuned-plan LRU
  (:meth:`repro.session.Session.adopt_plan`), bounded by ``swap_budget``;
  the signature's statistics and drift state restart, and after
  ``min_samples`` fresh observations the swap is either confirmed or —
  when the new plan's mean exceeds the pre-swap mean by more than
  ``rollback_ratio`` — rolled back and the signature pinned against
  further swapping.

``shadow`` mode (the default) runs everything except promotion; ``off``
builds no controller at all.  Internal failures never reach the serving
path: :meth:`observe` traps them into an ``errors`` counter that CI gates
at zero.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.exceptions import ReproError, UsageError
from repro.facade.plan import ResolvedPlan

from repro.adaptive.drift import DriftConfig, DriftDetector
from repro.adaptive.observations import (
    DEFAULT_RESERVOIR,
    DEFAULT_SIGNATURES,
    ObservationLog,
    observation_signature,
    signature_label,
)
from repro.adaptive.shadow import ShadowDecision, ShadowTuner

#: The ``--adaptive`` settings the serving layer understands.
ADAPTIVE_MODES = ("off", "shadow", "live")
#: Bound on remembered shadow decisions (oldest dropped first).
DECISION_HISTORY = 32


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of one :class:`AdaptiveController` (validated at construction).

    ``mode`` selects how far the loop goes (``off``/``shadow``/``live``);
    ``drift`` parameterises the detector; ``signatures``/``reservoir``
    bound the observation store; ``swap_budget`` caps live promotions per
    server lifetime and ``rollback_ratio`` is the post/pre mean ratio
    above which a promoted plan is rolled back.
    """

    mode: str = "shadow"
    drift: DriftConfig = field(default_factory=DriftConfig)
    signatures: int = DEFAULT_SIGNATURES
    reservoir: int = DEFAULT_RESERVOIR
    swap_budget: int = 4
    rollback_ratio: float = 1.0

    def __post_init__(self) -> None:
        """Reject impossible knobs early, with a typed error."""
        if self.mode not in ADAPTIVE_MODES:
            raise UsageError(
                f"adaptive mode must be one of {ADAPTIVE_MODES}, got {self.mode!r}"
            )
        if self.signatures < 1:
            raise UsageError(f"signatures must be >= 1, got {self.signatures}")
        if self.reservoir < 1:
            raise UsageError(f"reservoir must be >= 1, got {self.reservoir}")
        if self.swap_budget < 0:
            raise UsageError(f"swap_budget must be >= 0, got {self.swap_budget}")
        if self.rollback_ratio <= 0:
            raise UsageError(
                f"rollback_ratio must be > 0, got {self.rollback_ratio}"
            )


class _ActiveSwap:
    """Bookkeeping of one promoted plan awaiting confirmation."""

    __slots__ = ("old_plan", "new_plan", "pre_mean_s")

    def __init__(
        self, old_plan: ResolvedPlan, new_plan: ResolvedPlan, pre_mean_s: float
    ) -> None:
        self.old_plan = old_plan
        self.new_plan = new_plan
        self.pre_mean_s = pre_mean_s


class AdaptiveController:
    """Owner of the whole online-tuning loop for one serving stack.

    ``session`` is the server's primary session (plans are looked up
    there); ``sessions`` — when given — is a zero-argument callable
    returning every session a live swap must reach (the shard sessions),
    so sharded servers stay consistent.  All decision state is guarded by
    one lock; :meth:`record_run` deliberately bypasses it (it only
    touches the run log's own locks) so a session observer can never
    deadlock against a swap in progress.
    """

    def __init__(
        self,
        session,
        config: AdaptiveConfig | None = None,
        sessions: Callable[[], list] | None = None,
    ) -> None:
        self.session = session
        self.config = config if config is not None else AdaptiveConfig()
        self._sessions = sessions if sessions is not None else (lambda: [session])
        self.serve_log = ObservationLog(
            maxsize=self.config.signatures, reservoir_size=self.config.reservoir
        )
        self.run_log = ObservationLog(
            maxsize=self.config.signatures, reservoir_size=self.config.reservoir
        )
        self.detector = DriftDetector(self.config.drift)
        self.shadow = ShadowTuner(session)
        self._lock = threading.Lock()
        self._decisions: deque[ShadowDecision] = deque(maxlen=DECISION_HISTORY)
        self._watch: dict[tuple, _ActiveSwap] = {}
        self._swapped: dict[tuple, _ActiveSwap] = {}
        self._pinned: set[tuple] = set()
        self._default_mode = session.mode.value
        self.shadow_evaluations = 0
        self.would_swap = 0
        self.swaps_applied = 0
        self.swaps_rolled_back = 0
        self.swaps_confirmed = 0
        self.budget_denied = 0
        self.unpredicted = 0
        self.errors = 0
        self.last_error: str | None = None

    # ------------------------------------------------------------------
    # Observation entry points
    # ------------------------------------------------------------------
    def observe(
        self,
        app: Any,
        dim: int | None,
        mode: str | None,
        plan_kwargs: Mapping[str, Any] | None,
        service_s: float,
        count: int = 1,
    ) -> None:
        """Fold one executed batch's service time into the loop.

        Called by the server once per coalesced batch execution with the
        batch head's identity and the wall time spent executing (queue
        wait excluded, so bursty arrivals cannot fake a drift).  Never
        raises: internal failures land in the ``errors`` counter.
        """
        norm_mode = mode if mode is not None else self._default_mode
        signature = observation_signature(app, dim, norm_mode, plan_kwargs)
        stats = self.serve_log.record(signature, service_s, count)
        if norm_mode != "functional":
            return
        try:
            with self._lock:
                self._assess(
                    signature, app, dim, dict(plan_kwargs or {}), service_s, stats
                )
        except Exception as error:  # noqa: BLE001 - must never break serving
            self.errors += 1
            self.last_error = f"{type(error).__name__}: {error}"

    def record_run(self, plan: ResolvedPlan, mode, wall_s: float) -> None:
        """Session observer hook: one pure solve wall, no serving overhead.

        These walls are what shadow retraining treats as measured
        evidence — they time exactly what a profile sweep would time.
        """
        mode_name = getattr(mode, "value", mode)
        signature = observation_signature(
            plan.app, plan.dim, mode_name, dict(plan.app_kwargs)
        )
        self.run_log.record(signature, wall_s)

    # ------------------------------------------------------------------
    # The loop body (under the controller lock)
    # ------------------------------------------------------------------
    def _assess(
        self,
        signature: tuple,
        app: Any,
        dim: int | None,
        plan_kwargs: dict,
        service_s: float,
        stats,
    ) -> None:
        """Drift-assess one execution; promote/rollback as configured."""
        watched = self._watch.get(signature)
        if watched is not None:
            self._judge_swap(signature, watched, stats)
            return
        plan = self._plan_for(app, dim, plan_kwargs)
        if plan is None or plan.expected_s is None:
            self.unpredicted += 1
            return
        stats.expected_s = plan.expected_s
        event = self.detector.assess(signature, service_s, plan.expected_s)
        if event is None:
            return
        decision = self.shadow.resolve(plan, stats, signature)
        self.shadow_evaluations += 1
        self._decisions.append(decision)
        if decision.would_swap:
            self.would_swap += 1
        if (
            self.config.mode != "live"
            or not decision.would_swap
            or signature in self._pinned
        ):
            return
        if self.swaps_applied >= self.config.swap_budget:
            self.budget_denied += 1
            return
        self._promote(signature, plan, decision, stats)

    def _plan_for(
        self, app: Any, dim: int | None, plan_kwargs: dict
    ) -> ResolvedPlan | None:
        """The active plan of one signature, or ``None`` when unresolvable."""
        try:
            return self.session.plan(app, dim, **plan_kwargs)
        except ReproError:
            return None

    def _promote(
        self,
        signature: tuple,
        plan: ResolvedPlan,
        decision: ShadowDecision,
        stats,
    ) -> None:
        """Install the shadow decision as the live plan for this signature."""
        proposed = decision.decision
        new_plan = plan.with_(
            backend=proposed.backend,
            engine=proposed.engine,
            workers=proposed.workers,
            tunables=proposed.tunables.clipped(plan.dim),
            expected_s=proposed.expected_s,
            tuner="adaptive",
        )
        for session in self._distinct_sessions():
            session.adopt_plan(new_plan)
        self.swaps_applied += 1
        self._watch[signature] = _ActiveSwap(plan, new_plan, stats.mean)
        # Fresh statistics + drift calibration for the new plan: the old
        # stream described a plan that is no longer serving.
        self.serve_log.reset(signature)
        self.detector.reset(signature)

    def _judge_swap(self, signature: tuple, swap: _ActiveSwap, stats) -> None:
        """Confirm or roll back a promoted plan once evidence suffices."""
        stats.expected_s = swap.new_plan.expected_s
        if stats.count < self.config.drift.min_samples:
            return
        del self._watch[signature]
        if stats.mean > swap.pre_mean_s * self.config.rollback_ratio:
            for session in self._distinct_sessions():
                session.adopt_plan(swap.old_plan)
            self.swaps_rolled_back += 1
            self._pinned.add(signature)
            self.serve_log.reset(signature)
            self.detector.reset(signature)
            return
        self.swaps_confirmed += 1
        self._swapped[signature] = swap

    def _distinct_sessions(self) -> list:
        """Every session a swap must reach, deduplicated by identity."""
        seen: dict[int, Any] = {}
        for session in self._sessions():
            seen.setdefault(id(session), session)
        return list(seen.values())

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def decisions(self) -> list[ShadowDecision]:
        """Recent shadow decisions, oldest first (bounded history)."""
        with self._lock:
            return list(self._decisions)

    def snapshot(self) -> dict:
        """JSON-safe state of the whole loop for ``/metrics`` and reports."""
        observations = self.serve_log.snapshot()
        with self._lock:
            swapped_labels = {
                signature_label(sig): {
                    "from_backend": swap.old_plan.backend,
                    "to_backend": swap.new_plan.backend,
                    "to_workers": swap.new_plan.workers,
                    "pre_mean_ms": swap.pre_mean_s * 1e3,
                }
                for sig, swap in self._swapped.items()
            }
            watching = [signature_label(sig) for sig in self._watch]
            pinned = [signature_label(sig) for sig in self._pinned]
            decisions = [decision.to_dict() for decision in self._decisions]
            counters = {
                "evaluations": self.shadow_evaluations,
                "would_swap": self.would_swap,
            }
            swaps = {
                "budget": self.config.swap_budget,
                "applied": self.swaps_applied,
                "confirmed": self.swaps_confirmed,
                "rolled_back": self.swaps_rolled_back,
                "budget_denied": self.budget_denied,
                "watching": watching,
                "pinned": pinned,
                "installed": swapped_labels,
            }
            errors = self.errors
            last_error = self.last_error
            unpredicted = self.unpredicted
        return {
            "mode": self.config.mode,
            "observations": observations["observations"],
            "run_observations": self.run_log.observations,
            "tracked_signatures": observations["tracked_signatures"],
            "signatures": observations["signatures"],
            "drift": self.detector.snapshot(),
            "shadow": {**counters, "decisions": decisions},
            "swaps": swaps,
            "unpredicted": unpredicted,
            "errors": errors,
            "last_error": last_error,
        }
