"""Online adaptive tuning: close the loop from live traffic to plans.

The offline story (profile → train → tune) assumes the host at serving
time behaves like the host at profiling time.  This package drops that
assumption: served requests become streaming observations
(:mod:`~repro.adaptive.observations`), a calibrated detector decides
when a plan's prediction no longer matches reality
(:mod:`~repro.adaptive.drift`), a shadow tuner re-resolves against the
corrected evidence without touching traffic
(:mod:`~repro.adaptive.shadow`), and a controller optionally promotes
the shadow's choice to a live, rollback-guarded plan swap
(:mod:`~repro.adaptive.controller`).  ``repro serve --adaptive
{off,shadow,live}`` selects how far the loop runs; ``repro report
--kind adaptive`` renders it (:mod:`~repro.adaptive.report`).

Import direction: the serving layer imports this package; nothing here
imports ``repro.server``.
"""

from repro.adaptive.controller import (
    ADAPTIVE_MODES,
    AdaptiveConfig,
    AdaptiveController,
)
from repro.adaptive.drift import DriftConfig, DriftDetector, DriftEvent
from repro.adaptive.observations import (
    ObservationLog,
    SignatureStats,
    observation_signature,
    signature_label,
)
from repro.adaptive.report import render_adaptive_report
from repro.adaptive.shadow import ShadowDecision, ShadowTuner

__all__ = [
    "ADAPTIVE_MODES",
    "AdaptiveConfig",
    "AdaptiveController",
    "DriftConfig",
    "DriftDetector",
    "DriftEvent",
    "ObservationLog",
    "ShadowDecision",
    "ShadowTuner",
    "SignatureStats",
    "observation_signature",
    "render_adaptive_report",
    "signature_label",
]
