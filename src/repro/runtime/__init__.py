"""Execution engines for the wavefront pattern.

Executors come in two flavours:

* :class:`repro.runtime.serial.SerialExecutor` — the optimised sequential
  baseline, also the reference implementation the others are validated
  against;
* :class:`repro.runtime.hybrid.HybridExecutor` — the paper's three-phase
  CPU / GPU / CPU strategy, parameterised by
  :class:`repro.core.params.TunableParams`, built from the tiled CPU-parallel
  executor and the single-/multi-GPU band executors.

Every executor supports two modes: ``functional`` (cell values are really
computed, results validated against the serial sweep) and ``simulate`` (only
the analytic cost model is evaluated, used by the large parameter sweeps).
"""

from repro.runtime.result import ExecutionResult
from repro.runtime.timeline import Timeline
from repro.runtime.executor_base import ExecutionMode, Executor
from repro.runtime.serial import SerialExecutor
from repro.runtime.cpu_parallel import CPUParallelExecutor
from repro.runtime.gpu_single import SingleGPUBandExecutor
from repro.runtime.gpu_multi import MultiGPUBandExecutor
from repro.runtime.hybrid import HybridExecutor

__all__ = [
    "ExecutionResult",
    "Timeline",
    "ExecutionMode",
    "Executor",
    "SerialExecutor",
    "CPUParallelExecutor",
    "SingleGPUBandExecutor",
    "MultiGPUBandExecutor",
    "HybridExecutor",
]
