"""Execution engines for the wavefront pattern.

Executors come in two flavours:

* :class:`repro.runtime.serial.SerialExecutor` — the optimised sequential
  baseline, also the reference implementation the others are validated
  against;
* :class:`repro.runtime.vectorized.VectorizedSerialExecutor` — the same
  sweep with every anti-diagonal evaluated as one NumPy batch; the default
  single-core backend when NumPy is available;
* :class:`repro.runtime.hybrid.HybridExecutor` — the paper's three-phase
  CPU / GPU / CPU strategy, parameterised by
  :class:`repro.core.params.TunableParams`, built from the tiled CPU-parallel
  executor and the single-/multi-GPU band executors.

All executors are registered by strategy name in
:mod:`repro.runtime.registry`; construct them uniformly with
:func:`repro.runtime.registry.get_executor`.

Every executor supports two modes: ``functional`` (cell values are really
computed, results validated against the serial sweep) and ``simulate`` (only
the analytic cost model is evaluated, used by the large parameter sweeps).
"""

from repro.runtime.result import ExecutionResult
from repro.runtime.timeline import Timeline
from repro.runtime.executor_base import ExecutionMode, Executor
from repro.runtime.serial import SerialExecutor
from repro.runtime.vectorized import (
    DiagonalSweepEngine,
    VectorizedSerialExecutor,
    compute_diagonal_range_vectorized,
    engine_for,
    numpy_available,
)
from repro.runtime.cpu_parallel import CPUParallelExecutor
from repro.runtime.compiled import CompiledExecutor, compiled_fill_for, numba_available
from repro.runtime.mp_parallel import (
    MPParallelExecutor,
    MPWavefrontPool,
    PipelinedMPExecutor,
    TileSweeper,
    resolve_worker_count,
)
from repro.runtime.scheduler import DependencyGraph, PipelinedSchedule, run_pipelined
from repro.runtime.shared_grid import SharedGridBuffer
from repro.runtime.gpu_single import SingleGPUBandExecutor
from repro.runtime.gpu_multi import MultiGPUBandExecutor
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.registry import (
    ENGINE_SPECS,
    EXECUTORS,
    EngineSpec,
    available_executors,
    available_serial_engines,
    default_serial_executor,
    engines_with,
    get_executor,
    register_executor,
)

__all__ = [
    "ExecutionResult",
    "Timeline",
    "ExecutionMode",
    "Executor",
    "SerialExecutor",
    "VectorizedSerialExecutor",
    "DiagonalSweepEngine",
    "compute_diagonal_range_vectorized",
    "engine_for",
    "numpy_available",
    "CPUParallelExecutor",
    "CompiledExecutor",
    "compiled_fill_for",
    "numba_available",
    "MPParallelExecutor",
    "MPWavefrontPool",
    "PipelinedMPExecutor",
    "TileSweeper",
    "DependencyGraph",
    "PipelinedSchedule",
    "run_pipelined",
    "SharedGridBuffer",
    "resolve_worker_count",
    "SingleGPUBandExecutor",
    "MultiGPUBandExecutor",
    "HybridExecutor",
    "ENGINE_SPECS",
    "EXECUTORS",
    "EngineSpec",
    "available_executors",
    "engines_with",
    "available_serial_engines",
    "default_serial_executor",
    "get_executor",
    "register_executor",
]
