"""Tiled CPU-parallel execution of the whole grid (the paper's scheme (b))."""

from __future__ import annotations

from repro.core.grid import WavefrontGrid
from repro.core.params import TunableParams
from repro.core.pattern import WavefrontProblem
from repro.core.tiling import TileDecomposition
from repro.hardware.costmodel import PhaseBreakdown
from repro.runtime.compute import compute_tile
from repro.runtime.executor_base import Executor
from repro.runtime.scheduler import TileScheduler, run_schedule


class CPUParallelExecutor(Executor):
    """Whole-grid tiled parallel execution across all CPU cores, no GPU phase.

    Functionally the tile wavefront is executed wave by wave (optionally on a
    real thread pool); the simulated runtime is the cost model's
    :meth:`repro.hardware.costmodel.CostModel.cpu_parallel_time`.

    The thread path is GIL-bound, so wall-clock never scales with cores —
    this executor models the paper's scheme (b) and keeps the scalar tiled
    access order.  For execution that really uses the cores, see the
    shared-memory :class:`repro.runtime.mp_parallel.MPParallelExecutor`.
    """

    strategy = "cpu-parallel"

    def __init__(self, system, constants=None, use_threads: bool = False) -> None:
        super().__init__(system, constants)
        self.use_threads = use_threads

    def _breakdown(self, problem: WavefrontProblem, tunables: TunableParams) -> PhaseBreakdown:
        params = problem.input_params()
        return PhaseBreakdown(
            pre_s=self.cost_model.cpu_parallel_time(params, tunables.cpu_tile)
        )

    def _run_functional(
        self, problem: WavefrontProblem, tunables: TunableParams
    ) -> tuple[WavefrontGrid, dict]:
        grid = problem.make_grid()
        decomp = TileDecomposition(problem.dim, problem.dim, tunables.cpu_tile)
        scheduler = TileScheduler(decomp, workers=self.system.cpu.workers)
        executed = run_schedule(
            scheduler.waves(),
            lambda tile: compute_tile(problem, grid, tile),
            use_threads=self.use_threads,
            max_workers=self.system.cpu.workers,
        )
        return grid, {
            "tiles_executed": executed,
            "tile_waves": scheduler.n_waves,
            "workers": self.system.cpu.workers,
        }

    def _validate(self, problem: WavefrontProblem, tunables: TunableParams) -> TunableParams:
        # This strategy never uses a GPU: keep the cpu_tile choice but drop
        # any GPU-related settings the caller may have passed.
        tunables = tunables.clipped(problem.dim)
        return TunableParams(cpu_tile=tunables.cpu_tile)
