"""Whole-grid execution on a single GPU (the paper's scheme (c), one device)."""

from __future__ import annotations

from repro.core.params import TunableParams
from repro.core.pattern import WavefrontProblem
from repro.runtime.hybrid import HybridExecutor


class SingleGPUBandExecutor(HybridExecutor):
    """Run the entire grid in the GPU phase on one device.

    This is the "entirely in the GPU" simple scheme the heatmap points are
    compared against in Figure 6; it is the hybrid executor with the band
    forced to cover every diagonal and a single device selected.
    """

    strategy = "gpu-only-single"

    def __init__(self, system, constants=None, gpu_tile: int = 1) -> None:
        super().__init__(system, constants)
        self.gpu_tile = gpu_tile

    def _validate(self, problem: WavefrontProblem, tunables: TunableParams) -> TunableParams:
        forced = TunableParams.from_encoding(
            cpu_tile=1, band=problem.dim - 1, halo=-1, gpu_tile=self.gpu_tile
        )
        return super()._validate(problem, forced)
