"""Shared functional computation helpers.

Everything that actually evaluates kernel values on the host grid lives here,
so that the serial executor, the tiled CPU-parallel executor and the CPU
phases of the hybrid executor produce bit-identical results by construction.
"""

from __future__ import annotations

import numpy as np

from repro.core import diagonal as dg
from repro.core.exceptions import ExecutionError
from repro.core.grid import WavefrontGrid
from repro.core.pattern import WavefrontProblem
from repro.core.tiling import Tile


def compute_cells(
    problem: WavefrontProblem,
    grid: WavefrontGrid,
    i: np.ndarray,
    j: np.ndarray,
) -> None:
    """Compute the cells ``(i, j)`` in place, assuming their deps are ready.

    All cells passed in one call must be mutually independent (i.e. lie on a
    single anti-diagonal, possibly restricted to a tile).
    """
    i = np.asarray(i)
    j = np.asarray(j)
    if i.size == 0:
        return
    west, north, nw = grid.neighbours(i, j, boundary=problem.boundary)
    values = problem.kernel.diagonal(i, j, west, north, nw)
    values = problem.kernel.validate_output(values, i.size)
    grid.values[i, j] = values


def compute_diagonal(problem: WavefrontProblem, grid: WavefrontGrid, d: int) -> int:
    """Compute one full anti-diagonal of the grid; returns the cell count."""
    cells = dg.diagonal_cells(d, grid.dim, grid.dim)
    compute_cells(problem, grid, cells[:, 0], cells[:, 1])
    return cells.shape[0]


def compute_diagonal_range(
    problem: WavefrontProblem, grid: WavefrontGrid, d_lo: int, d_hi: int
) -> int:
    """Compute diagonals ``d_lo .. d_hi`` inclusive; returns total cells computed."""
    if d_hi < d_lo:
        return 0
    total = 0
    for d in range(d_lo, d_hi + 1):
        total += compute_diagonal(problem, grid, d)
    return total


def compute_tile(problem: WavefrontProblem, grid: WavefrontGrid, tile: Tile) -> int:
    """Compute every cell of ``tile``, sweeping the tile's own anti-diagonals.

    The caller is responsible for ordering tiles so that the west / north /
    north-west neighbour tiles are already complete (the tile wavefront).
    """
    n_local_diags = tile.n_rows + tile.n_cols - 1
    total = 0
    for ld in range(n_local_diags):
        i_lo = max(0, ld - (tile.n_cols - 1))
        i_hi = min(tile.n_rows - 1, ld)
        li = np.arange(i_lo, i_hi + 1)
        lj = ld - li
        compute_cells(problem, grid, tile.row_start + li, tile.col_start + lj)
        total += li.size
    return total


def reference_grid(problem: WavefrontProblem) -> WavefrontGrid:
    """Compute the whole problem with a plain serial sweep (reference result)."""
    grid = problem.make_grid()
    compute_diagonal_range(problem, grid, 0, 2 * problem.dim - 2)
    return grid


def verify_against_reference(
    problem: WavefrontProblem, grid: WavefrontGrid, rtol: float = 1e-9, atol: float = 1e-9
) -> None:
    """Raise :class:`ExecutionError` when ``grid`` differs from the serial sweep."""
    ref = reference_grid(problem)
    if not ref.allclose(grid, rtol=rtol, atol=atol):
        diff = np.abs(ref.values - grid.values)
        worst = np.unravel_index(np.argmax(diff), diff.shape)
        raise ExecutionError(
            f"functional result mismatch for {problem.name!r}: max error "
            f"{diff.max():.3e} at cell {worst}"
        )
