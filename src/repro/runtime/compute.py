"""Shared functional computation helpers.

Everything that actually evaluates kernel values on the host grid lives here,
so that the serial executor, the tiled CPU-parallel executor and the CPU
phases of the hybrid executor produce bit-identical results by construction.

The probabilistic application family (:mod:`repro.apps.viterbi`,
:mod:`repro.apps.stochastic_path`, :mod:`repro.apps.knapsack`'s
expected-value variant) additionally needs *probability-semiring*
arithmetic: log-space sums (:func:`logsumexp_pair`) and max-product steps
(:func:`max_product_pair`).  Those primitives live here — not in the app
modules — so the serial :meth:`~repro.core.pattern.WavefrontKernel.diagonal`
path, the fused evaluators of the vectorized engine and the mp-parallel
workers all evaluate one shared, numerically-stable implementation.  Both
helpers are elementwise, which makes every sub-range / tile sweep correct by
construction (a tile boundary can never change an elementwise result).
"""

from __future__ import annotations

import numpy as np

from repro.core import diagonal as dg
from repro.core.exceptions import ExecutionError
from repro.core.grid import WavefrontGrid
from repro.core.pattern import WavefrontProblem
from repro.core.tiling import Tile


# ----------------------------------------------------------------------
# Probability-semiring primitives (log space)
# ----------------------------------------------------------------------
def logsumexp_pair(a, b, out: np.ndarray | None = None) -> np.ndarray:
    """Elementwise ``log(exp(a) + exp(b))``, stable across the float range.

    The workhorse of the log-space *sum* semiring: computed as
    ``max(a, b) + log1p(exp(-|a - b|))``, so logits near ``±700`` neither
    overflow nor underflow, and the result is exact to one ulp of the naive
    formula wherever the naive formula is representable.  Edge cases follow
    the mathematical limits without emitting any ``RuntimeWarning``:

    * both operands ``-inf`` → ``-inf``  (empty sum of probabilities);
    * one operand ``-inf``   → the other operand unchanged;
    * ``+inf`` anywhere      → ``+inf``.

    ``out`` (optional) receives the result in place — the fused diagonal
    evaluators pass the grid's strided output view directly.  Scalars in,
    scalar-shaped 0-d array out; use ``float(...)`` when a Python float is
    needed.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    big = np.maximum(a, b)
    small = np.minimum(a, b)
    # |a - b| via the ordered pair so inf - inf never happens for the
    # both--inf / both-+inf columns (big == small there → diff forced to 0).
    with np.errstate(invalid="ignore"):
        diff = np.subtract(big, small)
    same = big == small  # covers both -inf and both +inf (and exact ties)
    diff = np.where(same, 0.0, diff)
    # exp(-diff) underflows harmlessly to 0.0 for large gaps; suppress the
    # underflow signal rather than let it leak as a RuntimeWarning.
    with np.errstate(under="ignore"):
        correction = np.log1p(np.exp(-diff))
    # Where the dominant operand is infinite the correction must not drag a
    # finite term in (e.g. -inf + log(2) is still -inf, but inf + c is nan
    # only through inf - inf, which `same` already removed).
    correction = np.where(np.isinf(big), 0.0, correction)
    result = big + correction
    if out is not None:
        out[...] = result
        return out
    return result


def max_product_pair(a, b, out: np.ndarray | None = None) -> np.ndarray:
    """Elementwise max-product step in log space: simply ``max(a, b)``.

    Named (rather than spelled ``np.maximum`` at every call site) so the
    Viterbi-style kernels and their brute-force references share one
    definition of the semiring's ``⊕``; in log space the *product* is the
    ``+`` the caller applies to its operands before combining.  Bit-exact by
    construction — ``max`` introduces no rounding — which is what lets the
    differential battery require exact equality for max-product apps.
    """
    if out is not None:
        return np.maximum(a, b, out=out)
    return np.maximum(a, b)


def logsumexp(values, axis: int | None = None) -> np.ndarray:
    """Stable ``log(sum(exp(values)))`` reduction along ``axis``.

    The n-ary companion of :func:`logsumexp_pair` for tracebacks and
    references: shifts by the axis maximum before exponentiating, and maps
    all-``-inf`` reductions to ``-inf`` (an empty probability sum) without
    emitting warnings.
    """
    values = np.asarray(values, dtype=float)
    big = np.max(values, axis=axis, keepdims=True, initial=-np.inf)
    shift = np.where(np.isfinite(big), big, 0.0)
    with np.errstate(under="ignore", over="ignore", divide="ignore"):
        total = np.log(np.sum(np.exp(values - shift), axis=axis, keepdims=True))
        total = total + shift
    # All--inf (or empty) reductions already produced -inf through log(0);
    # +inf operands dominate through exp overflow to inf.  Only the shape
    # bookkeeping remains.
    if axis is not None:
        result = np.squeeze(total, axis=axis)
    else:
        result = np.squeeze(total)
    if result.ndim == 0:
        return result[()]
    return result


def compute_cells(
    problem: WavefrontProblem,
    grid: WavefrontGrid,
    i: np.ndarray,
    j: np.ndarray,
) -> None:
    """Compute the cells ``(i, j)`` in place, assuming their deps are ready.

    All cells passed in one call must be mutually independent (i.e. lie on a
    single anti-diagonal, possibly restricted to a tile).
    """
    i = np.asarray(i)
    j = np.asarray(j)
    if i.size == 0:
        return
    west, north, nw = grid.neighbours(i, j, boundary=problem.boundary)
    values = problem.kernel.diagonal(i, j, west, north, nw)
    values = problem.kernel.validate_output(values, i.size)
    grid.values[i, j] = values


def compute_diagonal(problem: WavefrontProblem, grid: WavefrontGrid, d: int) -> int:
    """Compute one full anti-diagonal of the grid; returns the cell count."""
    cells = dg.diagonal_cells(d, grid.dim, grid.dim)
    compute_cells(problem, grid, cells[:, 0], cells[:, 1])
    return cells.shape[0]


def compute_diagonal_range(
    problem: WavefrontProblem, grid: WavefrontGrid, d_lo: int, d_hi: int
) -> int:
    """Compute diagonals ``d_lo .. d_hi`` inclusive; returns total cells computed."""
    if d_hi < d_lo:
        return 0
    total = 0
    for d in range(d_lo, d_hi + 1):
        total += compute_diagonal(problem, grid, d)
    return total


def compute_tile(problem: WavefrontProblem, grid: WavefrontGrid, tile: Tile) -> int:
    """Compute every cell of ``tile``, sweeping the tile's own anti-diagonals.

    The caller is responsible for ordering tiles so that the west / north /
    north-west neighbour tiles are already complete (the tile wavefront).
    """
    n_local_diags = tile.n_rows + tile.n_cols - 1
    total = 0
    for ld in range(n_local_diags):
        i_lo = max(0, ld - (tile.n_cols - 1))
        i_hi = min(tile.n_rows - 1, ld)
        li = np.arange(i_lo, i_hi + 1)
        lj = ld - li
        compute_cells(problem, grid, tile.row_start + li, tile.col_start + lj)
        total += li.size
    return total


def reference_grid(problem: WavefrontProblem) -> WavefrontGrid:
    """Compute the whole problem with a plain serial sweep (reference result)."""
    grid = problem.make_grid()
    compute_diagonal_range(problem, grid, 0, 2 * problem.dim - 2)
    return grid


def verify_against_reference(
    problem: WavefrontProblem, grid: WavefrontGrid, rtol: float = 1e-9, atol: float = 1e-9
) -> None:
    """Raise :class:`ExecutionError` when ``grid`` differs from the serial sweep."""
    ref = reference_grid(problem)
    if not ref.allclose(grid, rtol=rtol, atol=atol):
        diff = np.abs(ref.values - grid.values)
        worst = np.unravel_index(np.argmax(diff), diff.shape)
        raise ExecutionError(
            f"functional result mismatch for {problem.name!r}: max error "
            f"{diff.max():.3e} at cell {worst}"
        )
