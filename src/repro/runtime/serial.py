"""The optimised sequential baseline executor."""

from __future__ import annotations

from repro.core.grid import WavefrontGrid
from repro.core.params import TunableParams
from repro.core.pattern import WavefrontProblem
from repro.hardware.costmodel import PhaseBreakdown
from repro.runtime.compute import compute_diagonal_range
from repro.runtime.executor_base import Executor


class SerialExecutor(Executor):
    """Single-core sequential sweep of the whole grid.

    This is the baseline every speedup in the paper is reported against
    ("an optimized sequential baseline"), and it is also the reference
    implementation the parallel executors are validated against in the test
    suite.
    """

    strategy = "serial"

    def _breakdown(self, problem: WavefrontProblem, tunables: TunableParams) -> PhaseBreakdown:
        params = problem.input_params()
        return PhaseBreakdown(pre_s=self.cost_model.serial_time(params))

    def _run_functional(
        self, problem: WavefrontProblem, tunables: TunableParams
    ) -> tuple[WavefrontGrid, dict]:
        grid = problem.make_grid()
        cells = compute_diagonal_range(problem, grid, 0, 2 * problem.dim - 2)
        return grid, {"cells_computed": cells}

    def _validate(self, problem: WavefrontProblem, tunables: TunableParams) -> TunableParams:
        # The serial baseline ignores tunables entirely; normalise them so the
        # result object records the canonical serial configuration.
        return TunableParams(cpu_tile=1)
