"""Functional execution of the GPU band (phase 2 of the hybrid strategy).

One :class:`BandRunner` drives 1 or 2 simulated GPUs through the band of
diagonals assigned to phase 2:

* every diagonal is split across the devices by
  :func:`repro.core.partition.partition_diagonal`, with each device also
  computing a redundant *halo* of its neighbour's cells;
* a device keeps the two previously computed diagonals locally, together
  with a per-cell validity mask: cells computed from locally valid data are
  valid, everything else goes stale as the sweep advances;
* whenever a device could no longer compute its *owned* cells from valid
  local data, a **halo swap** is performed: the devices exchange their owned
  segments of the previous two diagonals through the host;
* at the end of the band every device flushes its owned results back to the
  host grid (the paper's single "results back" transfer).

The runner's results are bit-identical to the serial sweep by construction —
this is asserted by the integration and property tests — while its operation
counts (kernel launches, halo swaps, transfer volumes) are what the analytic
cost model charges time for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import diagonal as dg
from repro.core.exceptions import ExecutionError
from repro.core.grid import WavefrontGrid
from repro.core.params import TunableParams
from repro.core.partition import partition_diagonal
from repro.core.pattern import WavefrontProblem
from repro.core.plan import ThreePhasePlan
from repro.device.context import DeviceContext
from repro.device.events import DeviceEvent, EventKind
from repro.device.kernel import KernelSpec, WorkGroupConfig


@dataclass
class _DeviceDiagonal:
    """A device's local copy of one diagonal: values plus per-cell validity."""

    d: int
    vals: np.ndarray
    valid: np.ndarray

    @classmethod
    def empty(cls, d: int, length: int) -> "_DeviceDiagonal":
        return cls(d=d, vals=np.zeros(length), valid=np.zeros(length, dtype=bool))

    @classmethod
    def full(cls, d: int, vals: np.ndarray) -> "_DeviceDiagonal":
        vals = np.asarray(vals, dtype=float)
        return cls(d=d, vals=vals.copy(), valid=np.ones(vals.size, dtype=bool))


@dataclass
class _DeviceState:
    """Everything one device keeps across the band sweep."""

    index: int
    prev1: _DeviceDiagonal | None = None
    prev2: _DeviceDiagonal | None = None
    #: (diagonal, own_start, values) accumulated for the final flush.
    own_segments: list[tuple[int, int, np.ndarray]] = field(default_factory=list)

    def rotate(self, current: _DeviceDiagonal) -> None:
        self.prev2 = self.prev1
        self.prev1 = current

    def owned_cells(self) -> int:
        return sum(seg[2].size for seg in self.own_segments)


def _dependency_indices(d: int, ks: np.ndarray, dim: int):
    """Dependency bookkeeping for cells at local offsets ``ks`` on diagonal ``d``.

    Returns ``(i, j, kw, kn, knw, has_w, has_n, has_nw)`` where the ``k*``
    arrays are local offsets into diagonals ``d-1`` / ``d-2`` and the
    ``has_*`` masks say whether the corresponding neighbour exists at all.
    """
    i_min_d = max(0, d - (dim - 1))
    i = i_min_d + ks
    j = d - i
    i_min_1 = max(0, (d - 1) - (dim - 1))
    i_min_2 = max(0, (d - 2) - (dim - 1))
    has_w = j >= 1
    has_n = i >= 1
    has_nw = has_w & has_n
    kw = i - i_min_1
    kn = i - 1 - i_min_1
    knw = i - 1 - i_min_2
    return i, j, kw, kn, knw, has_w, has_n, has_nw


def _lookup(diag: _DeviceDiagonal | None, k: np.ndarray, needed: np.ndarray):
    """Return (values, valid) for local offsets ``k`` on a device diagonal.

    Offsets that are not ``needed`` report valid (their value is irrelevant);
    offsets outside the stored diagonal, or on a missing diagonal, report
    invalid.
    """
    values = np.zeros(k.shape, dtype=float)
    if diag is None:
        valid = ~needed
        return values, valid
    in_range = (k >= 0) & (k < diag.vals.size)
    k_clipped = np.clip(k, 0, max(diag.vals.size - 1, 0))
    values = np.where(in_range, diag.vals[k_clipped], 0.0)
    valid = np.where(needed, in_range & np.where(in_range, diag.valid[k_clipped], False), True)
    return values, valid


class BandRunner:
    """Drives the simulated devices through one band of diagonals."""

    def __init__(
        self,
        problem: WavefrontProblem,
        grid: WavefrontGrid,
        plan: ThreePhasePlan,
        tunables: TunableParams,
        context: DeviceContext,
    ) -> None:
        if plan.gpu.is_empty:
            raise ExecutionError("BandRunner created for a plan with no GPU phase")
        if context.gpu_count != tunables.gpu_count:
            raise ExecutionError(
                f"device context has {context.gpu_count} devices but the "
                f"configuration requests {tunables.gpu_count}"
            )
        self.problem = problem
        self.grid = grid
        self.plan = plan
        self.tunables = tunables
        self.context = context
        self.dim = problem.dim
        self.halo = max(0, tunables.halo) if tunables.gpu_count == 2 else 0
        self.kernel = KernelSpec(
            name=f"{problem.name}-diagonal",
            func=lambda gids, i, j, west, north, nw: problem.kernel.diagonal(
                i, j, west, north, nw
            ),
        )
        self.workgroup = WorkGroupConfig(group_size=max(1, tunables.gpu_tile))
        self.halo_swaps = 0
        self.kernel_launches = 0
        self.redundant_cells = 0

    # ------------------------------------------------------------------
    def run(self) -> dict[str, int]:
        """Execute the band; returns operation statistics."""
        lo, hi = self.plan.gpu.lo, self.plan.gpu.hi
        states = [_DeviceState(index=i) for i in range(self.context.gpu_count)]
        self._offload_boundary(states, lo)

        for d in range(lo, hi + 1):
            length = dg.diagonal_length(d, self.dim, self.dim)
            parts = partition_diagonal(length, self.context.gpu_count, self.halo)
            if not self._owned_computable(states, d, parts):
                self._halo_swap(states, d)
                if not self._owned_computable(states, d, parts):
                    raise ExecutionError(
                        f"diagonal {d}: owned cells not computable even after a halo swap"
                    )
            currents = []
            for state, part in zip(states, parts):
                currents.append(self._compute_device_diagonal(state, d, length, part))
            for state, current in zip(states, currents):
                state.rotate(current)

        self._flush_results(states)
        return {
            "kernel_launches": self.kernel_launches,
            "halo_swaps": self.halo_swaps,
            "band_diagonals": hi - lo + 1,
            "band_cells": self.plan.gpu.cells(self.dim),
            "redundant_cells": self.redundant_cells,
        }

    # ------------------------------------------------------------------
    # Setup and teardown transfers
    # ------------------------------------------------------------------
    def _offload_boundary(self, states: list[_DeviceState], lo: int) -> None:
        """Send the two boundary diagonals preceding the band to every device."""
        elem = self.problem.input_params().element_nbytes
        max_len = max(self.plan.gpu_diagonal_lengths())
        for state in states:
            device = self.context.device(state.index)
            queue = self.context.queue(state.index)
            device.create_buffer("boundary", (2, max_len))
            boundary = np.zeros((2, max_len))
            for slot, d in enumerate((lo - 1, lo - 2)):
                if d >= 0:
                    vals = self.grid.get_diagonal(d)
                    boundary[slot, : vals.size] = vals
                    diag = _DeviceDiagonal.full(d, vals)
                else:
                    diag = None
                if slot == 0:
                    state.prev1 = diag
                else:
                    state.prev2 = diag
            queue.enqueue_write("boundary", boundary, label="band-boundary")
            # The real harness ships the band's input data alongside the
            # boundary; account for it explicitly so event volumes track the
            # cost model's offload bytes.
            share = self.plan.offload_nbytes() // len(states)
            device.log.record(
                DeviceEvent(
                    kind=EventKind.H2D,
                    device=state.index,
                    nbytes=share,
                    label="band-offload",
                )
            )

    def _flush_results(self, states: list[_DeviceState]) -> None:
        """Write every device's owned results back into the host grid."""
        elem = self.problem.input_params().element_nbytes
        for state in states:
            device = self.context.device(state.index)
            for d, own_start, vals in state.own_segments:
                self.grid.set_diagonal_segment(d, own_start, vals)
            device.log.record(
                DeviceEvent(
                    kind=EventKind.D2H,
                    device=state.index,
                    nbytes=state.owned_cells() * elem,
                    label="band-results",
                )
            )

    # ------------------------------------------------------------------
    # Computability / halo swaps
    # ------------------------------------------------------------------
    def _computable_mask(self, state: _DeviceState, d: int, ks: np.ndarray) -> np.ndarray:
        """Which of the local offsets ``ks`` on diagonal ``d`` this device can compute."""
        _, _, kw, kn, knw, has_w, has_n, has_nw = _dependency_indices(d, ks, self.dim)
        _, valid_w = _lookup(state.prev1, kw, has_w)
        _, valid_n = _lookup(state.prev1, kn, has_n)
        _, valid_nw = _lookup(state.prev2, knw, has_nw)
        return valid_w & valid_n & valid_nw

    def _owned_computable(self, states, d: int, parts) -> bool:
        for state, part in zip(states, parts):
            if part.own_cells == 0:
                continue
            ks = np.arange(part.own_start, part.own_stop)
            if not np.all(self._computable_mask(state, d, ks)):
                return False
        return True

    def _halo_swap(self, states: list[_DeviceState], d: int) -> None:
        """Exchange owned segments of the previous two diagonals through the host."""
        if len(states) < 2:
            raise ExecutionError(
                f"diagonal {d}: a halo swap was required but only one device is in use"
            )
        elem = self.problem.input_params().element_nbytes
        for attr in ("prev1", "prev2"):
            diags = [getattr(state, attr) for state in states]
            if any(diag is None for diag in diags):
                continue
            length = diags[0].vals.size
            parts = partition_diagonal(length, len(states), self.halo)
            # Every device sends its owned segment to the host, which
            # forwards it to the other device.
            for sender, part in zip(states, parts):
                seg = diags[sender.index].vals[part.own_start : part.own_stop]
                nbytes = seg.size * elem
                self.context.device(sender.index).log.record(
                    DeviceEvent(EventKind.D2H, sender.index, nbytes=nbytes, label="halo-out")
                )
                for receiver in states:
                    if receiver.index == sender.index:
                        continue
                    target = diags[receiver.index]
                    target.vals[part.own_start : part.own_stop] = seg
                    target.valid[part.own_start : part.own_stop] = True
                    self.context.device(receiver.index).log.record(
                        DeviceEvent(EventKind.H2D, receiver.index, nbytes=nbytes, label="halo-in")
                    )
        self.context.log.record(
            DeviceEvent(EventKind.HALO_SWAP, device=0, label=f"swap-before-diag-{d}")
        )
        self.halo_swaps += 1

    # ------------------------------------------------------------------
    # Per-device diagonal computation
    # ------------------------------------------------------------------
    def _compute_device_diagonal(
        self, state: _DeviceState, d: int, length: int, part
    ) -> _DeviceDiagonal:
        current = _DeviceDiagonal.empty(d, length)
        target = np.arange(part.compute_start, part.compute_stop)
        if target.size == 0:
            return current
        mask = self._computable_mask(state, d, target)
        ks = target[mask]
        if ks.size == 0:
            return current
        own = np.arange(part.own_start, part.own_stop)
        if not np.all(np.isin(own, ks)):
            raise ExecutionError(
                f"device {state.index} cannot compute its owned cells of diagonal {d}"
            )

        i, j, kw, kn, knw, has_w, has_n, has_nw = _dependency_indices(d, ks, self.dim)
        west_vals, _ = _lookup(state.prev1, kw, has_w)
        north_vals, _ = _lookup(state.prev1, kn, has_n)
        nw_vals, _ = _lookup(state.prev2, knw, has_nw)
        west = np.where(has_w, west_vals, self.problem.boundary)
        north = np.where(has_n, north_vals, self.problem.boundary)
        nw = np.where(has_nw, nw_vals, self.problem.boundary)

        queue = self.context.queue(state.index)
        values = queue.enqueue_kernel(
            self.kernel,
            global_size=ks.size,
            args={"i": i, "j": j, "west": west, "north": north, "nw": nw},
            workgroup=self.workgroup,
            label=f"diag-{d}-dev-{state.index}",
        )
        values = self.problem.kernel.validate_output(values, ks.size)
        self.kernel_launches += 1

        current.vals[ks] = values
        current.valid[ks] = True
        self.redundant_cells += int(ks.size - part.own_cells)
        own_vals = current.vals[part.own_start : part.own_stop].copy()
        state.own_segments.append((d, part.own_start, own_vals))
        return current
