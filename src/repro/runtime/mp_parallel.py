"""True multicore wavefront execution: shared-memory tiled-vectorized backend.

The paper's scheme (b) is *parallel* tiled CPU execution, but
:class:`repro.runtime.cpu_parallel.CPUParallelExecutor` runs tiles either
sequentially or on a GIL-bound thread pool, so it never scales with core
count.  This module is the real thing:

* the value grid lives in a :class:`repro.runtime.shared_grid.SharedGridBuffer`
  (a :mod:`multiprocessing.shared_memory` segment wrapped as a zero-copy
  NumPy view), so workers read neighbours and write results in place — only
  tiny tile descriptors cross process boundaries;
* a **persistent worker-process pool** executes the tile wavefront with the
  schedule of :class:`repro.runtime.scheduler.TileScheduler`: a barrier per
  tile-diagonal, the tiles within a diagonal fanned across the workers;
* each worker evaluates its tile's interior with a **tile-local
  strided-diagonal sweep** (:class:`TileSweeper`) that reuses the fused
  kernel evaluators of the vectorized engine
  (:meth:`repro.core.pattern.WavefrontKernel.make_diagonal_evaluator`).  The
  sweeper — and with it the O(dim^2) evaluator precompute — is built once
  per worker in the pool initializer, not once per tile.

When fewer than two cores are available (or one worker is requested) the
backend degrades gracefully to the in-process whole-diagonal sweep of the
cached :class:`repro.runtime.vectorized.DiagonalSweepEngine`, producing
identical grids without any shared-memory machinery — and without paying
the tile-granular dispatch that only parallel workers amortise.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.core.exceptions import (
    ExecutionError,
    InvalidParameterError,
    WorkerCrashError,
)
from repro.core.grid import WavefrontGrid
from repro.core.params import TunableParams
from repro.core.pattern import WavefrontProblem
from repro.core.tiling import Tile, TileDecomposition
from repro.hardware.costmodel import PhaseBreakdown
from repro.hardware.system import SystemSpec
from repro.runtime.executor_base import Executor
from repro.runtime.scheduler import (
    PipelinedSchedule,
    TileScheduler,
    run_pipelined,
    run_schedule,
)
from repro.runtime.shared_grid import SharedGridBuffer
from repro.runtime.vectorized import TileSweeper, engine_for


def resolve_worker_count(workers: int | None, system: SystemSpec | None = None) -> int:
    """Effective worker count for the multicore backend.

    An explicit ``workers`` is honoured as given (minimum 1) — tests force
    multiprocess execution this way even on single-core machines.  With
    ``workers=None`` the count is auto-detected as the smaller of the host's
    cores and the platform spec's worker budget, falling back to a single
    in-process worker when the host has fewer than two cores.
    """
    if workers is not None:
        return max(1, int(workers))
    available = os.cpu_count() or 1
    if available < 2:
        return 1  # graceful single-core fallback
    if system is not None:
        return max(1, min(available, system.cpu.workers))
    return available


def _mp_context() -> mp.context.BaseContext:
    """Fork where available: cheap worker start-up and no initargs pickling."""
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()  # pragma: no cover - non-fork platforms


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
#: Per-worker state: the tile sweeper (with its one-off fused-evaluator
#: precompute) and the attached shared grid.  Populated by the pool
#: initializer, read by every task the worker executes.
_WORKER_STATE: dict = {}


def _init_worker(problem: WavefrontProblem, shm_name: str, dim: int) -> None:
    """Pool initializer: attach the shared grid, build the per-worker engine."""
    buffer = SharedGridBuffer.attach(shm_name, dim)
    _WORKER_STATE["buffer"] = buffer  # keep the mapping alive
    _WORKER_STATE["flat"] = buffer.values.reshape(-1)
    _WORKER_STATE["sweeper"] = TileSweeper(problem)


class _TileTask:
    """Picklable task: sweep one tile's diagonals in ``[d_lo, d_hi]``."""

    __slots__ = ("d_lo", "d_hi")

    def __init__(self, d_lo: int, d_hi: int | None) -> None:
        self.d_lo = d_lo
        self.d_hi = d_hi

    def __call__(self, tile: Tile) -> int:
        state = _WORKER_STATE
        return state["sweeper"].sweep_tile(state["flat"], tile, self.d_lo, self.d_hi)


# ----------------------------------------------------------------------
# Parent-process side
# ----------------------------------------------------------------------
class MPWavefrontPool:
    """Persistent worker pool executing tile wavefronts on a shared grid.

    The pool's lifecycle is split from the grid it operates on so one pool
    (worker processes, shared-memory segment, per-worker engines) can serve
    many requests of the same problem — the serving path of
    :class:`repro.session.Session` via
    :class:`repro.runtime.lifecycle.EngineHost`:

    * **Construction** (with ``workers >= 2``) allocates the shared segment
      sized for the problem and starts the worker processes, whose
      initializer attaches the segment and builds the per-worker
      :class:`TileSweeper` once.
    * :meth:`bind` attaches one grid for a request: its values are copied
      into the shared segment and ``grid.values`` becomes the zero-copy
      shared view, so phases running in the parent between
      :meth:`run_range` calls (the hybrid executor's GPU band) write where
      the workers read.  :meth:`release` copies the values back into the
      grid's original private array, leaving the pool warm for the next
      request.  Constructing with a ``grid`` binds it immediately (the
      single-shot path of :class:`MPParallelExecutor`).
    * :meth:`close` releases any bound grid, shuts the workers down and
      unlinks the segment.

    With ``workers == 1`` no processes or shared memory are involved: the
    range is swept in-process by the problem's cached whole-grid
    :class:`repro.runtime.vectorized.DiagonalSweepEngine` — tile-local
    sweeps pay one NumPy dispatch per *tile* diagonal, which only buys
    anything when real workers share the bill, so the single-core fallback
    uses the strictly cheaper whole-diagonal batches (identical grids
    either way).
    """

    def __init__(
        self,
        problem: WavefrontProblem,
        grid: WavefrontGrid | None = None,
        tile: int = 1,
        workers: int = 1,
    ) -> None:
        self.problem = problem
        self.grid: WavefrontGrid | None = None
        dim = problem.dim
        self.decomposition = TileDecomposition(dim, dim, tile)
        self.tile = int(tile)
        self.workers = max(1, int(workers))
        self.scheduler = TileScheduler(self.decomposition, workers=self.workers)
        self.pipeline = PipelinedSchedule(self.decomposition)
        self._pool: ProcessPoolExecutor | None = None
        self._buffer: SharedGridBuffer | None = None
        self._orig_values: np.ndarray | None = None
        self._engine = None
        self._broken = False
        if self.workers >= 2:
            self._buffer = SharedGridBuffer.create(dim, dtype=np.float64)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=_mp_context(),
                initializer=_init_worker,
                initargs=(problem, self._buffer.name, dim),
            )
        else:
            self._engine = engine_for(problem)
        if grid is not None:
            self.bind(grid)

    @property
    def is_multiprocess(self) -> bool:
        """True when a real worker-process pool backs :meth:`run_range`."""
        return self._pool is not None

    @property
    def is_bound(self) -> bool:
        """True while a grid is attached via :meth:`bind`."""
        return self.grid is not None

    @property
    def broken(self) -> bool:
        """True once a worker process died (the pool cannot run again).

        A broken pool still releases its bound grid and :meth:`close`\\ s
        cleanly (the shared segment is unlinked); it is simply never reused —
        :meth:`repro.runtime.lifecycle.EngineHost.pool_for` builds a fresh
        pool in its place on the next request.
        """
        return self._broken

    @property
    def bound_multiprocess(self) -> bool:
        """True while the *bound* grid actually lives in the shared segment.

        Differs from :attr:`is_multiprocess` exactly when a grid whose
        dtype does not match the segment fell back to the in-process sweep.
        """
        return self._pool is not None and self._orig_values is not None

    def bind(self, grid: WavefrontGrid) -> "MPWavefrontPool":
        """Attach one request's grid to the pool (shared view while bound).

        In multiprocess mode the grid's values move into the shared segment
        (``grid.values`` becomes the shared view) unless the dtype does not
        match the segment, in which case the range is swept in-process — the
        same graceful degradation the single-shot constructor applied.
        """
        if self.grid is not None:
            raise ExecutionError(
                "MPWavefrontPool is already bound to a grid; release() it first"
            )
        if grid.dim != self.problem.dim:
            raise ExecutionError(
                f"grid of dim {grid.dim} bound to a pool built for "
                f"dim {self.problem.dim}"
            )
        self.grid = grid
        if self._buffer is not None and grid.values.dtype == self._buffer.values.dtype:
            self._buffer.values[...] = grid.values
            self._orig_values = grid.values
            grid.values = self._buffer.values
        return self

    def release(self) -> None:
        """Detach the bound grid, copying shared values back to private memory.

        The pool (workers, segment, per-worker engines) stays warm; call
        :meth:`bind` again to serve the next request.  A no-op when no grid
        is bound.
        """
        if self.grid is None:
            return
        if self._orig_values is not None:
            self._orig_values[...] = self._buffer.values
            self.grid.values = self._orig_values
            self._orig_values = None
        self.grid = None

    def run_range(
        self, d_lo: int, d_hi: int, dispatch: str = "barrier"
    ) -> tuple[int, int]:
        """Execute the tile wavefront over cell diagonals ``[d_lo, d_hi]``.

        Returns ``(tiles_executed, cells_computed)``.  ``dispatch`` selects
        how tiles reach the workers: ``"barrier"`` fans each tile-diagonal
        across the pool and barriers between diagonals
        (:func:`~repro.runtime.scheduler.run_schedule`); ``"pipelined"``
        drains a :class:`~repro.runtime.scheduler.DependencyGraph` instead,
        starting any tile the moment its west/north/north-west neighbours
        retire (:func:`~repro.runtime.scheduler.run_pipelined`).  Both
        orders respect the exact dependency contract of
        :meth:`~repro.runtime.vectorized.TileSweeper.sweep_tile`, so the
        resulting grids are bit-identical.
        """
        if dispatch not in ("barrier", "pipelined"):
            raise InvalidParameterError(
                f"unknown dispatch mode {dispatch!r}; expected 'barrier' or "
                "'pipelined'"
            )
        if d_hi < d_lo:
            return 0, 0
        if self.grid is None:
            raise ExecutionError("MPWavefrontPool.run_range called with no grid bound")
        if self._pool is None or self._orig_values is None:
            # Single-core (or dtype-fallback) path: whole-diagonal batches,
            # no tile penalty.  Dispatch order is moot with one in-process
            # worker, so both modes share this sweep.
            return 0, engine_for(self.problem).sweep(self.grid, d_lo, d_hi)
        cells = 0

        def collect(n: object) -> None:
            nonlocal cells
            cells += int(n)  # type: ignore[arg-type]

        try:
            if dispatch == "pipelined":
                executed = run_pipelined(
                    self.pipeline.graph(d_lo, d_hi),
                    _TileTask(d_lo, d_hi),
                    pool=self._pool,
                    collect=collect,
                )
            else:
                executed = run_schedule(
                    self.scheduler.waves(d_lo, d_hi),
                    _TileTask(d_lo, d_hi),
                    pool=self._pool,
                    collect=collect,
                )
        except BrokenProcessPool as crash:
            # A worker died (killed, OOM, segfault).  Mark the pool broken —
            # it can never run again — and surface a typed error so the
            # caller (session / shard supervisor) can rebuild and retry
            # instead of hanging or crashing the service.
            self._broken = True
            raise WorkerCrashError(
                f"worker process of the {self.workers}-worker pool died "
                f"mid-execution (dim {self.problem.dim}, tile {self.tile}): "
                f"{crash}"
            ) from crash
        return executed, cells

    def close(self) -> None:
        """Release any bound grid, shut the workers down, unlink the segment."""
        self.release()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._buffer is not None:
            self._buffer.close()
            self._buffer.unlink()
            self._buffer = None

    def __enter__(self) -> "MPWavefrontPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MPParallelExecutor(Executor):
    """Shared-memory multicore execution of the whole grid (scheme (b), real).

    The grid lives in shared memory, a persistent process pool executes the
    tile wavefront (barrier per tile-diagonal), and every worker sweeps its
    tiles with the tile-local strided-diagonal engine — combining the
    vectorized engine's batched evaluation with parallelism that actually
    scales with cores, unlike the GIL-bound ``cpu-parallel`` strategy.
    Produces grids cell-for-cell identical to the serial reference.
    """

    strategy = "mp-parallel"
    #: Tile dispatch order handed to :meth:`MPWavefrontPool.run_range`.
    dispatch = "barrier"

    def __init__(
        self,
        system,
        constants=None,
        workers: int | None = None,
        pool_source=None,
    ) -> None:
        super().__init__(system, constants)
        self.workers = workers
        #: Optional ``(problem, tile, workers) -> MPWavefrontPool`` provider
        #: of *borrowed* pools (e.g. the session's
        #: :meth:`repro.runtime.lifecycle.EngineHost.pool_for`): the executor
        #: binds/releases the request's grid but never closes a borrowed
        #: pool, so the workers stay warm across requests.
        self.pool_source = pool_source

    def _resolved_workers(self) -> int:
        return resolve_worker_count(self.workers, self.system)

    def _breakdown(self, problem: WavefrontProblem, tunables: TunableParams) -> PhaseBreakdown:
        params = problem.input_params()
        return PhaseBreakdown(
            pre_s=self.cost_model.mp_parallel_time(
                params, tunables.cpu_tile, self._resolved_workers()
            )
        )

    def _run_functional(
        self, problem: WavefrontProblem, tunables: TunableParams
    ) -> tuple[WavefrontGrid, dict]:
        grid = problem.make_grid()
        workers = self._resolved_workers()
        if self.pool_source is not None:
            pool = self.pool_source(problem, tunables.cpu_tile, workers)
            pool.bind(grid)
            try:
                executed, cells = pool.run_range(
                    0, 2 * problem.dim - 2, dispatch=self.dispatch
                )
                stats = self._pool_stats(pool, executed, cells)
                stats["pool"] = "borrowed"
            finally:
                pool.release()
            return grid, stats
        with MPWavefrontPool(problem, grid, tunables.cpu_tile, workers) as pool:
            executed, cells = pool.run_range(
                0, 2 * problem.dim - 2, dispatch=self.dispatch
            )
            stats = self._pool_stats(pool, executed, cells)
        return grid, stats

    def _pool_stats(self, pool: MPWavefrontPool, executed: int, cells: int) -> dict:
        """The per-run statistics block shared by both pool ownership modes.

        ``mode`` reports how *this run* executed (the dtype fallback sweeps
        in-process even when a worker pool exists), so timings are never
        attributed to workers that did not participate.
        """
        return {
            "tiles_executed": executed,
            "cells_computed": cells,
            "tile_waves": pool.scheduler.n_waves,
            "workers": pool.workers,
            "dispatch": self.dispatch,
            "mode": "process-pool" if pool.bound_multiprocess else "in-process",
        }

    def _validate(self, problem: WavefrontProblem, tunables: TunableParams) -> TunableParams:
        # A pure-CPU strategy: keep the cpu_tile choice, drop GPU settings.
        tunables = tunables.clipped(problem.dim)
        return TunableParams(cpu_tile=tunables.cpu_tile)


class PipelinedMPExecutor(MPParallelExecutor):
    """Dependency-driven multicore execution: no barrier between tile waves.

    Identical to :class:`MPParallelExecutor` in every observable output —
    same shared grid, same per-worker tile sweeps, bit-identical grids and
    witnesses — but tiles are dispatched through the
    :class:`~repro.runtime.scheduler.DependencyGraph` of the pool instead of
    barrier-separated waves, so a tile of wave ``d + 1`` starts the moment
    its three neighbour tiles retire even while wave ``d`` stragglers are
    still running.  The cost model drops the per-wave straggler term
    accordingly (:meth:`repro.hardware.costmodel.CostModel.pipelined_time`).
    """

    strategy = "pipelined"
    dispatch = "pipelined"

    def _breakdown(self, problem: WavefrontProblem, tunables: TunableParams) -> PhaseBreakdown:
        params = problem.input_params()
        return PhaseBreakdown(
            pre_s=self.cost_model.pipelined_time(
                params, tunables.cpu_tile, self._resolved_workers()
            )
        )
