"""Registry of the available execution engines (backends).

Mirrors :mod:`repro.apps.registry` on the executor side: every strategy is
registered under its ``strategy`` name so the CLI, the benchmark driver and
the autotuner can enumerate and construct backends uniformly.  The registry
is also where the NumPy gate lives: :func:`default_serial_executor` returns
the vectorized engine when NumPy is available and degrades to the scalar
serial sweep otherwise, so the rest of the system never has to care.
"""

from __future__ import annotations

from typing import Callable

from repro.core.exceptions import InvalidParameterError, UnknownExecutorError
from repro.hardware.costmodel import CostConstants
from repro.hardware.system import SystemSpec
from repro.runtime.cpu_parallel import CPUParallelExecutor
from repro.runtime.executor_base import Executor
from repro.runtime.gpu_multi import MultiGPUBandExecutor
from repro.runtime.gpu_single import SingleGPUBandExecutor
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.mp_parallel import MPParallelExecutor
from repro.runtime.serial import SerialExecutor
from repro.runtime.vectorized import VectorizedSerialExecutor, numpy_available

#: Executor classes by strategy name.
EXECUTORS: dict[str, type[Executor]] = {
    SerialExecutor.strategy: SerialExecutor,
    VectorizedSerialExecutor.strategy: VectorizedSerialExecutor,
    CPUParallelExecutor.strategy: CPUParallelExecutor,
    MPParallelExecutor.strategy: MPParallelExecutor,
    SingleGPUBandExecutor.strategy: SingleGPUBandExecutor,
    MultiGPUBandExecutor.strategy: MultiGPUBandExecutor,
    HybridExecutor.strategy: HybridExecutor,
}

#: The serial (single-core, whole-grid) engine family, in preference order.
#: The autotuner's ``engine`` dimension and the hybrid executor's CPU phases
#: choose among these.
SERIAL_ENGINES: tuple[str, ...] = ("vectorized", "serial")


def register_executor(cls: type[Executor]) -> type[Executor]:
    """Register an executor class under its ``strategy`` name.

    Usable as a decorator by out-of-tree executors::

        @register_executor
        class MyExecutor(Executor):
            strategy = "my-strategy"
    """
    name = cls.strategy
    if not name or name == Executor.strategy:
        raise InvalidParameterError(
            f"executor class {cls.__name__} must define a unique 'strategy' name"
        )
    EXECUTORS[name] = cls
    return cls


def get_executor(
    name: str, system: SystemSpec, constants: CostConstants | None = None, **kwargs
) -> Executor:
    """Construct a registered executor by strategy name."""
    try:
        cls = EXECUTORS[name]
    except KeyError:
        known = ", ".join(sorted(EXECUTORS))
        raise UnknownExecutorError(f"unknown executor {name!r}; known: {known}") from None
    return cls(system, constants, **kwargs)


def available_executors() -> list[str]:
    """Names of all registered executors, sorted."""
    return sorted(EXECUTORS)


def available_serial_engines() -> list[str]:
    """Serial engine names usable in this environment, in preference order."""
    return [
        name
        for name in SERIAL_ENGINES
        if name != VectorizedSerialExecutor.strategy or numpy_available()
    ]


def default_serial_executor(
    system: SystemSpec, constants: CostConstants | None = None
) -> Executor:
    """The preferred single-core executor: vectorized when NumPy is available."""
    return get_executor(available_serial_engines()[0], system, constants)
