"""Registry of the available execution engines (backends).

Mirrors :mod:`repro.apps.registry` on the executor side: every strategy is
registered under its ``strategy`` name so the CLI, the benchmark driver and
the autotuner can enumerate and construct backends uniformly.

Registration is declarative: an :class:`EngineSpec` names the executor
class, the *capabilities* it offers (``pipelined``, ``compiled``,
``requires_shm``, ``subrange_safe``, ...) and an optional availability
probe — the gate that keeps the vectorized engine out of NumPy-less
environments and the compiled tier silent wherever :mod:`numba` is not
installed, without the rest of the system ever having to care.  The serial
engine preference order (:data:`SERIAL_ENGINES`) is **derived** from the
specs' ``serial_rank``, not hand-maintained, and capability queries go
through :func:`engines_with`, which raises the typed
:class:`~repro.core.exceptions.UnknownExecutorError` on capability typos
instead of leaking a ``KeyError``.

Registering a bare executor class (the pre-spec API) still works but emits
a :class:`DeprecationWarning`; such engines get an empty capability set and
are always available.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro.core.exceptions import InvalidParameterError, UnknownExecutorError
from repro.hardware.costmodel import CostConstants
from repro.hardware.system import SystemSpec
from repro.runtime.compiled import CompiledExecutor, numba_available
from repro.runtime.cpu_parallel import CPUParallelExecutor
from repro.runtime.executor_base import Executor
from repro.runtime.gpu_multi import MultiGPUBandExecutor
from repro.runtime.gpu_single import SingleGPUBandExecutor
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.mp_parallel import MPParallelExecutor, PipelinedMPExecutor
from repro.runtime.serial import SerialExecutor
from repro.runtime.vectorized import VectorizedSerialExecutor, numpy_available

#: The capability vocabulary an :class:`EngineSpec` may declare.
KNOWN_CAPABILITIES: frozenset[str] = frozenset(
    {
        "serial",  # single-core whole-grid engine (hybrid CPU-phase candidate)
        "multicore",  # scales with worker count
        "gpu",  # drives (simulated) GPU devices
        "pipelined",  # dependency-driven tile dispatch, no wave barrier
        "compiled",  # JIT-compiled kernel tier
        "requires_shm",  # needs POSIX shared memory for its grid
        "subrange_safe",  # can sweep partial diagonal ranges in place
    }
)


@dataclass(frozen=True)
class EngineSpec:
    """Declarative registration record of one executor strategy.

    ``name`` is the registry key (must match ``factory.strategy``),
    ``capabilities`` the subset of :data:`KNOWN_CAPABILITIES` the engine
    offers, ``available`` an optional zero-argument probe consulted by every
    enumeration (``None`` means always available), and ``serial_rank`` the
    engine's position in the derived :data:`SERIAL_ENGINES` preference order
    (``None`` keeps it out of the serial-engine family).
    """

    name: str
    factory: type[Executor]
    capabilities: frozenset[str] = field(default_factory=frozenset)
    available: Callable[[], bool] | None = None
    serial_rank: int | None = None

    def __post_init__(self) -> None:
        """Validate the name and the capability vocabulary."""
        if not self.name or self.name == Executor.strategy:
            raise InvalidParameterError(
                f"executor class {self.factory.__name__} must define a unique "
                "'strategy' name"
            )
        unknown = frozenset(self.capabilities) - KNOWN_CAPABILITIES
        if unknown:
            raise InvalidParameterError(
                f"engine spec {self.name!r} declares unknown capabilities "
                f"{sorted(unknown)}; known: {sorted(KNOWN_CAPABILITIES)}"
            )

    def is_available(self) -> bool:
        """Whether the engine can run in this environment."""
        return True if self.available is None else bool(self.available())


#: Declarative specs by strategy name (the source of truth).
ENGINE_SPECS: dict[str, EngineSpec] = {}

#: Executor classes by strategy name.  Kept in lockstep with
#: :data:`ENGINE_SPECS` for backward compatibility — pre-spec code (and the
#: registry tests) reads and mutates this mapping directly.
EXECUTORS: dict[str, type[Executor]] = {}


def register_executor(spec: "EngineSpec | type[Executor]"):
    """Register an executor under its strategy name.

    The declarative path takes an :class:`EngineSpec`.  Passing a bare
    executor class — the pre-spec API, still usable as a decorator by
    out-of-tree executors::

        @register_executor
        class MyExecutor(Executor):
            strategy = "my-strategy"

    — is deprecated: it emits a :class:`DeprecationWarning` and registers a
    spec with no declared capabilities and no availability probe.  Returns
    whatever was passed in, so decorator use keeps working.
    """
    if not isinstance(spec, EngineSpec):
        cls = spec
        warnings.warn(
            "registering a bare executor class is deprecated; register an "
            "EngineSpec(name=..., factory=..., capabilities=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = EngineSpec(name=getattr(cls, "strategy", ""), factory=cls)
        ENGINE_SPECS[spec.name] = spec
        EXECUTORS[spec.name] = cls
        return cls
    ENGINE_SPECS[spec.name] = spec
    EXECUTORS[spec.name] = spec.factory
    return spec


def get_executor(
    name: str, system: SystemSpec, constants: CostConstants | None = None, **kwargs
) -> Executor:
    """Construct a registered executor by strategy name."""
    try:
        cls = EXECUTORS[name]
    except KeyError:
        known = ", ".join(sorted(EXECUTORS))
        raise UnknownExecutorError(f"unknown executor {name!r}; known: {known}") from None
    return cls(system, constants, **kwargs)


def available_executors() -> list[str]:
    """Names of the registered executors usable in this environment, sorted.

    Engines whose availability probe answers ``False`` (the compiled tier
    without :mod:`numba`, the vectorized engine without NumPy) are silently
    absent, so enumerating callers — the bench driver, the search space —
    never construct an engine that cannot run.
    """
    return sorted(
        name
        for name in EXECUTORS
        if name not in ENGINE_SPECS or ENGINE_SPECS[name].is_available()
    )


def engines_with(capability: str) -> list[str]:
    """Names of available engines declaring ``capability``, sorted.

    Unknown capabilities raise the typed
    :class:`~repro.core.exceptions.UnknownExecutorError` (the CLI's usage
    exit path) instead of leaking a ``KeyError`` out of the filter.
    """
    if capability not in KNOWN_CAPABILITIES:
        known = ", ".join(sorted(KNOWN_CAPABILITIES))
        raise UnknownExecutorError(
            f"unknown engine capability {capability!r}; known: {known}"
        )
    return sorted(
        spec.name
        for spec in ENGINE_SPECS.values()
        if capability in spec.capabilities
        and spec.name in EXECUTORS
        and spec.is_available()
    )


def _derived_serial_engines() -> tuple[str, ...]:
    """The serial engine family in preference order, derived from the specs."""
    ranked = [
        spec for spec in ENGINE_SPECS.values() if spec.serial_rank is not None
    ]
    return tuple(spec.name for spec in sorted(ranked, key=lambda s: s.serial_rank))


def available_serial_engines() -> list[str]:
    """Serial engine names usable in this environment, in preference order."""
    return [
        name
        for name in _derived_serial_engines()
        if ENGINE_SPECS[name].is_available()
    ]


def default_serial_executor(
    system: SystemSpec, constants: CostConstants | None = None
) -> Executor:
    """The preferred single-core executor: vectorized when NumPy is available."""
    return get_executor(available_serial_engines()[0], system, constants)


# ----------------------------------------------------------------------
# The built-in engines
# ----------------------------------------------------------------------
for _spec in (
    EngineSpec(
        name=SerialExecutor.strategy,
        factory=SerialExecutor,
        capabilities=frozenset({"serial", "subrange_safe"}),
        serial_rank=1,
    ),
    EngineSpec(
        name=VectorizedSerialExecutor.strategy,
        factory=VectorizedSerialExecutor,
        capabilities=frozenset({"serial", "subrange_safe"}),
        available=numpy_available,
        serial_rank=0,
    ),
    EngineSpec(
        name=CPUParallelExecutor.strategy,
        factory=CPUParallelExecutor,
        capabilities=frozenset({"multicore", "subrange_safe"}),
    ),
    EngineSpec(
        name=MPParallelExecutor.strategy,
        factory=MPParallelExecutor,
        capabilities=frozenset({"multicore", "requires_shm", "subrange_safe"}),
    ),
    EngineSpec(
        name=PipelinedMPExecutor.strategy,
        factory=PipelinedMPExecutor,
        capabilities=frozenset(
            {"multicore", "requires_shm", "subrange_safe", "pipelined"}
        ),
    ),
    EngineSpec(
        name=CompiledExecutor.strategy,
        factory=CompiledExecutor,
        capabilities=frozenset({"compiled"}),
        available=numba_available,
    ),
    EngineSpec(
        name=SingleGPUBandExecutor.strategy,
        factory=SingleGPUBandExecutor,
        capabilities=frozenset({"gpu"}),
    ),
    EngineSpec(
        name=MultiGPUBandExecutor.strategy,
        factory=MultiGPUBandExecutor,
        capabilities=frozenset({"gpu"}),
    ),
    EngineSpec(
        name=HybridExecutor.strategy,
        factory=HybridExecutor,
        capabilities=frozenset({"gpu", "multicore"}),
    ),
):
    register_executor(_spec)

#: The serial (single-core, whole-grid) engine family, in preference order.
#: Derived from the specs' ``serial_rank`` — no longer hand-maintained.
SERIAL_ENGINES: tuple[str, ...] = _derived_serial_engines()
