"""Compiled kernel tier: Numba ``@njit`` whole-grid ports of the hot kernels.

The fused numpy evaluators (:meth:`~repro.core.pattern.WavefrontKernel.
make_diagonal_evaluator`) pay one ufunc dispatch per anti-diagonal; this
module removes even that by JIT-compiling a scalar row-major fill of the
whole grid for the kernels worth the effort — edit-distance, LCS and
Viterbi.  All three stencils read only north / west / north-west
neighbours, so a row-major visit order satisfies every dependency, and the
per-cell arithmetic replicates the evaluators' float expressions operation
for operation (``min``/``max`` are rounding-free; every addition keeps the
reference operand order), which keeps the compiled grids **bit-identical**
to the numpy reference — the property ``tests/runtime/test_compiled.py``
asserts with strict equality.

Numba is strictly optional: the import is guarded, :func:`numba_available`
is the registry's availability probe (so the ``compiled`` strategy simply
never appears in :func:`repro.runtime.registry.available_executors` on
hosts without it), and nothing else in the package imports :mod:`numba`.
Kernels without a port fall back to the cached vectorized sweep — same
grids, ``compiled_kernel: False`` in the stats — so sweeping every app
through the ``compiled`` backend stays total.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ExecutionError
from repro.core.grid import WavefrontGrid
from repro.core.params import TunableParams
from repro.core.pattern import WavefrontProblem
from repro.hardware.costmodel import PhaseBreakdown
from repro.runtime.executor_base import Executor
from repro.runtime.vectorized import engine_for

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    _NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the common container path
    njit = None
    _NUMBA_AVAILABLE = False


def numba_available() -> bool:
    """True when :mod:`numba` imported cleanly (the registry's probe)."""
    return _NUMBA_AVAILABLE


# ----------------------------------------------------------------------
# Scalar fills (pure Python until jitted; never called uncompiled)
# ----------------------------------------------------------------------
def _edit_fill(values, sub, gap):
    # Mirrors EditDistanceKernel.diagonal(): out-of-grid neighbours are the
    # virtual first row/column of the (len+1)-sized table.
    dim = values.shape[0]
    for i in range(dim):
        for j in range(dim):
            north = values[i - 1, j] if i > 0 else (j + 1.0) * gap
            west = values[i, j - 1] if j > 0 else (i + 1.0) * gap
            if i > 0 and j > 0:
                nw = values[i - 1, j - 1]
            elif i == 0:
                nw = j * gap
            else:
                nw = i * gap
            values[i, j] = min(min(north + gap, west + gap), nw + sub[i, j])


def _lcs_fill(values, match, boundary):
    # Mirrors LCSKernel.diagonal(): the constant boundary is the recurrence's
    # natural base case.
    dim = values.shape[0]
    for i in range(dim):
        for j in range(dim):
            north = values[i - 1, j] if i > 0 else boundary
            west = values[i, j - 1] if j > 0 else boundary
            nw = values[i - 1, j - 1] if i > 0 and j > 0 else boundary
            if match[i, j]:
                values[i, j] = nw + 1.0
            else:
                values[i, j] = max(north, west)


def _viterbi_fill(values, stay_col, adv_col, pi_col, emit):
    # Mirrors ViterbiKernel.diagonal(): row 0 scores from the initial
    # distribution; column 0 has no advance predecessor.
    dim = values.shape[0]
    for j in range(dim):
        values[0, j] = pi_col[j] + emit[0, j]
    for i in range(1, dim):
        values[i, 0] = (values[i - 1, 0] + stay_col[0]) + emit[i, 0]
        for j in range(1, dim):
            stay = values[i - 1, j] + stay_col[j]
            adv = values[i - 1, j - 1] + adv_col[j]
            best = adv if adv > stay else stay
            values[i, j] = best + emit[i, j]


#: Lazily-jitted fill functions, compiled once per process.
_JIT_CACHE: dict = {}


def _jitted(name: str, py_fill) -> object:
    """The jitted form of one scalar fill, compiled on first use."""
    fn = _JIT_CACHE.get(name)
    if fn is None:
        fn = njit(py_fill)
        _JIT_CACHE[name] = fn
    return fn


# ----------------------------------------------------------------------
# Per-kernel table builders
# ----------------------------------------------------------------------
def _port_edit_distance(kernel, dim: int):
    idx = np.arange(dim, dtype=np.int64)
    sub = np.where(
        kernel.seq_a[idx % kernel.seq_a.size][:, None]
        == kernel.seq_b[idx % kernel.seq_b.size][None, :],
        0.0,
        kernel.mismatch,
    )
    fill = _jitted("edit-distance", _edit_fill)
    return lambda values: fill(values, sub, kernel.gap)


def _port_lcs(kernel, dim: int, boundary: float):
    idx = np.arange(dim, dtype=np.int64)
    match = (
        kernel.seq_a[idx % kernel.seq_a.size][:, None]
        == kernel.seq_b[idx % kernel.seq_b.size][None, :]
    )
    fill = _jitted("lcs", _lcs_fill)
    return lambda values: fill(values, match, boundary)


def _port_viterbi(kernel, dim: int):
    idx = np.arange(dim, dtype=np.int64)
    n_states = kernel.log_pi.size
    stay_col = kernel.log_stay[idx % n_states]
    adv_col = kernel.log_adv[idx % n_states]
    pi_col = kernel.log_pi[idx % n_states]
    emit = kernel.log_emit[
        (idx % kernel.log_emit.shape[0])[:, None],
        (idx % kernel.log_emit.shape[1])[None, :],
    ]
    fill = _jitted("viterbi", _viterbi_fill)
    return lambda values: fill(values, stay_col, adv_col, pi_col, emit)


#: Kernel class name -> port builder.  Only kernels whose per-cell arithmetic
#: has been verified bit-exact against the fused evaluators are listed.
_PORTS = {
    "EditDistanceKernel": lambda problem: _port_edit_distance(
        problem.kernel, problem.dim
    ),
    "LCSKernel": lambda problem: _port_lcs(
        problem.kernel, problem.dim, problem.boundary
    ),
    "ViterbiKernel": lambda problem: _port_viterbi(problem.kernel, problem.dim),
}

#: Problem attribute caching the built port (dropped by __getstate__ like
#: every other ``_cached_*`` attribute, so problems stay picklable).
_FILL_ATTR = "_cached_compiled_fill"


def compiled_fill_for(problem: WavefrontProblem):
    """The problem's compiled whole-grid fill, or ``None`` without a port.

    The table precompute (substitution grid, match mask, emission table) is
    cached on the problem like the vectorized engine, so repeated requests
    pay it once; the jitted machine code itself is cached per process.
    Returns ``None`` when numba is missing or the kernel has no port.
    """
    if not numba_available():
        return None
    cached = getattr(problem, _FILL_ATTR, None)
    if cached is not None:
        return cached[0]
    builder = _PORTS.get(type(problem.kernel).__name__)
    fill = builder(problem) if builder is not None else None
    setattr(problem, _FILL_ATTR, (fill,))
    return fill


class CompiledExecutor(Executor):
    """Single-core execution through the JIT-compiled kernel tier.

    Ported kernels run as one machine-code pass over the grid (no numpy
    dispatch anywhere); unported kernels fall back to the cached vectorized
    sweep so the strategy is total over the app registry.  Functional
    execution without numba raises a typed
    :class:`~repro.core.exceptions.ExecutionError`; the registry's
    availability probe (:func:`numba_available`) keeps the strategy out of
    enumeration on such hosts, so only explicit construction can get here.
    """

    strategy = "compiled"

    def _breakdown(self, problem: WavefrontProblem, tunables: TunableParams) -> PhaseBreakdown:
        params = problem.input_params()
        return PhaseBreakdown(pre_s=self.cost_model.compiled_time(params))

    def _run_functional(
        self, problem: WavefrontProblem, tunables: TunableParams
    ) -> tuple[WavefrontGrid, dict]:
        if not numba_available():
            raise ExecutionError(
                "the compiled strategy requires numba, which is not "
                "installed in this environment"
            )
        grid = problem.make_grid()
        fill = compiled_fill_for(problem)
        if fill is None:
            cells = engine_for(problem).sweep(grid, 0, 2 * problem.dim - 2)
            return grid, {"cells_computed": cells, "compiled_kernel": False}
        fill(grid.values)
        return grid, {
            "cells_computed": problem.dim * problem.dim,
            "compiled_kernel": True,
        }

    def _validate(self, problem: WavefrontProblem, tunables: TunableParams) -> TunableParams:
        # A single-core strategy with no tiling; normalise like serial.
        return TunableParams(cpu_tile=1)
