"""Shared-memory backing for the wavefront value grid.

The multicore backend (:mod:`repro.runtime.mp_parallel`) needs every worker
process to read and write the *same* grid without serialising tiles over
pipes.  :class:`SharedGridBuffer` places the ``dim x dim`` value array in a
POSIX shared-memory segment (:mod:`multiprocessing.shared_memory`) and wraps
it as a zero-copy NumPy view:

* the parent **creates** the segment, copies the grid values in and swaps
  the :class:`repro.core.grid.WavefrontGrid`'s ``values`` array for the
  shared view, so the band runner and any in-process sweeps write straight
  into shared memory;
* each worker **attaches** by name during pool initialisation and keeps a
  flattened view for the strided-diagonal tile sweeps — tile results are
  never pickled, only tiny tile descriptors travel between processes.

Ownership is explicit: only the creating side may :meth:`unlink` the
segment; attachers merely :meth:`close` their mapping.  Attaching
deliberately opts out of the resource tracker (``track=False`` where
available, unregistering otherwise) so worker exits do not tear down or
double-free a segment the parent still owns.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.core.exceptions import InvalidParameterError


class SharedGridBuffer:
    """A ``dim x dim`` float array in shared memory with a zero-copy view.

    Use the :meth:`create` / :meth:`attach` constructors rather than
    instantiating directly; the buffer is also a context manager that closes
    (and, for the owner, unlinks) the segment on exit.
    """

    def __init__(self, shm: shared_memory.SharedMemory, dim: int, dtype, owner: bool) -> None:
        self._shm = shm
        self.dim = int(dim)
        self.dtype = np.dtype(dtype)
        self.owner = bool(owner)
        self._values: np.ndarray | None = np.ndarray(
            (self.dim, self.dim), dtype=self.dtype, buffer=shm.buf
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, dim: int, dtype=np.float64) -> "SharedGridBuffer":
        """Allocate a new zero-initialised shared segment (caller owns it)."""
        if dim < 2:
            raise InvalidParameterError(f"dim must be >= 2, got {dim}")
        nbytes = int(dim) * int(dim) * np.dtype(dtype).itemsize
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        buffer = cls(shm, dim, dtype, owner=True)
        buffer.values[...] = 0.0
        return buffer

    @classmethod
    def attach(cls, name: str, dim: int, dtype=np.float64) -> "SharedGridBuffer":
        """Map an existing segment by name (non-owning, e.g. in a worker)."""
        try:
            # Python >= 3.13: opt out of the per-process resource tracker.
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            shm = _attach_untracked(name)
        return cls(shm, dim, dtype, owner=False)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """System-wide segment name workers attach by."""
        return self._shm.name

    @property
    def values(self) -> np.ndarray:
        """The zero-copy ``(dim, dim)`` view of the segment."""
        if self._values is None:
            raise InvalidParameterError("shared grid buffer is closed")
        return self._values

    @property
    def nbytes(self) -> int:
        """Bytes of the value array backed by the segment."""
        return self.dim * self.dim * self.dtype.itemsize

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (the view becomes unusable)."""
        if self._values is not None:
            # The memoryview exported to NumPy must be released before the
            # mapping can close without raising BufferError.
            self._values = None
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system (owner only)."""
        if not self.owner:
            raise InvalidParameterError(
                "only the creating process may unlink a shared grid buffer"
            )
        self._shm.unlink()

    def __enter__(self) -> "SharedGridBuffer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        if self.owner:
            self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._values is None else "open"
        return (
            f"SharedGridBuffer(name={self.name!r}, dim={self.dim}, "
            f"owner={self.owner}, {state})"
        )


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it with the resource tracker.

    On Python < 3.13 attaching always registers, which is wrong for a
    non-owner: the tracker's cache is shared between forked processes, so a
    worker's registration/unregistration pair deletes the *parent's* entry
    (KeyError on unlink), and under spawn a worker's tracker would unlink a
    segment the parent still owns at worker exit.  Suppressing registration
    during construction sidesteps both; the owning side stays registered
    and keeps the crash-cleanup guarantee.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
