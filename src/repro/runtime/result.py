"""The result object returned by every executor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.grid import WavefrontGrid
from repro.core.params import InputParams, TunableParams
from repro.hardware.costmodel import PhaseBreakdown


@dataclass
class ExecutionResult:
    """Outcome of executing one wavefront instance under one configuration.

    ``rtime`` is the paper's quantity of interest: the simulated end-to-end
    runtime in seconds on the target platform.  ``wall_time`` is how long the
    reproduction actually took on the host (only meaningful in functional
    mode).  ``grid`` is populated in functional mode only.

    ``witness`` is the kernel's optional answer certificate (see
    :meth:`repro.core.pattern.WavefrontKernel.reconstruct_witness`) — e.g.
    the decoded Viterbi state path — reconstructed by traceback after the
    functional sweep; ``None`` for witness-free kernels and in simulate
    mode.  It is a 1-D ``int64`` array and travels with the result through
    the cache and the serving stack.
    """

    params: InputParams
    tunables: TunableParams
    system: str
    mode: str
    rtime: float
    breakdown: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    grid: WavefrontGrid | None = None
    wall_time: float = 0.0
    stats: dict[str, Any] = field(default_factory=dict)
    witness: np.ndarray | None = None

    @property
    def value(self) -> float:
        """The wavefront's "answer": the value of the final cell (dim-1, dim-1).

        Only available in functional mode.
        """
        if self.grid is None:
            raise ValueError("functional grid not available for this result")
        return float(self.grid.values[-1, -1])

    @property
    def checksum(self) -> float:
        """Sum of all grid values; a cheap whole-grid equality fingerprint."""
        if self.grid is None:
            raise ValueError("functional grid not available for this result")
        return float(np.sum(self.grid.values))

    def matches(self, other: "ExecutionResult", rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """True when both results carry grids with element-wise equal values.

        Witnesses, when present on either side, must be *exactly* equal —
        a traceback certificate has no meaningful tolerance.
        """
        if self.grid is None or other.grid is None:
            return False
        if not self.grid.allclose(other.grid, rtol=rtol, atol=atol):
            return False
        if self.witness is None and other.witness is None:
            return True
        if self.witness is None or other.witness is None:
            return False
        return np.array_equal(self.witness, other.witness)

    def summary(self) -> dict[str, Any]:
        """Flat dictionary used by reports and persistence."""
        out: dict[str, Any] = {
            "system": self.system,
            "mode": self.mode,
            "dim": self.params.dim,
            "tsize": self.params.tsize,
            "dsize": self.params.dsize,
            "cpu_tile": self.tunables.cpu_tile,
            "band": self.tunables.band,
            "gpu_count": self.tunables.gpu_count,
            "gpu_tile": self.tunables.gpu_tile,
            "halo": self.tunables.halo,
            "rtime": self.rtime,
            "wall_time": self.wall_time,
        }
        out.update({f"breakdown_{k}": v for k, v in self.breakdown.to_dict().items()})
        out.update(self.stats)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionResult(system={self.system!r}, mode={self.mode!r}, "
            f"dim={self.params.dim}, tsize={self.params.tsize}, "
            f"config={self.tunables.describe()}, rtime={self.rtime:.4g}s)"
        )
