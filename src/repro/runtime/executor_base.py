"""Common executor machinery: modes, validation, result assembly."""

from __future__ import annotations

import abc
import enum
import time

from repro.core.exceptions import ExecutionError, InvalidParameterError
from repro.core.grid import WavefrontGrid
from repro.core.params import TunableParams
from repro.core.pattern import WavefrontProblem
from repro.hardware.costmodel import CostConstants, CostModel, PhaseBreakdown
from repro.hardware.system import SystemSpec
from repro.runtime.result import ExecutionResult


class ExecutionMode(enum.Enum):
    """How an executor runs.

    ``FUNCTIONAL`` really computes every cell (and additionally reports the
    simulated ``rtime``); ``SIMULATE`` evaluates only the cost model, which is
    what the exhaustive parameter sweeps use.
    """

    FUNCTIONAL = "functional"
    SIMULATE = "simulate"

    @classmethod
    def coerce(cls, value: "ExecutionMode | str") -> "ExecutionMode":
        """Accept either the enum or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise InvalidParameterError(
                f"unknown execution mode {value!r}; expected one of: {valid}"
            ) from None


class Executor(abc.ABC):
    """Base class of all executors.

    Subclasses implement :meth:`_run_functional` (compute the grid) and
    :meth:`_breakdown` (cost-model prediction); :meth:`execute` assembles the
    :class:`repro.runtime.result.ExecutionResult` common to both modes.
    """

    #: Name recorded in results (overridden by subclasses).
    strategy = "base"

    def __init__(
        self, system: SystemSpec, constants: CostConstants | None = None
    ) -> None:
        self.system = system
        self.cost_model = CostModel(system, constants)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _breakdown(self, problem: WavefrontProblem, tunables: TunableParams) -> PhaseBreakdown:
        """Cost-model breakdown for this strategy on this problem."""

    @abc.abstractmethod
    def _run_functional(
        self, problem: WavefrontProblem, tunables: TunableParams
    ) -> tuple[WavefrontGrid, dict]:
        """Really compute the grid; returns (grid, extra stats)."""

    def _validate(self, problem: WavefrontProblem, tunables: TunableParams) -> TunableParams:
        """Clip tunables to the problem and check them against the platform."""
        tunables = tunables.clipped(problem.dim)
        if tunables.gpu_count > self.system.gpu_count:
            raise InvalidParameterError(
                f"configuration needs {tunables.gpu_count} GPUs but system "
                f"{self.system.name!r} has {self.system.gpu_count}"
            )
        return tunables

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(
        self,
        problem: WavefrontProblem,
        tunables: TunableParams | None = None,
        mode: ExecutionMode | str = ExecutionMode.FUNCTIONAL,
    ) -> ExecutionResult:
        """Run ``problem`` under ``tunables`` in the requested mode."""
        mode = ExecutionMode.coerce(mode)
        tunables = self._validate(problem, tunables or TunableParams())
        params = problem.input_params()
        breakdown = self._breakdown(problem, tunables)

        grid = None
        witness = None
        stats: dict = {"strategy": self.strategy}
        wall = 0.0
        if mode is ExecutionMode.FUNCTIONAL:
            t0 = time.perf_counter()
            grid, extra = self._run_functional(problem, tunables)
            wall = time.perf_counter() - t0
            if grid.dim != problem.dim:
                raise ExecutionError(
                    f"{self.strategy} executor returned a grid of dim {grid.dim}, "
                    f"expected {problem.dim}"
                )
            stats.update(extra)
            # Single witness-reconstruction point for every backend: the
            # traceback is a pure function of the finished grid, so running
            # it here (not inside _run_functional) keeps serial, vectorized,
            # multicore and hybrid strategies byte-identical by construction.
            witness = problem.kernel.reconstruct_witness(grid.values)

        return ExecutionResult(
            params=params,
            tunables=tunables,
            system=self.system.name,
            mode=mode.value,
            rtime=breakdown.total_s,
            breakdown=breakdown,
            grid=grid,
            wall_time=wall,
            stats=stats,
            witness=witness,
        )

    def predict(self, problem: WavefrontProblem, tunables: TunableParams | None = None) -> float:
        """Predicted runtime (seconds) without any functional execution."""
        tunables = self._validate(problem, tunables or TunableParams())
        return self._breakdown(problem, tunables).total_s
