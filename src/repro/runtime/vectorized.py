"""The vectorized wavefront engine: whole anti-diagonals as NumPy batches.

The scalar executors evaluate diagonals through fancy-indexed gathers
(:func:`repro.runtime.compute.compute_cells`): per diagonal they materialise
index arrays, gather three neighbour arrays with ``np.where`` masks and
scatter the result back.  For fine-grained kernels that machinery dominates
the runtime.  This module removes it:

* a diagonal of a row-major square grid is an arithmetic sequence in the
  flattened array (:func:`repro.core.diagonal.flat_diagonal_slice`), so whole
  diagonals are read and written through zero-copy strided *views*;
* the west / north / north-west neighbours of diagonal ``d`` are sub-slices
  of the views of diagonals ``d - 1`` and ``d - 2`` — no gathers at all.
  Boundary cells only occur on the growing half of the sweep and touch at
  most the two end elements of a diagonal;
* kernels may provide a fused evaluator
  (:meth:`repro.core.pattern.WavefrontKernel.make_diagonal_evaluator`) that
  precomputes position-dependent tables once per sweep and evaluates each
  diagonal with in-place ufuncs, writing straight into the grid.

The engine is exposed three ways: :class:`DiagonalSweepEngine` (the raw
sweep over any diagonal range, used by the hybrid executor's CPU phases),
:func:`compute_diagonal_range_vectorized` (drop-in counterpart of
:func:`repro.runtime.compute.compute_diagonal_range`) and
:class:`VectorizedSerialExecutor` (the registered ``vectorized`` strategy,
the default single-core backend whenever NumPy is available).
"""

from __future__ import annotations

from repro.core import diagonal as dg
from repro.core.exceptions import KernelError
from repro.core.grid import WavefrontGrid
from repro.core.params import TunableParams
from repro.core.pattern import WavefrontProblem
from repro.core.tiling import Tile, TileDecomposition
from repro.hardware.costmodel import PhaseBreakdown
from repro.runtime.executor_base import Executor

try:  # pragma: no cover - exercised indirectly by numpy_available()
    import numpy as np

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - the toolchain always ships numpy
    np = None  # type: ignore[assignment]
    _HAS_NUMPY = False


def numpy_available() -> bool:
    """True when NumPy importable — the gate for the vectorized backend.

    NumPy is a hard dependency of the core package, but the registry keeps
    the check explicit so stripped-down deployments (or a future non-NumPy
    core) degrade to the scalar serial executor instead of crashing.
    """
    return _HAS_NUMPY


class TileSweeper:
    """Strided-diagonal sweep of one rectangular region of the grid.

    The workhorse shared by the whole-grid engine and the multicore
    backend's worker processes: a region's local anti-diagonals are
    arithmetic sequences of stride ``dim - 1`` in the flattened grid, so
    the sweep reads and writes them through zero-copy views, and the west /
    north / north-west neighbours are the same views shifted by one flat
    position — even when they live outside the region (in an
    already-computed neighbouring tile).  Boundary patches (grid row 0 /
    column 0) touch at most the two end elements of a local diagonal.

    One sweeper serves any number of tiles of its problem; building it pays
    the kernel's fused-evaluator precompute exactly once, which is why both
    the per-problem engine cache (:func:`engine_for`) and the worker pool's
    per-process cache hold on to one.
    """

    def __init__(self, problem: WavefrontProblem) -> None:
        if not _HAS_NUMPY:
            raise KernelError("the vectorized engine requires NumPy")
        self.problem = problem
        self.kernel = problem.kernel
        self.dim = problem.dim
        self.boundary = float(problem.boundary)
        self._evaluator = self.kernel.make_diagonal_evaluator(self.dim, self.boundary)
        # Scratch for boundary-patched neighbour assembly (worst case: the
        # longest diagonal of a whole-grid region).
        self._west = np.empty(self.dim)
        self._north = np.empty(self.dim)
        self._nw = np.empty(self.dim)

    @property
    def fused(self) -> bool:
        """True when the kernel supplied a fused diagonal evaluator."""
        return self._evaluator is not None

    def sweep_tile(
        self,
        flat: np.ndarray,
        tile: Tile,
        d_lo: int = 0,
        d_hi: int | None = None,
        check: bool = True,
    ) -> int:
        """Compute ``tile``'s cells on diagonals ``[d_lo, d_hi]``; returns cells.

        ``flat`` is the flattened ``dim * dim`` value array.  All cells of
        the tile's west / north / north-west neighbour tiles on earlier
        diagonals, and all cells before ``d_lo``, must already hold final
        values (the tile-wavefront + range contract).  With ``check`` each
        diagonal's output is validated for finiteness as it is produced
        (what the pool workers use); callers that batch the check over the
        whole range — the engine — pass ``check=False``.
        """
        dim = self.dim
        stride = dim - 1
        boundary = self.boundary
        evaluator = self._evaluator
        r0, r1 = tile.row_start, tile.row_stop
        c0, c1 = tile.col_start, tile.col_stop
        first = r0 + c0
        last = (r1 - 1) + (c1 - 1)
        if d_hi is None:
            d_hi = last
        total = 0
        for d in range(max(first, d_lo), min(last, d_hi) + 1):
            i_min = max(r0, d - (c1 - 1))
            i_max = min(r1 - 1, d - c0)
            m = i_max - i_min + 1
            # Cell (i, d - i) sits at flat index i * dim + (d - i); the local
            # diagonal is the stride-(dim-1) sequence from rows i_min..i_max.
            start = i_min * dim + (d - i_min)
            end = start + (m - 1) * stride
            out = flat[start : end + 1 : stride]
            j_min = d - i_max

            if i_min > 0 and j_min > 0:
                # Interior: every neighbour exists, west/north/north-west are
                # the same strided sequence shifted by 1 / dim / dim + 1.
                west = flat[start - 1 : end : stride]
                north = flat[start - dim : end - dim + 1 : stride]
                nw = flat[start - dim - 1 : end - dim : stride]
            else:
                # The region touches grid row 0 and/or column 0: assemble
                # the neighbours in scratch, patching the out-of-grid
                # elements (at most the first and last of each array) with
                # the boundary value.
                west = self._west[:m]
                north = self._north[:m]
                nw = self._nw[:m]
                w_hi = m - 1 if j_min == 0 else m  # valid west entries
                n_lo = 1 if i_min == 0 else 0  # first valid north entry
                if j_min == 0:
                    west[m - 1] = boundary
                    nw[m - 1] = boundary
                if i_min == 0:
                    north[0] = boundary
                    nw[0] = boundary
                if w_hi > 0:
                    west[:w_hi] = flat[start - 1 : start - 1 + (w_hi - 1) * stride + 1 : stride]
                if n_lo < m:
                    base = start - dim + n_lo * stride
                    north[n_lo:] = flat[base : start - dim + (m - 1) * stride + 1 : stride]
                nw_hi = m - 2 if j_min == 0 else m - 1
                if n_lo <= nw_hi:
                    base = start - dim - 1 + n_lo * stride
                    nw[n_lo : nw_hi + 1] = flat[base : start - dim - 1 + nw_hi * stride + 1 : stride]

            if evaluator is not None:
                evaluator(d, i_min, i_max, west, north, nw, out)
            else:
                i = np.arange(i_min, i_max + 1, dtype=np.int64)
                values = np.asarray(self.kernel.diagonal(i, d - i, west, north, nw), dtype=float)
                if values.ndim != 1 or values.shape[0] != m:
                    raise KernelError(
                        f"kernel {self.kernel.name!r} returned shape {values.shape}, "
                        f"expected ({m},)"
                    )
                out[:] = values
            if check and not np.all(np.isfinite(out)):
                raise KernelError(
                    f"kernel {self.kernel.name!r} produced non-finite values "
                    f"on diagonal {d} of tile ({tile.tile_row}, {tile.tile_col})"
                )
            total += m
        return total

    def sweep_grid(self, grid: WavefrontGrid, decomposition: TileDecomposition) -> int:
        """In-process sweep of a whole tile schedule (reference/testing path)."""
        flat = grid.values.reshape(-1)
        total = 0
        for tiles in decomposition.schedule():
            for tile in tiles:
                total += self.sweep_tile(flat, tile)
        return total


class DiagonalSweepEngine:
    """Batched anti-diagonal sweep of one wavefront problem.

    The engine is built once per problem (so fused evaluators can precompute
    their tables) and then run over any diagonal range with :meth:`sweep`.
    Neighbour values are read from the grid itself through strided diagonal
    views, which makes a mid-grid range (``d_lo > 0``) correct by
    construction — exactly what the hybrid executor's trailing CPU phase
    needs.  The sweep itself is the whole-grid special case of
    :class:`TileSweeper`, with the finiteness check batched over the range
    instead of per diagonal.
    """

    def __init__(self, problem: WavefrontProblem) -> None:
        if not _HAS_NUMPY:
            raise KernelError("the vectorized engine requires NumPy")
        self.problem = problem
        self.kernel = problem.kernel
        self.boundary = float(problem.boundary)
        self._sweeper = TileSweeper(problem)
        dim = problem.dim
        self._grid_tile = Tile(
            tile_row=0, tile_col=0, row_start=0, row_stop=dim, col_start=0, col_stop=dim
        )

    @property
    def _evaluator(self):
        """The kernel's fused evaluator, if any (``None`` -> generic path)."""
        return self._sweeper._evaluator

    # ------------------------------------------------------------------
    def sweep(self, grid: WavefrontGrid, d_lo: int = 0, d_hi: int | None = None) -> int:
        """Compute diagonals ``d_lo .. d_hi`` inclusive; returns cells computed.

        Diagonals before ``d_lo`` must already hold their final values (or be
        outside the grid); this matches the contract of
        :func:`repro.runtime.compute.compute_diagonal_range`.
        """
        dim = grid.dim
        last = 2 * dim - 2
        if d_hi is None:
            d_hi = last
        if d_hi < d_lo:
            return 0
        if d_lo < 0 or d_hi > last:
            raise KernelError(
                f"diagonal range [{d_lo}, {d_hi}] out of bounds for dim={dim}"
            )
        total = self._sweeper.sweep_tile(
            grid.values.reshape(-1), self._grid_tile, d_lo, d_hi, check=False
        )
        self._check_finite(grid, d_lo, d_hi)
        return total

    def _check_finite(self, grid: WavefrontGrid, d_lo: int, d_hi: int) -> None:
        """Finiteness check over exactly the diagonals the sweep computed.

        The scalar path validates every diagonal as it is produced; doing it
        once at the end keeps the per-diagonal loop lean without weakening
        the guarantee that non-finite kernel output raises
        :class:`KernelError`.  A full-grid sweep is one whole-array check;
        a sub-range scans only its own diagonals, so the cost is
        proportional to the cells computed and values elsewhere (e.g. a
        band the GPU phase has not filled yet) are none of this sweep's
        business.
        """
        if d_lo <= 0 and d_hi >= 2 * grid.dim - 2:
            if not np.all(np.isfinite(grid.values)):
                raise KernelError(
                    f"kernel {self.kernel.name!r} produced non-finite values "
                    f"in diagonals [{d_lo}, {d_hi}]"
                )
            return
        flat = grid.values.reshape(-1)
        for d in range(d_lo, d_hi + 1):
            view = flat[dg.flat_diagonal_slice(d, grid.dim)]
            if not np.all(np.isfinite(view)):
                raise KernelError(
                    f"kernel {self.kernel.name!r} produced non-finite values "
                    f"on diagonal {d} of range [{d_lo}, {d_hi}]"
                )


#: Attribute the per-problem engine cache lives under.  Caching *on* the
#: problem (rather than in a module-level map) ties the engine's lifetime to
#: the problem's: no registry to invalidate, nothing kept alive after the
#: problem is garbage collected.
_ENGINE_ATTR = "_cached_sweep_engine"


def engine_for(problem: WavefrontProblem) -> DiagonalSweepEngine:
    """The cached :class:`DiagonalSweepEngine` of ``problem`` (built once).

    Repeated range calls (the hybrid executor's CPU phases, incremental
    sweeps) reuse one engine, so the O(dim^2) fused-evaluator precompute is
    paid once per problem instead of once per call.
    """
    engine = getattr(problem, _ENGINE_ATTR, None)
    if engine is None or engine.problem is not problem:
        engine = DiagonalSweepEngine(problem)
        setattr(problem, _ENGINE_ATTR, engine)
    return engine


def compute_diagonal_range_vectorized(
    problem: WavefrontProblem, grid: WavefrontGrid, d_lo: int, d_hi: int
) -> int:
    """Vectorized counterpart of :func:`repro.runtime.compute.compute_diagonal_range`."""
    return engine_for(problem).sweep(grid, d_lo, d_hi)


class VectorizedSerialExecutor(Executor):
    """Single-core sweep evaluating whole anti-diagonals as NumPy batches.

    Produces grids identical to :class:`repro.runtime.serial.SerialExecutor`
    (the test suite asserts cell-for-cell equality on every registered
    application) while running several times faster, and is therefore the
    default serial fallback whenever NumPy is available
    (:func:`repro.runtime.registry.default_serial_executor`).
    """

    strategy = "vectorized"

    def _breakdown(self, problem: WavefrontProblem, tunables: TunableParams) -> PhaseBreakdown:
        params = problem.input_params()
        return PhaseBreakdown(pre_s=self.cost_model.vectorized_time(params))

    def _run_functional(
        self, problem: WavefrontProblem, tunables: TunableParams
    ) -> tuple[WavefrontGrid, dict]:
        grid = problem.make_grid()
        engine = engine_for(problem)
        cells = engine.sweep(grid)
        return grid, {
            "cells_computed": cells,
            "fused_kernel": engine._evaluator is not None,
        }

    def _validate(self, problem: WavefrontProblem, tunables: TunableParams) -> TunableParams:
        # Like the scalar serial baseline this strategy ignores tunables;
        # normalise them so results record the canonical configuration.
        return TunableParams(cpu_tile=1)
