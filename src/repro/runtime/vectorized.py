"""The vectorized wavefront engine: whole anti-diagonals as NumPy batches.

The scalar executors evaluate diagonals through fancy-indexed gathers
(:func:`repro.runtime.compute.compute_cells`): per diagonal they materialise
index arrays, gather three neighbour arrays with ``np.where`` masks and
scatter the result back.  For fine-grained kernels that machinery dominates
the runtime.  This module removes it:

* a diagonal of a row-major square grid is an arithmetic sequence in the
  flattened array (:func:`repro.core.diagonal.flat_diagonal_slice`), so whole
  diagonals are read and written through zero-copy strided *views*;
* the west / north / north-west neighbours of diagonal ``d`` are sub-slices
  of the views of diagonals ``d - 1`` and ``d - 2`` — no gathers at all.
  Boundary cells only occur on the growing half of the sweep and touch at
  most the two end elements of a diagonal;
* kernels may provide a fused evaluator
  (:meth:`repro.core.pattern.WavefrontKernel.make_diagonal_evaluator`) that
  precomputes position-dependent tables once per sweep and evaluates each
  diagonal with in-place ufuncs, writing straight into the grid.

The engine is exposed three ways: :class:`DiagonalSweepEngine` (the raw
sweep over any diagonal range, used by the hybrid executor's CPU phases),
:func:`compute_diagonal_range_vectorized` (drop-in counterpart of
:func:`repro.runtime.compute.compute_diagonal_range`) and
:class:`VectorizedSerialExecutor` (the registered ``vectorized`` strategy,
the default single-core backend whenever NumPy is available).
"""

from __future__ import annotations

from repro.core import diagonal as dg
from repro.core.exceptions import KernelError
from repro.core.grid import WavefrontGrid
from repro.core.params import TunableParams
from repro.core.pattern import WavefrontProblem
from repro.hardware.costmodel import PhaseBreakdown
from repro.runtime.executor_base import Executor

try:  # pragma: no cover - exercised indirectly by numpy_available()
    import numpy as np

    _HAS_NUMPY = True
except ImportError:  # pragma: no cover - the toolchain always ships numpy
    np = None  # type: ignore[assignment]
    _HAS_NUMPY = False


def numpy_available() -> bool:
    """True when NumPy importable — the gate for the vectorized backend.

    NumPy is a hard dependency of the core package, but the registry keeps
    the check explicit so stripped-down deployments (or a future non-NumPy
    core) degrade to the scalar serial executor instead of crashing.
    """
    return _HAS_NUMPY


class DiagonalSweepEngine:
    """Batched anti-diagonal sweep of one wavefront problem.

    The engine is built once per problem (so fused evaluators can precompute
    their tables) and then run over any diagonal range with :meth:`sweep`.
    Neighbour values are read from the grid itself through strided diagonal
    views, which makes a mid-grid range (``d_lo > 0``) correct by
    construction — exactly what the hybrid executor's trailing CPU phase
    needs.
    """

    def __init__(self, problem: WavefrontProblem) -> None:
        if not _HAS_NUMPY:
            raise KernelError("the vectorized engine requires NumPy")
        self.problem = problem
        self.kernel = problem.kernel
        self.boundary = float(problem.boundary)
        dim = problem.dim
        self._evaluator = self.kernel.make_diagonal_evaluator(dim, self.boundary)
        # Index views for the generic (non-fused) kernel path: i ascending,
        # j descending, both sliced per diagonal without allocation.
        self._rows = np.arange(dim, dtype=np.int64)
        self._jdesc = np.arange(2 * dim - 2, -1, -1, dtype=np.int64)
        # Scratch used to assemble boundary-padded neighbours on the growing
        # half of the sweep (at most two boundary elements per diagonal).
        self._west = np.empty(dim)
        self._north = np.empty(dim)
        self._nw = np.empty(dim)

    # ------------------------------------------------------------------
    def sweep(self, grid: WavefrontGrid, d_lo: int = 0, d_hi: int | None = None) -> int:
        """Compute diagonals ``d_lo .. d_hi`` inclusive; returns cells computed.

        Diagonals before ``d_lo`` must already hold their final values (or be
        outside the grid); this matches the contract of
        :func:`repro.runtime.compute.compute_diagonal_range`.
        """
        dim = grid.dim
        last = 2 * dim - 2
        if d_hi is None:
            d_hi = last
        if d_hi < d_lo:
            return 0
        if d_lo < 0 or d_hi > last:
            raise KernelError(
                f"diagonal range [{d_lo}, {d_hi}] out of bounds for dim={dim}"
            )

        flat = grid.values.reshape(-1)
        boundary = self.boundary
        evaluator = self._evaluator
        kernel = self.kernel
        stride = dim - 1
        total = 0
        for d in range(d_lo, d_hi + 1):
            if d < dim:
                i_min, i_max = 0, d
            else:
                i_min, i_max = d - dim + 1, dim - 1
            m = i_max - i_min + 1
            # Inlined flat_diagonal_slice(d, dim): cell (i, d - i) sits at
            # flat index d + i * (dim - 1).
            start = i_min * dim + d - i_min
            out = flat[start : start + (m - 1) * stride + 1 : stride]

            if d >= dim:
                # Shrinking half: every neighbour is an interior cell, so
                # west is the same-rows slice of diagonal d-1 (one flat
                # position to the left), north the rows-above slice, and
                # north-west the rows-above slice of diagonal d-2.
                west = flat[start - 1 : start + (m - 1) * stride : stride]
                north = flat[start - dim : start + (m - 1) * stride - 1 : stride]
                nw = flat[start - dim - 1 : start + (m - 1) * stride - 2 : stride]
            else:
                # Growing half: rows 0 .. d.  The first row has no north /
                # north-west neighbour and the last row (column 0) has no
                # west / north-west neighbour; everything else is interior.
                west = self._west[:m]
                north = self._north[:m]
                nw = self._nw[:m]
                west[m - 1] = boundary
                north[0] = boundary
                nw[0] = boundary
                nw[m - 1] = boundary
                if d >= 1:
                    prev = flat[dg.flat_diagonal_slice(d - 1, dim)]
                    west[: m - 1] = prev
                    north[1:] = prev
                if d >= 2:
                    nw[1 : m - 1] = flat[dg.flat_diagonal_slice(d - 2, dim)]

            if evaluator is not None:
                evaluator(d, i_min, i_max, west, north, nw, out)
            else:
                i = self._rows[i_min : i_max + 1]
                # self._jdesc[k] = 2*dim - 2 - k, so the slice below runs
                # j = d - i_min down to d - i_max, matching i.
                k0 = 2 * dim - 2 - (d - i_min)
                j = self._jdesc[k0 : k0 + m]
                values = kernel.diagonal(i, j, west, north, nw)
                values = np.asarray(values, dtype=float)
                if values.ndim != 1 or values.shape[0] != m:
                    raise KernelError(
                        f"kernel {kernel.name!r} returned shape {values.shape}, "
                        f"expected ({m},)"
                    )
                out[:] = values
            total += m

        self._check_finite(grid, d_lo, d_hi)
        return total

    def _check_finite(self, grid: WavefrontGrid, d_lo: int, d_hi: int) -> None:
        """One batched finiteness check for the whole range.

        The scalar path validates every diagonal individually; doing it once
        at the end keeps the per-diagonal loop lean without weakening the
        guarantee that non-finite kernel output raises :class:`KernelError`.
        """
        if not np.all(np.isfinite(grid.values)):
            raise KernelError(
                f"kernel {self.kernel.name!r} produced non-finite values "
                f"in diagonals [{d_lo}, {d_hi}]"
            )


def compute_diagonal_range_vectorized(
    problem: WavefrontProblem, grid: WavefrontGrid, d_lo: int, d_hi: int
) -> int:
    """Vectorized counterpart of :func:`repro.runtime.compute.compute_diagonal_range`."""
    return DiagonalSweepEngine(problem).sweep(grid, d_lo, d_hi)


class VectorizedSerialExecutor(Executor):
    """Single-core sweep evaluating whole anti-diagonals as NumPy batches.

    Produces grids identical to :class:`repro.runtime.serial.SerialExecutor`
    (the test suite asserts cell-for-cell equality on every registered
    application) while running several times faster, and is therefore the
    default serial fallback whenever NumPy is available
    (:func:`repro.runtime.registry.default_serial_executor`).
    """

    strategy = "vectorized"

    def _breakdown(self, problem: WavefrontProblem, tunables: TunableParams) -> PhaseBreakdown:
        params = problem.input_params()
        return PhaseBreakdown(pre_s=self.cost_model.vectorized_time(params))

    def _run_functional(
        self, problem: WavefrontProblem, tunables: TunableParams
    ) -> tuple[WavefrontGrid, dict]:
        grid = problem.make_grid()
        engine = DiagonalSweepEngine(problem)
        cells = engine.sweep(grid)
        return grid, {
            "cells_computed": cells,
            "fused_kernel": engine._evaluator is not None,
        }

    def _validate(self, problem: WavefrontProblem, tunables: TunableParams) -> TunableParams:
        # Like the scalar serial baseline this strategy ignores tunables;
        # normalise them so results record the canonical configuration.
        return TunableParams(cpu_tile=1)
