"""Simulated-time accounting for the executors.

A :class:`Timeline` accumulates simulated seconds under named categories
(``cpu_pre``, ``gpu_compute``, ``transfer`` ...).  The hybrid executor builds
its :class:`repro.hardware.costmodel.PhaseBreakdown` from it, and the tests
use it to verify that functional and simulate modes charge identical time.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.exceptions import ExecutionError


class Timeline:
    """Accumulator of simulated seconds by category."""

    def __init__(self) -> None:
        self._buckets: dict[str, float] = defaultdict(float)

    def charge(self, category: str, seconds: float) -> None:
        """Add ``seconds`` of simulated time to ``category``."""
        if seconds < 0:
            raise ExecutionError(
                f"cannot charge negative time ({seconds!r} s) to {category!r}"
            )
        self._buckets[category] += float(seconds)

    def get(self, category: str) -> float:
        """Seconds accumulated under ``category`` (0.0 if never charged)."""
        return self._buckets.get(category, 0.0)

    @property
    def total(self) -> float:
        """Total simulated seconds across all categories."""
        return float(sum(self._buckets.values()))

    def merge(self, other: "Timeline") -> None:
        """Add all of ``other``'s charges into this timeline."""
        for category, seconds in other._buckets.items():
            self._buckets[category] += seconds

    def as_dict(self) -> dict[str, float]:
        """Copy of the category -> seconds mapping."""
        return dict(self._buckets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self._buckets.items()))
        return f"Timeline({parts})"
