"""The three-phase hybrid executor (the paper's implementation strategy).

Phase 1 computes the diagonals before the band with tiled CPU parallelism,
phase 2 offloads the band to one or two (simulated) GPUs, phase 3 finishes
the remaining diagonals on the CPU.  Any phase may be empty depending on the
tunable parameters, so this executor subsumes the pure-CPU and pure-GPU
strategies as special cases.
"""

from __future__ import annotations

import numpy as np

from repro.core import diagonal as dg
from repro.core.exceptions import InvalidParameterError
from repro.core.grid import WavefrontGrid
from repro.core.params import TunableParams
from repro.core.pattern import WavefrontProblem
from repro.core.plan import ThreePhasePlan
from repro.core.tiling import TileDecomposition
from repro.device.context import DeviceContext
from repro.hardware.costmodel import PhaseBreakdown
from repro.runtime.band import BandRunner
from repro.runtime.compute import compute_cells
from repro.runtime.executor_base import Executor


class HybridExecutor(Executor):
    """CPU / GPU / CPU three-phase execution of one wavefront instance.

    ``cpu_engine`` selects the backend of the CPU phases: ``"serial"`` (the
    default) follows the paper's tiled access order cell group by cell
    group, ``"vectorized"`` evaluates each diagonal of the CPU triangles as
    one NumPy batch through :class:`repro.runtime.vectorized.DiagonalSweepEngine`,
    and ``"mp"`` runs the tile wavefront of both CPU triangles on the
    shared-memory worker-process pool of
    :class:`repro.runtime.mp_parallel.MPWavefrontPool` (one persistent pool
    serves phases 1 and 3; the GPU band phase in between writes into the
    same shared view the workers read).  All produce identical grids; the
    vectorized engine is what single-core tuned deployments use, the mp
    engine what multicore hosts use.  ``workers`` only applies to
    ``cpu_engine="mp"`` (``None`` auto-detects, with a single-core
    fallback).
    """

    strategy = "hybrid"

    def __init__(
        self,
        system,
        constants=None,
        cpu_engine: str = "serial",
        workers: int | None = None,
        pool_source=None,
    ) -> None:
        super().__init__(system, constants)
        if cpu_engine not in ("serial", "vectorized", "mp"):
            raise InvalidParameterError(
                f"cpu_engine must be 'serial', 'vectorized' or 'mp', got {cpu_engine!r}"
            )
        self.cpu_engine = cpu_engine
        self.workers = workers
        #: Optional ``(problem, tile, workers) -> MPWavefrontPool`` provider
        #: of borrowed pools for ``cpu_engine="mp"`` (the session's
        #: :class:`repro.runtime.lifecycle.EngineHost`); borrowed pools are
        #: released after the run, never closed, so they stay warm.
        self.pool_source = pool_source
        # Built once per functional run; shared by both CPU phases.
        self._sweep_engine = None
        self._mp_pool = None
        self._pool_borrowed = False

    def _breakdown(self, problem: WavefrontProblem, tunables: TunableParams) -> PhaseBreakdown:
        return self.cost_model.hybrid_breakdown(problem.input_params(), tunables)

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------
    def _run_functional(
        self, problem: WavefrontProblem, tunables: TunableParams
    ) -> tuple[WavefrontGrid, dict]:
        grid = problem.make_grid()
        plan = ThreePhasePlan(problem.input_params(), tunables)
        stats: dict = {"plan": plan.describe()}

        # One engine serves both CPU phases: its fused-evaluator precompute
        # (e.g. a dim x dim substitution grid) is O(dim^2) and must not be
        # paid per phase.  The vectorized engine is additionally cached per
        # problem, so repeated executions reuse it too.
        self._sweep_engine = None
        self._mp_pool = None
        self._pool_borrowed = False
        if self.cpu_engine == "vectorized":
            from repro.runtime.vectorized import engine_for

            self._sweep_engine = engine_for(problem)
        elif self.cpu_engine == "mp":
            from repro.runtime.mp_parallel import MPWavefrontPool, resolve_worker_count

            workers = resolve_worker_count(self.workers, self.system)
            if self.pool_source is not None:
                self._mp_pool = self.pool_source(problem, tunables.cpu_tile, workers)
                self._pool_borrowed = True
                self._mp_pool.bind(grid)
            else:
                self._mp_pool = MPWavefrontPool(
                    problem, grid, tunables.cpu_tile, workers
                )
            stats["cpu_workers"] = self._mp_pool.workers

        try:
            # Phase 1: CPU tiles over the leading triangle.
            cells_pre = self._compute_cpu_span(problem, grid, plan.pre.lo, plan.pre.hi, tunables)
            stats["phase1_cells"] = cells_pre

            # Phase 2: the GPU band.  With the mp engine, grid.values is the
            # shared view, so band results land where the workers read.
            if not plan.gpu.is_empty:
                with DeviceContext(self.system, tunables.gpu_count) as context:
                    runner = BandRunner(problem, grid, plan, tunables, context)
                    band_stats = runner.run()
                    stats.update(band_stats)
                    stats.update(context.log.summary())

            # Phase 3: CPU tiles over the trailing triangle.
            cells_post = self._compute_cpu_span(problem, grid, plan.post.lo, plan.post.hi, tunables)
            stats["phase3_cells"] = cells_post
        finally:
            if self._mp_pool is not None:
                if self._pool_borrowed:
                    self._mp_pool.release()
                else:
                    self._mp_pool.close()
                self._mp_pool = None
                self._pool_borrowed = False
        return grid, stats

    def _compute_cpu_span(
        self,
        problem: WavefrontProblem,
        grid: WavefrontGrid,
        d_lo: int,
        d_hi: int,
        tunables: TunableParams,
    ) -> int:
        """Compute diagonals ``d_lo .. d_hi`` on the CPU, following the tile order.

        Within each cell diagonal the cells are grouped by the CPU tile they
        belong to and computed group by group, mirroring how the tiled
        schedule touches memory, while preserving the wavefront dependency
        order exactly.  With ``cpu_engine="vectorized"`` the span is instead
        swept diagonal batch by diagonal batch.
        """
        if d_hi < d_lo:
            return 0
        if self._mp_pool is not None:
            _, cells = self._mp_pool.run_range(d_lo, d_hi)
            return cells
        if self._sweep_engine is not None:
            return self._sweep_engine.sweep(grid, d_lo, d_hi)
        decomp = TileDecomposition(problem.dim, problem.dim, tunables.cpu_tile)
        total = 0
        for d in range(d_lo, d_hi + 1):
            cells = dg.diagonal_cells(d, problem.dim, problem.dim)
            i, j = cells[:, 0], cells[:, 1]
            # Group the diagonal's cells by tile column so the access pattern
            # follows the tiling; order within the diagonal is irrelevant for
            # correctness because the cells are mutually independent.
            order = np.argsort(j // decomp.tile, kind="stable")
            compute_cells(problem, grid, i[order], j[order])
            total += cells.shape[0]
        return total
