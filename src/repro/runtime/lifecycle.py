"""Session-owned lifecycle of executors, sweep engines and worker pools.

Executors used to be constructed ad hoc at every call site (the CLI, the
benchmark driver, ``autotune_and_run``), and the expensive runtime state
behind them — worker-process pools, shared-memory segments, per-problem
fused-evaluator precomputes — lived and died with a single ``execute()``
call.  :class:`EngineHost` gives that state an explicit owner with an
explicit lifetime:

* :meth:`EngineHost.executor_for` maps a resolved backend decision
  (strategy name, hybrid CPU engine, worker count) to a constructed
  executor, cached so repeated requests reuse one instance;
* :meth:`EngineHost.pool_for` hands out persistent
  :class:`repro.runtime.mp_parallel.MPWavefrontPool` instances keyed by
  (problem, tile, workers) — the multicore executors *borrow* these pools
  (bind a grid, run, release) instead of starting worker processes per
  request;
* :meth:`EngineHost.close` tears everything down deterministically.

Both caches are LRU-bounded (:class:`repro.utils.lru.LRUCache`); an evicted
pool is closed by the eviction hook, so a long-lived serving session cannot
accumulate worker processes without limit.  :class:`repro.session.Session`
owns exactly one host and routes every execution through it.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.autotuner.protocol import split_backend
from repro.core.exceptions import ExecutionError
from repro.core.pattern import WavefrontProblem
from repro.hardware.costmodel import CostConstants
from repro.hardware.system import SystemSpec
from repro.runtime.executor_base import Executor
from repro.utils.lru import LRUCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime.mp_parallel import MPWavefrontPool

#: Default bound of the executor cache (distinct backend configurations).
DEFAULT_MAX_EXECUTORS = 16
#: Default bound of the worker-pool cache.  Pools are heavyweight (worker
#: processes + a shared-memory segment sized for the problem), so the
#: default keeps only a handful warm; eviction closes the pool.
DEFAULT_MAX_POOLS = 4


class EngineHost:
    """Owner of a session's long-lived execution resources.

    One host serves one system.  Cache lookups and construction are guarded
    by an internal lock, so concurrent threads cannot corrupt the LRU state;
    pools, however, remain single-request resources — the borrowing executor
    binds the request's grid, runs, and releases before the next request is
    served.  :class:`repro.session.Session` enforces that contract by
    holding its run lock across every execution; direct multi-threaded users
    must serialise executions the same way.
    """

    def __init__(
        self,
        system: SystemSpec,
        constants: CostConstants | None = None,
        max_executors: int = DEFAULT_MAX_EXECUTORS,
        max_pools: int = DEFAULT_MAX_POOLS,
    ) -> None:
        self.system = system
        self.constants = constants
        self._executors: LRUCache = LRUCache(max_executors)
        self._pools: LRUCache = LRUCache(max_pools, on_evict=self._evict_pool)
        self._lock = threading.RLock()
        self._closed = False
        #: Construction/reuse counters, surfaced by the session's
        #: ``cache_info`` so tests and dashboards can assert reuse.
        self.stats: dict[str, int] = {
            "executors_built": 0,
            "pools_built": 0,
            "pool_requests": 0,
        }

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------
    def executor_for(
        self,
        backend: str,
        engine: str | None = None,
        workers: int = 1,
        dispatch: str = "barrier",
    ) -> Executor:
        """The cached executor behind one resolved backend decision.

        ``backend`` is an executor strategy name or a ``hybrid-<engine>``
        alias; an explicit ``engine`` wins over the alias.  For the hybrid
        executor an unspecified engine defaults to the preferred serial
        engine of this environment (vectorized when NumPy is available).
        The multicore executors are wired back to :meth:`pool_for`, so
        their worker pools persist across calls.  ``dispatch`` selects the
        tile dispatch order of the multicore backends: ``"pipelined"``
        upgrades an mp-parallel request to the dependency-driven executor;
        backends without tile pools ignore it.
        """
        self._check_open()
        strategy, alias_engine = split_backend(backend)
        engine = engine if engine is not None else alias_engine
        workers = max(1, int(workers))
        key = (strategy, engine, workers, dispatch)
        with self._lock:
            cached = self._executors.get(key)
            if cached is not None:
                return cached
            executor = self._build_executor(strategy, engine, workers, dispatch)
            self.stats["executors_built"] += 1
            return self._executors.put(key, executor)

    def _build_executor(
        self, strategy: str, engine: str | None, workers: int, dispatch: str
    ) -> Executor:
        """Construct the executor for one (strategy, engine, workers, dispatch) key."""
        from repro.runtime.hybrid import HybridExecutor
        from repro.runtime.mp_parallel import MPParallelExecutor, PipelinedMPExecutor
        from repro.runtime.registry import available_serial_engines, get_executor

        if strategy == "hybrid":
            cpu_engine = engine if engine is not None else available_serial_engines()[0]
            return HybridExecutor(
                self.system,
                self.constants,
                cpu_engine=cpu_engine,
                workers=workers,
                pool_source=self.pool_for,
            )
        if strategy == PipelinedMPExecutor.strategy or (
            strategy == MPParallelExecutor.strategy and dispatch == "pipelined"
        ):
            return PipelinedMPExecutor(
                self.system, self.constants, workers=workers, pool_source=self.pool_for
            )
        if strategy == MPParallelExecutor.strategy:
            return MPParallelExecutor(
                self.system, self.constants, workers=workers, pool_source=self.pool_for
            )
        return get_executor(strategy, self.system, self.constants)

    # ------------------------------------------------------------------
    # Worker pools
    # ------------------------------------------------------------------
    def pool_for(
        self, problem: WavefrontProblem, tile: int, workers: int
    ) -> "MPWavefrontPool":
        """A persistent worker pool for one (problem, tile, workers) triple.

        The returned pool is *borrowed*: callers bind a grid, run, and
        release — closing is the host's job (on eviction or
        :meth:`close`).  The cache key includes the problem's identity, so
        a recycled ``id()`` from a garbage-collected problem can never
        alias (the cached entry keeps its problem alive and is compared
        by identity before reuse).  A cached pool whose worker died
        (``pool.broken``) is never handed out again: a fresh pool replaces
        it and the LRU ``put`` eviction hook closes the broken one —
        unlinking its shared-memory segment — so one crashed worker costs
        one failed request, never a poisoned session or a leaked segment.
        """
        self._check_open()
        from repro.runtime.mp_parallel import MPWavefrontPool

        with self._lock:
            self.stats["pool_requests"] += 1
            key = (id(problem), int(tile), max(1, int(workers)))
            pool = self._pools.get(key)
            if (
                pool is not None
                and pool.problem is problem
                and not pool.is_bound
                and not pool.broken
            ):
                return pool
            pool = MPWavefrontPool(problem, tile=tile, workers=max(1, int(workers)))
            self.stats["pools_built"] += 1
            return self._pools.put(key, pool)

    @staticmethod
    def _evict_pool(key, pool) -> None:
        """Eviction hook: close the pool leaving the cache."""
        pool.close()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, dict[str, int]]:
        """Size/hit counters of both caches plus the build statistics."""
        return {
            "executors": self._executors.info(),
            "pools": self._pools.info(),
            "builds": dict(self.stats),
        }

    def close(self) -> None:
        """Shut every cached pool down and drop every cached executor."""
        with self._lock:
            if self._closed:
                return
            self._pools.clear()  # eviction hook closes each pool
            self._executors.clear()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("EngineHost used after close()")

    def __enter__(self) -> "EngineHost":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
