"""Whole-grid execution across two GPUs with halo exchange."""

from __future__ import annotations

from repro.core.params import TunableParams
from repro.core.pattern import WavefrontProblem
from repro.runtime.hybrid import HybridExecutor


class MultiGPUBandExecutor(HybridExecutor):
    """Run the entire grid in the GPU phase, split across two devices.

    The halo size controls how often the two devices exchange border data
    through the host; it defaults to 0 (exchange after every diagonal) and
    can be set to study the halo trade-off directly (see the halo ablation
    bench).
    """

    strategy = "gpu-only-multi"

    def __init__(self, system, constants=None, halo: int = 0, gpu_tile: int = 1) -> None:
        super().__init__(system, constants)
        self.halo = halo
        self.gpu_tile = gpu_tile

    def _validate(self, problem: WavefrontProblem, tunables: TunableParams) -> TunableParams:
        forced = TunableParams.from_encoding(
            cpu_tile=1,
            band=problem.dim - 1,
            halo=max(0, self.halo),
            gpu_tile=self.gpu_tile,
        )
        return super()._validate(problem, forced)
