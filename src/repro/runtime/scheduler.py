"""Scheduling of CPU tiles across workers.

The tiled CPU phases execute the tile wavefront: within one tile-diagonal all
tiles are independent and are distributed over the worker pool; tile-diagonals
are separated by a barrier.  :class:`TileScheduler` produces that schedule as
data so both the functional executors and the tests can inspect it, and
:func:`run_schedule` executes it sequentially, on a thread pool, or on any
persistent :class:`concurrent.futures.Executor` — the multicore backend
(:mod:`repro.runtime.mp_parallel`) passes its worker-process pool so each
wave fans its tiles across real cores with a barrier per tile-diagonal.

The barrier is not required for correctness — a tile only reads its west,
north and north-west neighbour tiles — so the module also provides the
*pipelined* alternative: :class:`DependencyGraph` tracks per-tile
remaining-predecessor counts, :class:`PipelinedSchedule` builds range-clipped
graphs the way :meth:`TileScheduler.waves` builds clipped wave lists, and
:func:`run_pipelined` drains the graph, starting a tile the moment its three
neighbours retire, so tiles of wave ``d + 1`` overlap wave ``d`` stragglers.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures import Executor as FuturesExecutor
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.exceptions import ExecutionError, InvalidParameterError
from repro.core.tiling import Tile, TileDecomposition


@dataclass(frozen=True)
class ScheduledTile:
    """One tile assignment: which wave it runs in and on which worker."""

    wave: int
    worker: int
    tile: Tile


def tile_intersects_range(tile: Tile, d_lo: int, d_hi: int) -> bool:
    """True when ``tile`` contains at least one cell on diagonals ``[d_lo, d_hi]``.

    A tile's cells span the cell anti-diagonals ``row_start + col_start``
    through ``(row_stop - 1) + (col_stop - 1)`` inclusive.
    """
    first = tile.row_start + tile.col_start
    last = (tile.row_stop - 1) + (tile.col_stop - 1)
    return first <= d_hi and last >= d_lo


class TileScheduler:
    """Round-robin assignment of the tile wavefront to ``workers`` workers."""

    def __init__(self, decomposition: TileDecomposition, workers: int) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.decomposition = decomposition
        self.workers = workers

    def waves(self, d_lo: int | None = None, d_hi: int | None = None) -> list[list[ScheduledTile]]:
        """The full schedule: one list of assignments per tile-diagonal.

        With ``d_lo`` / ``d_hi`` the schedule is clipped to the tiles that
        contain at least one cell on the cell diagonals ``[d_lo, d_hi]`` (the
        hybrid executor's CPU phases sweep such partial ranges); waves left
        empty by the clipping are dropped, so no barrier is paid for them.
        """
        clip = d_lo is not None or d_hi is not None
        lo = 0 if d_lo is None else d_lo
        hi = (self.decomposition.rows + self.decomposition.cols - 2) if d_hi is None else d_hi
        schedule: list[list[ScheduledTile]] = []
        for wave_index, tiles in enumerate(self.decomposition.schedule()):
            if clip:
                tiles = [tile for tile in tiles if tile_intersects_range(tile, lo, hi)]
                if not tiles:
                    continue
            assignments = [
                ScheduledTile(wave=wave_index, worker=idx % self.workers, tile=tile)
                for idx, tile in enumerate(tiles)
            ]
            schedule.append(assignments)
        return schedule

    def worker_loads(self) -> list[int]:
        """Number of tiles each worker executes over the whole schedule."""
        loads = [0] * self.workers
        for wave in self.waves():
            for item in wave:
                loads[item.worker] += 1
        return loads

    @property
    def n_waves(self) -> int:
        """Number of barrier-separated waves."""
        return self.decomposition.n_tile_diagonals


def run_schedule(
    waves: Iterable[list[ScheduledTile]],
    tile_fn: Callable[[Tile], object],
    use_threads: bool = False,
    max_workers: int | None = None,
    pool: FuturesExecutor | None = None,
    collect: Callable[[object], None] | None = None,
) -> int:
    """Execute a tile schedule; returns the number of tiles executed.

    Three execution paths share the same wave-barrier structure:

    * ``pool`` — submit every wave's tiles to an existing
      :class:`concurrent.futures.Executor` and barrier on the futures.  This
      is how the multicore backend drives its persistent process pool;
      ``tile_fn`` (and each :class:`~repro.core.tiling.Tile`) must then be
      picklable.
    * ``use_threads`` — same, on a transient thread pool (GIL-bound; kept
      for kernels that release the GIL).
    * default — sequential in schedule order, which is fastest for the small
      grids used in tests because the kernels are NumPy-bound.

    ``collect`` receives each tile's return value (e.g. its cell count) in
    completion order within a wave.
    """
    executed = 0
    if pool is not None:
        for wave in waves:
            futures = [pool.submit(tile_fn, item.tile) for item in wave]
            for future in futures:
                result = future.result()
                if collect is not None:
                    collect(result)
            executed += len(futures)
        return executed

    if not use_threads:
        for wave in waves:
            for item in wave:
                result = tile_fn(item.tile)
                if collect is not None:
                    collect(result)
                executed += 1
        return executed

    with ThreadPoolExecutor(max_workers=max_workers) as thread_pool:
        for wave in waves:
            futures = [thread_pool.submit(tile_fn, item.tile) for item in wave]
            for future in futures:
                result = future.result()
                if collect is not None:
                    collect(result)
            executed += len(futures)
    return executed


class DependencyGraph:
    """Dependency-counted readiness tracking over the tile wavefront.

    Each tile of a :class:`~repro.core.tiling.TileDecomposition` (optionally
    clipped to the cell-diagonal range ``[d_lo, d_hi]``) depends on its west,
    north and north-west neighbour tiles — exactly the cells
    :meth:`~repro.runtime.vectorized.TileSweeper.sweep_tile` reads, which is
    why executing tiles in any retirement-respecting order reproduces the
    barriered sweep bit for bit.  Predecessors that fall outside the clipped
    range contain no cells in ``[d_lo, d_hi]``; their cells precede ``d_lo``
    and are final by the range-sweep precondition, so they are not counted.

    The protocol is ``acquire()`` (pop one ready tile, ``None`` when nothing
    is ready right now) / ``retire(tile)`` (mark complete, releasing any
    successors whose last predecessor this was).  Both ends are strict:
    retiring a tile that was never acquired, or twice, raises
    :class:`~repro.core.exceptions.ExecutionError`.  Readiness order is
    deterministic — the initial ready tile plus FIFO release order — so the
    sequential drain visits tiles in a reproducible order.
    """

    def __init__(
        self,
        decomposition: TileDecomposition,
        d_lo: int | None = None,
        d_hi: int | None = None,
    ) -> None:
        clip = d_lo is not None or d_hi is not None
        lo = 0 if d_lo is None else d_lo
        hi = (decomposition.rows + decomposition.cols - 2) if d_hi is None else d_hi
        self.decomposition = decomposition
        self._tiles: dict[tuple[int, int], Tile] = {}
        for tile in decomposition.all_tiles():
            if not clip or tile_intersects_range(tile, lo, hi):
                self._tiles[(tile.tile_row, tile.tile_col)] = tile
        self._remaining: dict[tuple[int, int], int] = {}
        self._successors: dict[tuple[int, int], list[tuple[int, int]]] = {}
        self._ready: deque[tuple[int, int]] = deque()
        self._acquired: set[tuple[int, int]] = set()
        self._retired: set[tuple[int, int]] = set()
        # Wave order (tile-diagonal, then tile-row) seeds the ready queue so
        # the sequential drain matches the barriered visit order.
        for key in sorted(self._tiles, key=lambda k: (k[0] + k[1], k[0])):
            tr, tc = key
            preds = [
                p
                for p in ((tr - 1, tc), (tr, tc - 1), (tr - 1, tc - 1))
                if p in self._tiles
            ]
            self._remaining[key] = len(preds)
            for p in preds:
                self._successors.setdefault(p, []).append(key)
            if not preds:
                self._ready.append(key)

    @property
    def n_tiles(self) -> int:
        """Total number of tiles tracked (after range clipping)."""
        return len(self._tiles)

    @property
    def done(self) -> bool:
        """True once every tracked tile has been retired."""
        return len(self._retired) == len(self._tiles)

    def ready_count(self) -> int:
        """Number of tiles currently ready to acquire."""
        return len(self._ready)

    def acquire(self) -> Tile | None:
        """Pop one ready tile, or ``None`` when none is ready right now."""
        if not self._ready:
            return None
        key = self._ready.popleft()
        self._acquired.add(key)
        return self._tiles[key]

    def retire(self, tile: Tile) -> list[Tile]:
        """Mark an acquired tile complete; returns the newly-released tiles."""
        key = (tile.tile_row, tile.tile_col)
        if key not in self._acquired:
            raise ExecutionError(
                f"tile {key} retired without being acquired (not tracked or "
                "never handed out)"
            )
        if key in self._retired:
            raise ExecutionError(f"tile {key} retired twice")
        self._retired.add(key)
        released: list[Tile] = []
        for succ in self._successors.get(key, ()):
            self._remaining[succ] -= 1
            if self._remaining[succ] == 0:
                self._ready.append(succ)
                released.append(self._tiles[succ])
        return released


class PipelinedSchedule:
    """Range-clipped :class:`DependencyGraph` factory for one decomposition.

    The dependency-counted counterpart of :class:`TileScheduler`: where the
    scheduler emits barrier-separated waves, this hands out fresh graphs for
    each swept cell-diagonal range and exposes the same aggregate shape
    numbers the cost model reasons about.
    """

    def __init__(self, decomposition: TileDecomposition) -> None:
        self.decomposition = decomposition

    def graph(self, d_lo: int | None = None, d_hi: int | None = None) -> DependencyGraph:
        """A fresh dependency graph clipped to ``[d_lo, d_hi]``."""
        return DependencyGraph(self.decomposition, d_lo, d_hi)

    @property
    def critical_path(self) -> int:
        """Length of the longest dependency chain (the tile-diagonal count)."""
        return self.decomposition.n_tile_diagonals


def run_pipelined(
    graph: DependencyGraph,
    tile_fn: Callable[[Tile], object],
    pool: FuturesExecutor | None = None,
    collect: Callable[[object], None] | None = None,
) -> int:
    """Drain a dependency graph; returns the number of tiles executed.

    With ``pool``, every currently-ready tile is submitted at once and each
    completion immediately retires the tile and submits whatever it released
    — no barrier ever forms, so a straggler in one tile-diagonal only delays
    its own successors.  Without a pool the graph is drained sequentially in
    its deterministic readiness order.  ``collect`` receives each tile's
    return value in completion order.  A graph that stalls with work left
    (nothing ready, nothing in flight, not done) raises
    :class:`~repro.core.exceptions.ExecutionError` rather than hanging.
    """
    executed = 0
    if pool is None:
        tile = graph.acquire()
        while tile is not None:
            result = tile_fn(tile)
            if collect is not None:
                collect(result)
            executed += 1
            graph.retire(tile)
            tile = graph.acquire()
        if not graph.done:
            raise ExecutionError(
                f"pipelined drain starved with {graph.n_tiles - executed} "
                "tiles unexecuted (cyclic or inconsistent dependency graph)"
            )
        return executed

    pending: dict[object, Tile] = {}
    while True:
        tile = graph.acquire()
        while tile is not None:
            pending[pool.submit(tile_fn, tile)] = tile
            tile = graph.acquire()
        if not pending:
            break
        completed, _ = wait(pending, return_when=FIRST_COMPLETED)
        for future in completed:
            done_tile = pending.pop(future)
            result = future.result()
            if collect is not None:
                collect(result)
            executed += 1
            graph.retire(done_tile)
    if not graph.done:
        raise ExecutionError(
            f"pipelined drain starved with {graph.n_tiles - executed} "
            "tiles unexecuted (cyclic or inconsistent dependency graph)"
        )
    return executed
