"""Scheduling of CPU tiles across workers.

The tiled CPU phases execute the tile wavefront: within one tile-diagonal all
tiles are independent and are distributed over the worker pool; tile-diagonals
are separated by a barrier.  :class:`TileScheduler` produces that schedule as
data so both the functional executor and the tests can inspect it, and
:func:`run_schedule` executes it either sequentially or on a thread pool.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.exceptions import InvalidParameterError
from repro.core.tiling import Tile, TileDecomposition


@dataclass(frozen=True)
class ScheduledTile:
    """One tile assignment: which wave it runs in and on which worker."""

    wave: int
    worker: int
    tile: Tile


class TileScheduler:
    """Round-robin assignment of the tile wavefront to ``workers`` workers."""

    def __init__(self, decomposition: TileDecomposition, workers: int) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.decomposition = decomposition
        self.workers = workers

    def waves(self) -> list[list[ScheduledTile]]:
        """The full schedule: one list of assignments per tile-diagonal."""
        schedule: list[list[ScheduledTile]] = []
        for wave_index, tiles in enumerate(self.decomposition.schedule()):
            assignments = [
                ScheduledTile(wave=wave_index, worker=idx % self.workers, tile=tile)
                for idx, tile in enumerate(tiles)
            ]
            schedule.append(assignments)
        return schedule

    def worker_loads(self) -> list[int]:
        """Number of tiles each worker executes over the whole schedule."""
        loads = [0] * self.workers
        for wave in self.waves():
            for item in wave:
                loads[item.worker] += 1
        return loads

    @property
    def n_waves(self) -> int:
        """Number of barrier-separated waves."""
        return self.decomposition.n_tile_diagonals


def run_schedule(
    waves: Iterable[list[ScheduledTile]],
    tile_fn: Callable[[Tile], object],
    use_threads: bool = False,
    max_workers: int | None = None,
) -> int:
    """Execute a tile schedule; returns the number of tiles executed.

    With ``use_threads`` the tiles of each wave are submitted to a thread
    pool (the dependency structure makes them safe to run concurrently);
    otherwise they run sequentially in schedule order, which is faster for
    the small grids used in tests because the kernels are NumPy-bound.
    """
    executed = 0
    if not use_threads:
        for wave in waves:
            for item in wave:
                tile_fn(item.tile)
                executed += 1
        return executed

    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        for wave in waves:
            futures = [pool.submit(tile_fn, item.tile) for item in wave]
            for future in futures:
                future.result()
            executed += len(futures)
    return executed
