"""Scheduling of CPU tiles across workers.

The tiled CPU phases execute the tile wavefront: within one tile-diagonal all
tiles are independent and are distributed over the worker pool; tile-diagonals
are separated by a barrier.  :class:`TileScheduler` produces that schedule as
data so both the functional executors and the tests can inspect it, and
:func:`run_schedule` executes it sequentially, on a thread pool, or on any
persistent :class:`concurrent.futures.Executor` — the multicore backend
(:mod:`repro.runtime.mp_parallel`) passes its worker-process pool so each
wave fans its tiles across real cores with a barrier per tile-diagonal.
"""

from __future__ import annotations

from concurrent.futures import Executor as FuturesExecutor
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.exceptions import InvalidParameterError
from repro.core.tiling import Tile, TileDecomposition


@dataclass(frozen=True)
class ScheduledTile:
    """One tile assignment: which wave it runs in and on which worker."""

    wave: int
    worker: int
    tile: Tile


def tile_intersects_range(tile: Tile, d_lo: int, d_hi: int) -> bool:
    """True when ``tile`` contains at least one cell on diagonals ``[d_lo, d_hi]``.

    A tile's cells span the cell anti-diagonals ``row_start + col_start``
    through ``(row_stop - 1) + (col_stop - 1)`` inclusive.
    """
    first = tile.row_start + tile.col_start
    last = (tile.row_stop - 1) + (tile.col_stop - 1)
    return first <= d_hi and last >= d_lo


class TileScheduler:
    """Round-robin assignment of the tile wavefront to ``workers`` workers."""

    def __init__(self, decomposition: TileDecomposition, workers: int) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.decomposition = decomposition
        self.workers = workers

    def waves(self, d_lo: int | None = None, d_hi: int | None = None) -> list[list[ScheduledTile]]:
        """The full schedule: one list of assignments per tile-diagonal.

        With ``d_lo`` / ``d_hi`` the schedule is clipped to the tiles that
        contain at least one cell on the cell diagonals ``[d_lo, d_hi]`` (the
        hybrid executor's CPU phases sweep such partial ranges); waves left
        empty by the clipping are dropped, so no barrier is paid for them.
        """
        clip = d_lo is not None or d_hi is not None
        lo = 0 if d_lo is None else d_lo
        hi = (self.decomposition.rows + self.decomposition.cols - 2) if d_hi is None else d_hi
        schedule: list[list[ScheduledTile]] = []
        for wave_index, tiles in enumerate(self.decomposition.schedule()):
            if clip:
                tiles = [tile for tile in tiles if tile_intersects_range(tile, lo, hi)]
                if not tiles:
                    continue
            assignments = [
                ScheduledTile(wave=wave_index, worker=idx % self.workers, tile=tile)
                for idx, tile in enumerate(tiles)
            ]
            schedule.append(assignments)
        return schedule

    def worker_loads(self) -> list[int]:
        """Number of tiles each worker executes over the whole schedule."""
        loads = [0] * self.workers
        for wave in self.waves():
            for item in wave:
                loads[item.worker] += 1
        return loads

    @property
    def n_waves(self) -> int:
        """Number of barrier-separated waves."""
        return self.decomposition.n_tile_diagonals


def run_schedule(
    waves: Iterable[list[ScheduledTile]],
    tile_fn: Callable[[Tile], object],
    use_threads: bool = False,
    max_workers: int | None = None,
    pool: FuturesExecutor | None = None,
    collect: Callable[[object], None] | None = None,
) -> int:
    """Execute a tile schedule; returns the number of tiles executed.

    Three execution paths share the same wave-barrier structure:

    * ``pool`` — submit every wave's tiles to an existing
      :class:`concurrent.futures.Executor` and barrier on the futures.  This
      is how the multicore backend drives its persistent process pool;
      ``tile_fn`` (and each :class:`~repro.core.tiling.Tile`) must then be
      picklable.
    * ``use_threads`` — same, on a transient thread pool (GIL-bound; kept
      for kernels that release the GIL).
    * default — sequential in schedule order, which is fastest for the small
      grids used in tests because the kernels are NumPy-bound.

    ``collect`` receives each tile's return value (e.g. its cell count) in
    completion order within a wave.
    """
    executed = 0
    if pool is not None:
        for wave in waves:
            futures = [pool.submit(tile_fn, item.tile) for item in wave]
            for future in futures:
                result = future.result()
                if collect is not None:
                    collect(result)
            executed += len(futures)
        return executed

    if not use_threads:
        for wave in waves:
            for item in wave:
                result = tile_fn(item.tile)
                if collect is not None:
                    collect(result)
                executed += 1
        return executed

    with ThreadPoolExecutor(max_workers=max_workers) as thread_pool:
        for wave in waves:
            futures = [thread_pool.submit(tile_fn, item.tile) for item in wave]
            for future in futures:
                result = future.result()
                if collect is not None:
                    collect(result)
            executed += len(futures)
    return executed
