"""Kernel and work-group abstractions of the simulated OpenCL harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.core.exceptions import DeviceError


@dataclass(frozen=True)
class WorkGroupConfig:
    """Work-group configuration of one kernel launch.

    ``group_size`` corresponds to the paper's ``gpu-tile`` parameter: the
    number of work-items grouped together and synchronised inside the device.
    ``group_size == 1`` means no intra-device tiling (one work-item per
    element, one kernel launch per diagonal).
    """

    group_size: int = 1

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise DeviceError(f"group_size must be >= 1, got {self.group_size}")

    def n_groups(self, global_size: int) -> int:
        """Number of work-groups needed to cover ``global_size`` work-items."""
        if global_size < 0:
            raise DeviceError(f"global_size must be >= 0, got {global_size}")
        if global_size == 0:
            return 0
        return -(-global_size // self.group_size)

    def barriers(self, internal_steps: int) -> int:
        """Intra-group barrier count for a launch spanning ``internal_steps`` diagonals."""
        if internal_steps < 0:
            raise DeviceError(f"internal_steps must be >= 0, got {internal_steps}")
        if self.group_size == 1:
            return 0
        return internal_steps


@dataclass(frozen=True)
class KernelSpec:
    """A device kernel: a host callable applied to a range of work-items.

    The callable receives the 1-D array of global work-item ids plus the
    keyword arguments passed at enqueue time (typically neighbour-value
    arrays) and returns one value per work-item.
    """

    name: str
    func: Callable[..., np.ndarray]

    def run(self, global_ids: np.ndarray, args: Mapping[str, object]) -> np.ndarray:
        """Execute the kernel body for the given work-items."""
        global_ids = np.asarray(global_ids)
        if global_ids.ndim != 1:
            raise DeviceError(
                f"kernel {self.name!r} expects a 1-D range of work-items, "
                f"got shape {global_ids.shape}"
            )
        out = np.asarray(self.func(global_ids, **dict(args)))
        if out.shape != global_ids.shape:
            raise DeviceError(
                f"kernel {self.name!r} returned shape {out.shape} for "
                f"{global_ids.size} work-items"
            )
        return out
