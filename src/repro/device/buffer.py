"""Device-resident buffers of the simulated OpenCL harness."""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import DeviceError


class DeviceBuffer:
    """A named array living in (simulated) device memory.

    Buffers are created through :class:`repro.device.device.SimulatedGPU`
    so that device memory accounting stays correct; they should not be
    constructed directly by application code.
    """

    def __init__(self, name: str, shape: tuple[int, ...], dtype=np.float64, device: int = 0) -> None:
        if any(s < 0 for s in shape):
            raise DeviceError(f"buffer shape must be non-negative, got {shape}")
        self.name = name
        self.device = device
        self._data = np.zeros(shape, dtype=dtype)
        self._written = False
        self._released = False

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the device-resident array."""
        return self._data.shape

    @property
    def dtype(self):
        """Element dtype of the device-resident array."""
        return self._data.dtype

    @property
    def nbytes(self) -> int:
        """Size of the buffer in bytes."""
        return self._data.nbytes

    @property
    def written(self) -> bool:
        """True once the buffer holds data written by the host or a kernel."""
        return self._written

    @property
    def released(self) -> bool:
        """True once the buffer has been released back to the device."""
        return self._released

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self._released:
            raise DeviceError(f"buffer {self.name!r} has been released")

    def write(self, data: np.ndarray) -> int:
        """Copy host ``data`` into the buffer; returns the bytes written."""
        self._check_alive()
        data = np.asarray(data, dtype=self._data.dtype)
        if data.shape != self._data.shape:
            raise DeviceError(
                f"cannot write shape {data.shape} into buffer {self.name!r} "
                f"of shape {self._data.shape}"
            )
        self._data[...] = data
        self._written = True
        return self.nbytes

    def read(self) -> np.ndarray:
        """Copy the buffer back to the host."""
        self._check_alive()
        if not self._written:
            raise DeviceError(
                f"buffer {self.name!r} read before anything was written to it"
            )
        return self._data.copy()

    def view(self) -> np.ndarray:
        """Device-side view used by kernels (no host copy is implied)."""
        self._check_alive()
        return self._data

    def mark_written(self) -> None:
        """Record that a kernel produced this buffer's contents."""
        self._check_alive()
        self._written = True

    def release(self) -> int:
        """Release the buffer; returns the bytes freed."""
        self._check_alive()
        self._released = True
        return self.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self._released else ("written" if self._written else "empty")
        return f"DeviceBuffer({self.name!r}, shape={self.shape}, device={self.device}, {state})"
