"""Simulated OpenCL-like device harness.

The paper drives its GPUs through "our own OpenCL harness" (Section 2).  This
subpackage reproduces that harness functionally: contexts own devices,
devices own buffers, command queues enqueue buffer transfers and kernel
launches, and every operation is recorded in an event log.  Kernels execute
on the host (they are plain Python/NumPy callables), so results are real;
*time* is charged separately by the analytic cost model in
:mod:`repro.hardware.costmodel`, keyed off the operation counts and byte
volumes the event log records.
"""

from repro.device.buffer import DeviceBuffer
from repro.device.events import DeviceEvent, EventLog, EventKind
from repro.device.kernel import KernelSpec, WorkGroupConfig
from repro.device.device import SimulatedGPU
from repro.device.queue import CommandQueue
from repro.device.context import DeviceContext

__all__ = [
    "DeviceBuffer",
    "DeviceEvent",
    "EventLog",
    "EventKind",
    "KernelSpec",
    "WorkGroupConfig",
    "SimulatedGPU",
    "CommandQueue",
    "DeviceContext",
]
