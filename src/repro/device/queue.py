"""Command queues: the host-side handle used to drive one device.

A queue serialises the operations issued to its device, mirroring an
in-order OpenCL command queue.  In this simulation operations complete
eagerly, so :meth:`CommandQueue.finish` only verifies the queue is usable;
it exists so the executor code reads like the real harness would.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import DeviceError
from repro.device.device import SimulatedGPU
from repro.device.kernel import KernelSpec, WorkGroupConfig


class CommandQueue:
    """In-order command queue bound to one :class:`SimulatedGPU`."""

    def __init__(self, device: SimulatedGPU) -> None:
        self.device = device
        self._released = False
        self._ops_enqueued = 0

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self._released:
            raise DeviceError(
                f"command queue for device {self.device.index} has been released"
            )

    @property
    def ops_enqueued(self) -> int:
        """Number of operations issued through this queue."""
        return self._ops_enqueued

    # ------------------------------------------------------------------
    # Enqueue operations
    # ------------------------------------------------------------------
    def enqueue_write(self, buffer_name: str, data: np.ndarray, label: str = "") -> int:
        """Enqueue a host -> device buffer write; returns bytes transferred."""
        self._check_alive()
        self._ops_enqueued += 1
        return self.device.write_buffer(buffer_name, data, label=label)

    def enqueue_read(self, buffer_name: str, label: str = "") -> np.ndarray:
        """Enqueue a device -> host buffer read; returns the host copy."""
        self._check_alive()
        self._ops_enqueued += 1
        return self.device.read_buffer(buffer_name, label=label)

    def enqueue_kernel(
        self,
        kernel: KernelSpec,
        global_size: int,
        args: dict[str, object],
        workgroup: WorkGroupConfig | None = None,
        label: str = "",
    ) -> np.ndarray:
        """Enqueue a kernel launch; returns the kernel's output array."""
        self._check_alive()
        self._ops_enqueued += 1
        return self.device.launch(
            kernel, global_size, args, workgroup=workgroup, label=label
        )

    def finish(self) -> None:
        """Wait for all enqueued operations (a no-op in the eager simulation)."""
        self._check_alive()

    def release(self) -> None:
        """Release the queue; further operations raise :class:`DeviceError`."""
        self._check_alive()
        self._released = True
