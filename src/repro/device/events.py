"""Event log of simulated device operations.

Every buffer transfer, kernel launch and halo staging operation performed
through the device layer is recorded here.  The runtime executors and the
tests use the log to check that the *functional* execution performs exactly
the operations the cost model charges for (same number of kernel launches,
same host<->device byte volumes, same number of halo swaps).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class EventKind(enum.Enum):
    """Kinds of operations the device layer records."""

    H2D = "host_to_device"
    D2H = "device_to_host"
    KERNEL = "kernel_launch"
    HALO_SWAP = "halo_swap"
    DEVICE_INIT = "device_init"


@dataclass(frozen=True)
class DeviceEvent:
    """One recorded device operation."""

    kind: EventKind
    device: int
    nbytes: int = 0
    work_items: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")
        if self.work_items < 0:
            raise ValueError(f"work_items must be >= 0, got {self.work_items}")


class EventLog:
    """Append-only list of :class:`DeviceEvent` with summary accessors."""

    def __init__(self) -> None:
        self._events: list[DeviceEvent] = []

    def record(self, event: DeviceEvent) -> None:
        """Append one event."""
        self._events.append(event)

    def extend(self, other: "EventLog") -> None:
        """Append all events of another log (used when merging per-device logs)."""
        self._events.extend(other._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[DeviceEvent]:
        return iter(self._events)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def count(self, kind: EventKind, device: int | None = None) -> int:
        """Number of events of ``kind`` (optionally restricted to one device)."""
        return sum(
            1
            for e in self._events
            if e.kind is kind and (device is None or e.device == device)
        )

    def bytes_moved(self, kind: EventKind, device: int | None = None) -> int:
        """Total bytes moved by events of ``kind``."""
        return sum(
            e.nbytes
            for e in self._events
            if e.kind is kind and (device is None or e.device == device)
        )

    @property
    def kernel_launches(self) -> int:
        """Total number of kernel launches across all devices."""
        return self.count(EventKind.KERNEL)

    @property
    def halo_swaps(self) -> int:
        """Total number of halo swaps recorded."""
        return self.count(EventKind.HALO_SWAP)

    @property
    def bytes_h2d(self) -> int:
        """Total host-to-device bytes."""
        return self.bytes_moved(EventKind.H2D)

    @property
    def bytes_d2h(self) -> int:
        """Total device-to-host bytes."""
        return self.bytes_moved(EventKind.D2H)

    @property
    def devices_initialised(self) -> int:
        """Number of device initialisation events."""
        return self.count(EventKind.DEVICE_INIT)

    def summary(self) -> dict[str, int]:
        """Flat dictionary summary used in :class:`repro.runtime.result.ExecutionResult`."""
        return {
            "kernel_launches": self.kernel_launches,
            "halo_swaps": self.halo_swaps,
            "bytes_h2d": self.bytes_h2d,
            "bytes_d2h": self.bytes_d2h,
            "devices_initialised": self.devices_initialised,
            "events": len(self._events),
        }
