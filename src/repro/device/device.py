"""The simulated GPU device: memory accounting plus kernel execution."""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import DeviceError
from repro.device.buffer import DeviceBuffer
from repro.device.events import DeviceEvent, EventKind, EventLog
from repro.device.kernel import KernelSpec, WorkGroupConfig
from repro.hardware.gpu import GPUSpec


class SimulatedGPU:
    """One simulated GPU device.

    The device owns buffers (with memory accounting against the device's
    capacity), executes kernels functionally on the host and records every
    operation in the shared :class:`repro.device.events.EventLog`.
    """

    def __init__(self, index: int, spec: GPUSpec, log: EventLog | None = None) -> None:
        if index < 0:
            raise DeviceError(f"device index must be >= 0, got {index}")
        self.index = index
        self.spec = spec
        self.log = log if log is not None else EventLog()
        self._allocated_bytes = 0
        self._buffers: dict[str, DeviceBuffer] = {}
        self._initialised = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialise(self) -> None:
        """Bring the device up (the paper's costly GPU start-up step)."""
        if self._initialised:
            return
        self._initialised = True
        self.log.record(
            DeviceEvent(kind=EventKind.DEVICE_INIT, device=self.index, label=self.spec.name)
        )

    @property
    def initialised(self) -> bool:
        """True once the simulated device has been initialised."""
        return self._initialised

    def _check_initialised(self) -> None:
        if not self._initialised:
            raise DeviceError(
                f"device {self.index} ({self.spec.name}) used before initialise()"
            )

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        """Bytes currently allocated on the device."""
        return self._allocated_bytes

    @property
    def free_bytes(self) -> int:
        """Remaining device memory."""
        return self.spec.mem_bytes - self._allocated_bytes

    def create_buffer(
        self, name: str, shape: tuple[int, ...], dtype=np.float64
    ) -> DeviceBuffer:
        """Allocate a named buffer on this device."""
        self._check_initialised()
        if name in self._buffers and not self._buffers[name].released:
            raise DeviceError(f"buffer {name!r} already exists on device {self.index}")
        buf = DeviceBuffer(name=name, shape=shape, dtype=dtype, device=self.index)
        if buf.nbytes > self.free_bytes:
            raise DeviceError(
                f"device {self.index} out of memory: requested {buf.nbytes} bytes, "
                f"{self.free_bytes} free"
            )
        self._allocated_bytes += buf.nbytes
        self._buffers[name] = buf
        return buf

    def release_buffer(self, name: str) -> None:
        """Release a buffer and return its memory to the device."""
        try:
            buf = self._buffers[name]
        except KeyError:
            raise DeviceError(f"no buffer named {name!r} on device {self.index}") from None
        if not buf.released:
            self._allocated_bytes -= buf.release()

    def buffer(self, name: str) -> DeviceBuffer:
        """Look up a live buffer by name."""
        try:
            buf = self._buffers[name]
        except KeyError:
            raise DeviceError(f"no buffer named {name!r} on device {self.index}") from None
        if buf.released:
            raise DeviceError(f"buffer {name!r} on device {self.index} has been released")
        return buf

    def release_all(self) -> None:
        """Release every live buffer (end of the GPU phase)."""
        for name, buf in list(self._buffers.items()):
            if not buf.released:
                self.release_buffer(name)

    # ------------------------------------------------------------------
    # Data movement (records events; the queue wraps these)
    # ------------------------------------------------------------------
    def write_buffer(self, name: str, data: np.ndarray, label: str = "") -> int:
        """Host -> device transfer into the named buffer."""
        self._check_initialised()
        nbytes = self.buffer(name).write(data)
        self.log.record(
            DeviceEvent(kind=EventKind.H2D, device=self.index, nbytes=nbytes, label=label)
        )
        return nbytes

    def read_buffer(self, name: str, label: str = "") -> np.ndarray:
        """Device -> host transfer out of the named buffer."""
        self._check_initialised()
        buf = self.buffer(name)
        data = buf.read()
        self.log.record(
            DeviceEvent(
                kind=EventKind.D2H, device=self.index, nbytes=buf.nbytes, label=label
            )
        )
        return data

    # ------------------------------------------------------------------
    # Kernel execution
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: KernelSpec,
        global_size: int,
        args: dict[str, object],
        workgroup: WorkGroupConfig | None = None,
        label: str = "",
    ) -> np.ndarray:
        """Execute ``kernel`` over ``global_size`` work-items and return its output."""
        self._check_initialised()
        if global_size < 1:
            raise DeviceError(f"global_size must be >= 1, got {global_size}")
        workgroup = workgroup or WorkGroupConfig()
        global_ids = np.arange(global_size)
        out = kernel.run(global_ids, args)
        self.log.record(
            DeviceEvent(
                kind=EventKind.KERNEL,
                device=self.index,
                work_items=global_size,
                label=label or kernel.name,
            )
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedGPU(index={self.index}, spec={self.spec.name!r})"
