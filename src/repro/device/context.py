"""Device contexts: the host's view of the GPUs it will drive.

A :class:`DeviceContext` owns one :class:`SimulatedGPU` per physical device
it was created for, a command queue per device and a shared event log.  The
runtime's band executors create a context for the devices the configuration
selects (``gpu_count``), which is where the per-device start-up cost of the
paper comes from.
"""

from __future__ import annotations

from repro.core.exceptions import DeviceError
from repro.device.device import SimulatedGPU
from repro.device.events import EventLog
from repro.device.queue import CommandQueue
from repro.hardware.system import SystemSpec


class DeviceContext:
    """A set of simulated devices, their queues and a shared event log."""

    def __init__(self, system: SystemSpec, gpu_count: int) -> None:
        if gpu_count < 1:
            raise DeviceError(f"gpu_count must be >= 1, got {gpu_count}")
        if gpu_count > system.gpu_count:
            raise DeviceError(
                f"system {system.name!r} has {system.gpu_count} GPUs, "
                f"{gpu_count} requested"
            )
        self.system = system
        self.log = EventLog()
        self.devices: list[SimulatedGPU] = [
            SimulatedGPU(index=i, spec=system.gpu(i), log=self.log)
            for i in range(gpu_count)
        ]
        self.queues: list[CommandQueue] = []
        self._released = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "DeviceContext":
        self.initialise()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # ------------------------------------------------------------------
    @property
    def gpu_count(self) -> int:
        """Number of devices in the context."""
        return len(self.devices)

    def initialise(self) -> None:
        """Initialise every device and create its command queue."""
        if self._released:
            raise DeviceError("context has been released")
        if self.queues:
            return
        for device in self.devices:
            device.initialise()
            self.queues.append(CommandQueue(device))

    def queue(self, index: int = 0) -> CommandQueue:
        """The command queue of device ``index``."""
        if not self.queues:
            raise DeviceError("context not initialised; call initialise() first")
        if index < 0 or index >= len(self.queues):
            raise DeviceError(
                f"device index {index} out of range for context with "
                f"{len(self.queues)} devices"
            )
        return self.queues[index]

    def device(self, index: int = 0) -> SimulatedGPU:
        """The device at ``index``."""
        if index < 0 or index >= len(self.devices):
            raise DeviceError(
                f"device index {index} out of range for context with "
                f"{len(self.devices)} devices"
            )
        return self.devices[index]

    def release(self) -> None:
        """Release all queues and device buffers."""
        if self._released:
            return
        for queue in self.queues:
            queue.release()
        for device in self.devices:
            device.release_all()
        self._released = True

    @property
    def released(self) -> bool:
        """True once the context's resources have been released."""
        return self._released
