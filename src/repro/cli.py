"""Command-line interface to the autotuning framework.

Every verb is a thin adapter over :class:`repro.session.Session` — the CLI
contains no tuner or backend construction of its own, so anything it does
can be reproduced programmatically with a few session calls.  The five
workflow verbs:

* ``repro-tune run --app lcs --dim 256`` — plan one application instance
  through the session's tuner and execute it (``--plan-out`` saves the
  resolved plan as JSON, ``--replay`` executes a previously saved plan);
* ``repro-tune tune --system i7-3820 --app nash-equilibrium --dim 1900`` —
  resolve and print the tuned plan without executing (optionally
  saving/loading the trained model so training happens only once);
  ``--system local`` answers from the *measured* model produced by
  ``profile``;
* ``repro-tune bench --dim 512`` — functionally execute every registered
  executor x application pair through manual session plans, print the
  wall-clock speedup table and write the raw measurements as JSON under
  ``benchmarks/results/``;
* ``repro-tune profile`` — time the live CPU backends on this machine,
  train a tuner on the measured wall-clocks, and write the profile, the
  model and the predicted-vs-measured report (``--quick`` keeps it within
  a CI-friendly budget);
* ``repro-tune report`` — render analysis reports: the Figure 5 band/halo
  heatmaps of an exhaustive sweep (``--kind heatmap``) or the Figure 7
  predicted-vs-measured summary of the local profile (``--kind measured``).

Two serving verbs build on the ``repro.server`` subsystem:

* ``repro-tune serve --port 8077 --system local`` — warm the session's
  tuner and serve it over a stdlib HTTP/JSON endpoint with a bounded
  request queue (backpressure), a coalescing batch scheduler and a
  ``GET /metrics`` page; shuts down gracefully on SIGINT/SIGTERM or
  ``POST /shutdown``, draining the queue and releasing worker pools;
* ``repro-tune loadgen --url http://127.0.0.1:8077`` — drive a serving
  endpoint (or an in-process server) with a deterministic mixed workload,
  verify every answer bit-exactly against in-process solving, and write a
  throughput/latency JSON artifact under ``benchmarks/results/`` that
  ``scripts/check_serve.py`` gates in CI.

Two auxiliary verbs: ``systems`` lists the Table 4 platforms plus the
introspected local host, and ``sweep`` survives as a deprecated alias of
``report --kind heatmap``.

Error handling is centralised in :func:`main`: every
:class:`repro.core.exceptions.ReproError` subclass maps to one exit code
(usage errors 2, missing artifacts 3, other framework errors 1) in exactly
one place.

The same interface is available as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.adaptive import ADAPTIVE_MODES, render_adaptive_report
from repro.analysis.heatmap import build_heatmap
from repro.analysis.report import render_heatmap
from repro.apps.registry import available_applications
from repro.autotuner.measured import (
    DEFAULT_MODEL_PATH,
    DEFAULT_PROFILE_PATH,
    DEFAULT_REPORT_PATH,
)
from repro.core.exceptions import (
    ArtifactError,
    RegistryError,
    ReproError,
    UsageError,
)
from repro.core.parameter_space import ParameterSpace
from repro.core.params import TunableParams
from repro.facade.plan import load_plan, save_plan
from repro.facade.policy import ExecutionPolicy
from repro.facade.tuners import TUNER_KINDS
from repro.hardware import platforms
from repro.server.loadgen import DEFAULT_MIX
from repro.session import Session
from repro.utils.logging import configure_logging
from repro.version import __version__

#: Default location of the bench JSON output, relative to the working dir.
DEFAULT_BENCH_DIR = Path("benchmarks") / "results"

#: Exit codes of :func:`main`'s central error mapping.
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_ARTIFACT = 3


def _space(name: str) -> ParameterSpace:
    spaces = {
        "paper": ParameterSpace.paper,
        "reduced": ParameterSpace.reduced,
        "tiny": ParameterSpace.tiny,
    }
    try:
        return spaces[name]()
    except KeyError:
        raise UsageError(
            f"unknown parameter space {name!r}; choose from {sorted(spaces)}"
        ) from None


def _add_system_arg(parser: argparse.ArgumentParser, default: str, local: bool) -> None:
    choices = sorted(platforms.SYSTEMS_BY_NAME) + (["local"] if local else [])
    parser.add_argument("--system", default=default, choices=choices)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description="Autotune wavefront applications for CPU + multi-GPU systems "
        "(reproduction of Mohanty & Cole, PMAM 2014).",
        epilog="Run 'repro-tune <command> --help' for per-command usage examples.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument("--verbose", action="store_true", help="enable debug logging")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "systems",
        help="list the built-in Table 4 systems and the local host",
        description="List the three Table 4 platforms with their CPU, GPU and "
        "interconnect characteristics, plus the introspected local host.",
        epilog="example:\n  repro-tune systems",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )

    run = sub.add_parser(
        "run",
        help="plan one application instance through the session and execute it",
        description="Build a Session, resolve a tuned (or explicitly pinned) "
        "plan for one application instance, and execute it.  The resolved "
        "plan is inspectable and can be saved with --plan-out and replayed "
        "later with --replay.",
        epilog="examples:\n"
        "  repro-tune run --app lcs --dim 256\n"
        "  repro-tune run --app synthetic --dim 128 --tuner exhaustive --mode simulate\n"
        "  repro-tune run --app lcs --dim 128 --backend mp-parallel --workers 2\n"
        "  repro-tune run --app lcs --dim 256 --plan-out plan.json\n"
        "  repro-tune run --replay plan.json --verify",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_system_arg(run, "local", local=True)
    run.add_argument("--app", default=None, choices=available_applications())
    run.add_argument("--dim", type=int, default=None, help="problem size (grid side length)")
    run.add_argument(
        "--tuner",
        default="learned",
        choices=TUNER_KINDS,
        help="tuning strategy resolving the plan (default: learned)",
    )
    run.add_argument("--space", default="reduced", choices=("paper", "reduced", "tiny"))
    run.add_argument(
        "--mode",
        default="functional",
        choices=("functional", "simulate"),
        help="really compute the grid, or evaluate the cost model only",
    )
    run.add_argument("--backend", default=None, help="pin an executor strategy (bypasses the tuner)")
    run.add_argument("--workers", type=int, default=None, help="worker processes for multicore backends")
    run.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent result cache directory (identical requests are "
        "served content-addressed instead of re-solved)",
    )
    run.add_argument("--plan-out", type=Path, default=None, help="save the resolved plan as JSON")
    run.add_argument("--replay", type=Path, default=None, help="execute a previously saved plan")
    run.add_argument(
        "--verify",
        action="store_true",
        help="also run the serial reference and compare grids (functional mode)",
    )

    tune = sub.add_parser(
        "tune",
        help="train (or load) the tuner and plan one application instance",
        description="Resolve the tuned plan for one application instance "
        "through a Session without executing it.  The learned tuner trains "
        "on the synthetic sweep (or loads a previously saved model); with "
        "--system local the measured model produced by 'repro-tune profile' "
        "is loaded instead and answers come from real wall-clocks.",
        epilog="examples:\n"
        "  repro-tune tune --system i7-3820 --app nash-equilibrium --dim 1900\n"
        "  repro-tune tune --system i7-2600K --app synthetic --tsize 750 --dsize 4\n"
        "  repro-tune tune --save-model model.json   # train once, reuse later\n"
        "  repro-tune tune --load-model model.json --app lcs --dim 2700\n"
        "  repro-tune tune --system local --app lcs --dim 512   # measured model",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_system_arg(tune, "i7-2600K", local=True)
    tune.add_argument(
        "--profile-file",
        type=Path,
        default=None,
        help="measured profile JSON for --system local "
        f"(default: {DEFAULT_PROFILE_PATH})",
    )
    tune.add_argument("--space", default="reduced", choices=("paper", "reduced", "tiny"))
    tune.add_argument("--app", default="synthetic", choices=available_applications())
    tune.add_argument("--dim", type=int, default=1900, help="problem size (grid side length)")
    tune.add_argument("--tsize", type=float, default=None, help="override the app's task granularity (synthetic only)")
    tune.add_argument("--dsize", type=int, default=None, help="override the app's data granularity (synthetic only)")
    tune.add_argument("--save-model", type=Path, default=None, help="save the trained models as JSON")
    tune.add_argument("--load-model", type=Path, default=None, help="load previously trained models instead of training")

    bench = sub.add_parser(
        "bench",
        help="time every executor x application pair (functional mode)",
        description="Functionally execute every registered executor on every "
        "registered application through explicit session plans, verify each "
        "grid against the serial reference, print the wall-clock speedup "
        "table and write the raw timings as JSON.",
        epilog="examples:\n"
        "  repro-tune bench --dim 512\n"
        "  repro-tune bench --dim 256 --apps synthetic,lcs --executors serial,vectorized\n"
        "  repro-tune bench --dim 512 --repeats 5 --out benchmarks/results/engine_bench.json",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_system_arg(bench, "i7-2600K", local=False)
    bench.add_argument("--dim", type=int, default=256, help="grid side length for every pair")
    bench.add_argument(
        "--apps",
        default="all",
        help="comma-separated application names, or 'all' (default)",
    )
    bench.add_argument(
        "--executors",
        default="all",
        help="comma-separated executor names, or 'all' (default)",
    )
    bench.add_argument("--repeats", type=int, default=3, help="timed repetitions per pair (best is kept)")
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the mp-parallel backend (default: "
        "auto-detect, with a single-core fallback when fewer than two "
        "cores are available)",
    )
    bench.add_argument(
        "--out",
        type=Path,
        default=None,
        help=f"JSON output path (default: {DEFAULT_BENCH_DIR}/bench_<system>_<dim>.json)",
    )

    profile = sub.add_parser(
        "profile",
        help="measure the live CPU backends on this host and train a tuner",
        description="Introspect this machine, run timed functional sweeps of "
        "the registered CPU backends over an instance grid, train the tuner "
        "on the measured wall-clocks, and write the profile JSON, the trained "
        "model and the Figure 7-style predicted-vs-measured report.  The "
        "result is what 'repro-tune tune --system local' deploys.",
        epilog="examples:\n"
        "  repro-tune profile --quick      # CI / 1-core budget (< 60 s)\n"
        "  repro-tune profile --repeats 5\n"
        "  repro-tune profile --apps lcs,synthetic --dims 128,512",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    profile.add_argument(
        "--quick",
        action="store_true",
        help="small instance grid + tight time budget (for CI and slow hosts)",
    )
    profile.add_argument(
        "--apps", default=None, help="comma-separated application names to profile"
    )
    profile.add_argument(
        "--dims", default=None, help="comma-separated grid side lengths to profile"
    )
    profile.add_argument(
        "--repeats", type=int, default=None, help="timed repetitions per point (best kept)"
    )
    profile.add_argument(
        "--budget-s", type=float, default=None, help="wall-clock budget for the sweep"
    )
    profile.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_PROFILE_PATH,
        help=f"profile JSON output path (default: {DEFAULT_PROFILE_PATH})",
    )
    profile.add_argument(
        "--model-out",
        type=Path,
        default=DEFAULT_MODEL_PATH,
        help=f"trained tuner output path (default: {DEFAULT_MODEL_PATH})",
    )
    profile.add_argument(
        "--report-out",
        type=Path,
        default=DEFAULT_REPORT_PATH,
        help=f"predicted-vs-measured report path (default: {DEFAULT_REPORT_PATH})",
    )

    report = sub.add_parser(
        "report",
        help="render analysis reports (Figure 5 heatmaps, measured summary)",
        description="Render analysis reports through the session: "
        "--kind heatmap sweeps the synthetic application exhaustively and "
        "prints the Figure 5 band/halo heatmaps; --kind measured re-renders "
        "the Figure 7-style predicted-vs-measured report from the artifacts "
        "'repro-tune profile' wrote.",
        epilog="examples:\n"
        "  repro-tune report --system i7-2600K\n"
        "  repro-tune report --system i7-3820 --space paper --dsize 5\n"
        "  repro-tune report --kind measured",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_report_args(report)

    serve = sub.add_parser(
        "serve",
        help="serve tuned wavefront solving over a concurrent HTTP endpoint",
        description="Build a Session, warm its tuner, and serve it through "
        "the repro.server subsystem: a bounded request queue with explicit "
        "backpressure (HTTP 429 on overflow), a coalescing scheduler "
        "collapsing same-signature requests into single executions, and "
        "a JSON metrics page.  Shuts down gracefully on SIGINT/SIGTERM or "
        "POST /shutdown: the queue drains, worker pools are released, and "
        "the final metrics snapshot is printed (and saved with "
        "--metrics-out).",
        epilog="examples:\n"
        "  repro-tune serve --system i3-540 --space tiny --port 8077\n"
        "  repro-tune serve --system local --tuner measured --queue-size 256\n"
        "  repro-tune serve --port 0 --ready-file /tmp/serve.addr  # CI/tests\n"
        "\nendpoints:  POST /solve  GET /metrics  GET /healthz  POST /shutdown",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_system_arg(serve, "local", local=True)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8077, help="bind port (0 picks a free port)"
    )
    serve.add_argument(
        "--tuner",
        default="learned",
        choices=TUNER_KINDS,
        help="tuning strategy answering the plans (default: learned)",
    )
    serve.add_argument("--space", default="tiny", choices=("paper", "reduced", "tiny"))
    serve.add_argument("--mode", default="functional", choices=("functional", "simulate"))
    serve.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="admission-control bound; overflow answers HTTP 429 (default: 64)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=8,
        help="max same-signature requests coalesced per solve_many (default: 8)",
    )
    serve.add_argument(
        "--server-workers",
        type=int,
        default=1,
        help="scheduler worker threads (default: 1)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=120.0,
        help="seconds an HTTP handler waits for a deadline-less result "
        "(default: 120)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="supervised worker shards, each hosting its own session "
        "(default: 1, an in-thread shard sharing the server session)",
    )
    serve.add_argument(
        "--default-deadline",
        type=float,
        default=30.0,
        help="per-request deadline in seconds when the client sends none; "
        "expired requests answer HTTP 504 (0 disables; default: 30)",
    )
    serve.add_argument(
        "--degraded-fallback",
        action="store_true",
        help="when every shard is unavailable, solve directly in-process "
        "instead of shedding load with 429",
    )
    serve.add_argument(
        "--chaos",
        default=None,
        help="deterministic fault plan 'kind@k[:seconds],...' with kinds "
        "kill/slow/hang/drop, e.g. 'kill@7,slow@18:0.2,drop@47' (testing)",
    )
    serve.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent result cache directory; repeated functional "
        "requests are answered memory -> disk -> solve and /metrics gains "
        "a cache section",
    )
    serve.add_argument(
        "--adaptive",
        default="shadow",
        choices=ADAPTIVE_MODES,
        help="online adaptive tuning: 'shadow' (default) observes live "
        "latencies, detects plan-vs-reality drift and logs would-be plan "
        "swaps without changing behaviour; 'live' additionally promotes "
        "them to rollback-guarded plan swaps; 'off' disables the loop",
    )
    serve.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the final metrics snapshot JSON here at shutdown",
    )
    serve.add_argument(
        "--ready-file",
        type=Path,
        default=None,
        help="write 'host:port' here once the endpoint is bound (for CI)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a serving endpoint with a mixed workload; write the artifact",
        description="Generate closed-loop (default) or open-loop (--rate) "
        "load against a 'repro serve' endpoint (--url) or an in-process "
        "server (no --url), verify every answer bit-exactly against "
        "in-process Session.solve, and write a throughput/latency JSON "
        "artifact.  The --system/--tuner/--space flags describe the serving "
        "session so the verification reference resolves identical plans; "
        "they must match the target server's configuration.",
        epilog="examples:\n"
        "  repro-tune loadgen --url http://127.0.0.1:8077 --system i3-540 --space tiny\n"
        "  repro-tune loadgen --requests 60 --clients 4   # in-process server\n"
        "  repro-tune loadgen --rate 50 --requests 200    # open loop, 50 req/s\n"
        "  repro-tune loadgen --mix lcs:128,knapsack:96 --out /tmp/load.json",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_system_arg(loadgen, "local", local=True)
    loadgen.add_argument(
        "--url",
        default=None,
        help="target endpoint base URL; omitted = drive an in-process server",
    )
    loadgen.add_argument(
        "--tuner", default="learned", choices=TUNER_KINDS,
        help="tuner of the reference (and in-process) session",
    )
    loadgen.add_argument("--space", default="tiny", choices=("paper", "reduced", "tiny"))
    loadgen.add_argument("--mode", default="functional", choices=("functional", "simulate"))
    loadgen.add_argument(
        "--mix",
        default=DEFAULT_MIX,
        help=f"request cycle as app:dim,app:dim,... (default: {DEFAULT_MIX})",
    )
    loadgen.add_argument("--requests", type=int, default=60, help="total requests to issue")
    loadgen.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    loadgen.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop aggregate arrival rate in req/s (default: closed loop)",
    )
    loadgen.add_argument(
        "--timeout", type=float, default=120.0, help="per-request timeout in seconds"
    )
    loadgen.add_argument(
        "--retries",
        type=int,
        default=3,
        help="max jittered-backoff retries of a backpressured (429) "
        "request before recording it rejected (default: 3)",
    )
    loadgen.add_argument(
        "--retry-base",
        type=float,
        default=0.05,
        help="base of the exponential retry backoff in seconds (default: 0.05)",
    )
    loadgen.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request deadline in seconds sent with every request; "
        "504 answers are counted as deadline_expired (default: none)",
    )
    loadgen.add_argument(
        "--queue-size", type=int, default=64, help="in-process server queue bound"
    )
    loadgen.add_argument(
        "--max-batch", type=int, default=8, help="in-process server batch bound"
    )
    loadgen.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the bit-exact verification against in-process solving "
        "(completed requests are then counted as skipped_verification)",
    )
    loadgen.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent result cache directory of the in-process server "
        "(the verification reference always solves uncached)",
    )
    loadgen.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="replay a recorded request trace bit-exactly (overrides "
        "--mix/--requests/--rate ordering)",
    )
    loadgen.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="record the generated request trace as versioned JSON for "
        "later --trace replay",
    )
    loadgen.add_argument(
        "--seed",
        type=int,
        default=None,
        help="generate a seeded Zipf-skewed trace instead of cycling --mix "
        "round-robin (implied by --trace-out)",
    )
    loadgen.add_argument(
        "--zipf",
        type=float,
        default=1.1,
        help="Zipf skew exponent of the generated trace's popularity "
        "distribution; 0 = uniform (default: 1.1)",
    )
    loadgen.add_argument(
        "--burst",
        type=float,
        default=1.0,
        help="burstiness of generated open-loop arrivals: 1 = Poisson, "
        "larger = clumpier at the same mean --rate (default: 1)",
    )
    loadgen.add_argument(
        "--out",
        type=Path,
        default=None,
        help=f"artifact path (default: {DEFAULT_BENCH_DIR}/serve_loadgen.json)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="deprecated alias of 'report --kind heatmap'",
        description="Deprecated alias of 'report --kind heatmap' (kept for "
        "pre-session scripts).",
    )
    _add_report_args(sweep)
    return parser


def _add_report_args(parser: argparse.ArgumentParser) -> None:
    """Shared arguments of the ``report`` verb and its ``sweep`` alias."""
    parser.add_argument(
        "--kind",
        default="heatmap",
        choices=("heatmap", "measured", "adaptive"),
        help="which report to render (default: heatmap)",
    )
    _add_system_arg(parser, "i7-2600K", local=False)
    parser.add_argument("--space", default="reduced", choices=("paper", "reduced", "tiny"))
    parser.add_argument("--dsize", type=int, default=1, help="element payload size slice to report")
    parser.add_argument(
        "--profile-file",
        type=Path,
        default=DEFAULT_PROFILE_PATH,
        help="measured profile JSON for --kind measured",
    )
    parser.add_argument(
        "--model-file",
        type=Path,
        default=DEFAULT_MODEL_PATH,
        help="trained measured model for --kind measured",
    )
    parser.add_argument(
        "--metrics-file",
        type=Path,
        default=DEFAULT_BENCH_DIR / "serve_metrics.json",
        help="metrics snapshot (serve --metrics-out) or loadgen artifact "
        "for --kind adaptive",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the measured report here instead of a temporary rendering",
    )


# ----------------------------------------------------------------------
# Verb implementations (each a thin adapter over the Session facade)
# ----------------------------------------------------------------------
def cmd_systems(args: argparse.Namespace) -> int:
    """The ``systems`` verb: list the Table 4 platforms and the local host."""
    for system in platforms.ALL_SYSTEMS:
        print(system.describe())
        print()
    print(platforms.resolve_system("local").describe())
    print("  (introspected host — target of 'repro-tune profile' / '--system local')")
    return EXIT_OK


def _session_for(args: argparse.Namespace, tuner: str | None = None) -> Session:
    """Build the session behind one CLI invocation."""
    return Session(
        system=args.system,
        tuner=tuner if tuner is not None else getattr(args, "tuner", "learned"),
        space=_space(args.space) if hasattr(args, "space") else None,
        model_path=getattr(args, "load_model", None),
        profile_path=getattr(args, "profile_file", None),
        cache_dir=getattr(args, "cache_dir", None),
    )


def cmd_run(args: argparse.Namespace) -> int:
    """The ``run`` verb: plan through the session, execute, report."""
    if args.replay is None and args.app is None:
        raise UsageError("run needs --app (or --replay with a saved plan)")
    with _session_for(args) as session:
        if args.replay is not None:
            plan = load_plan(args.replay)
            print(f"replaying plan from {args.replay}")
        else:
            policy_kwargs: dict = {}
            if args.backend is not None:
                if args.dim is None:
                    raise UsageError("--backend needs an explicit --dim")
                tunables = _bench_tunables(
                    args.backend, args.dim, session.system.max_usable_gpus
                )
                if tunables is None:
                    raise UsageError(
                        f"backend {args.backend!r} cannot run on system "
                        f"{session.system.name!r}"
                    )
                policy_kwargs["backend"] = args.backend
                policy_kwargs["tunables"] = tunables
            if args.workers is not None:
                policy_kwargs["workers"] = args.workers
            plan = session.plan(
                args.app, args.dim, policy=ExecutionPolicy(**policy_kwargs)
            )
        print(f"plan: {plan.describe()}")
        if args.plan_out is not None:
            save_plan(plan, args.plan_out)
            print(f"wrote plan to {args.plan_out}")

        result = session.run(plan, mode=args.mode)
        print(
            f"executed: mode={result.mode}, rtime={result.rtime:.6f}s, "
            f"wall={result.wall_time:.6f}s"
        )
        if result.grid is not None:
            print(f"answer cell: {result.value:.6g}  (checksum {result.checksum:.6g})")
        if args.verify:
            if result.grid is None:
                raise UsageError("--verify needs --mode functional")
            reference = session.solve(
                plan.app,
                plan.dim,
                policy=ExecutionPolicy(backend="serial"),
                mode="functional",
                **plan.app_options,
            )
            ok = result.matches(reference)
            print(f"serial verification: {'OK' if ok else 'MISMATCH'}")
            if not ok:
                return EXIT_ERROR
    return EXIT_OK


def cmd_tune_local(args: argparse.Namespace) -> int:
    """The measured-model deployment path (``tune --system local``)."""
    if args.save_model is not None:
        print("note: --save-model is ignored with --system local (nothing is trained)")
    session = _session_for(args, tuner="measured")
    with session:
        tuner = session.tuner  # raises ArtifactError when artifacts are missing
        profile_path = args.profile_file or DEFAULT_PROFILE_PATH
        model_path = args.load_model or DEFAULT_MODEL_PATH
        print(f"loaded measured profile {profile_path} ({len(tuner.profile)} records)")
        print(f"loaded measured model   {model_path}")

        overrides = _synthetic_overrides(args)
        plan = session.plan(args.app, args.dim, **overrides)
        params = plan.params
        print(
            f"\napplication: {args.app}  "
            f"(dim={params.dim}, tsize={params.tsize:g}, dsize={params.dsize})"
        )
        print(f"tuned plan: {plan.describe()}")
        anchor = tuner.nearest_instance(params, args.app)
        if anchor != params:
            print(
                f"  (nearest profiled instance: dim={anchor.dim}, "
                f"tsize={anchor.tsize:g}, dsize={anchor.dsize})"
            )
        serial = tuner.profile.serial_time(anchor, app=args.app)
        print(
            f"measured serial reference: {serial * 1e3:.2f} ms "
            f"({serial / plan.expected_s:.1f}x speedup expected)"
        )
    return EXIT_OK


def _synthetic_overrides(args: argparse.Namespace) -> dict:
    """--tsize/--dsize overrides (honoured for the synthetic app only)."""
    overrides: dict = {}
    if args.app == "synthetic":
        if args.tsize is not None:
            overrides["tsize"] = args.tsize
        if args.dsize is not None:
            overrides["dsize"] = args.dsize
    return overrides


def cmd_tune(args: argparse.Namespace) -> int:
    """The ``tune`` verb: resolve and print a tuned plan (no execution)."""
    if args.system == "local":
        return cmd_tune_local(args)
    session = _session_for(args, tuner="learned")
    with session:
        if args.load_model is not None:
            tuner = session.tuner
            print(f"loaded trained models from {args.load_model}")
        else:
            print(f"training the autotuner for {session.system.name} ...")
            tuner = session.tuner
            if tuner.validation is not None:
                print(
                    f"  held-out efficiency: mean {tuner.validation.mean_efficiency:.1%}, "
                    f"min {tuner.validation.min_efficiency:.1%}"
                )
            if args.save_model is not None:
                session.save_model(args.save_model)
                print(f"  saved trained models to {args.save_model}")

        plan = session.plan(args.app, args.dim, **_synthetic_overrides(args))
        params = plan.params
        print(
            f"\napplication: {plan.app}  "
            f"(dim={params.dim}, tsize={params.tsize:g}, dsize={params.dsize})"
        )
        strategy, engine = plan.split()
        print(
            f"tuned configuration: {plan.tunables.describe()}  [cpu engine: {engine}]"
        )
        serial = tuner.cost_model.baseline_serial(params)
        print(
            f"predicted runtime: {plan.expected_s:.3f}s  "
            f"(serial baseline {serial:.3f}s, {serial / plan.expected_s:.1f}x speedup)"
        )
    return EXIT_OK


def _bench_tunables(executor: str, dim: int, max_gpus: int) -> TunableParams | None:
    """Default configuration each executor is benchmarked under.

    Returns ``None`` when the executor cannot run on the system (e.g. the
    dual-GPU band executor on a single-GPU platform).
    """
    if executor in ("serial", "vectorized"):
        return TunableParams()
    if executor == "cpu-parallel":
        return TunableParams(cpu_tile=8)
    if executor in ("mp-parallel", "pipelined"):
        # Coarse tiles amortise the per-tile pool dispatch while still
        # exposing enough tile-parallelism across a wave (barriered or not).
        return TunableParams(cpu_tile=max(32, dim // 8))
    if executor == "compiled":
        return TunableParams()
    if executor == "gpu-only-single":
        if max_gpus < 1:
            return None
        return TunableParams.from_encoding(cpu_tile=1, band=dim - 1, halo=-1, gpu_tile=8)
    if executor == "gpu-only-multi":
        if max_gpus < 2:
            return None
        return TunableParams.from_encoding(cpu_tile=1, band=dim - 1, halo=0, gpu_tile=8)
    if executor == "hybrid":
        if max_gpus < 1:
            return TunableParams(cpu_tile=8)
        return TunableParams.from_encoding(cpu_tile=8, band=dim // 3, halo=-1, gpu_tile=8)
    return TunableParams()


def cmd_bench(args: argparse.Namespace) -> int:
    """The ``bench`` verb: wall-clock the executor x application grid."""
    # Enumeration only — construction happens inside the session.
    from repro.runtime.registry import available_executors

    app_names = (
        available_applications() if args.apps == "all" else args.apps.split(",")
    )
    executor_names = (
        available_executors() if args.executors == "all" else args.executors.split(",")
    )
    if args.repeats < 1:
        raise UsageError("--repeats must be >= 1")
    unknown = set(app_names) - set(available_applications())
    if unknown:
        raise UsageError(f"unknown applications: {sorted(unknown)}")
    unknown = set(executor_names) - set(available_executors())
    if unknown:
        raise UsageError(f"unknown executors: {sorted(unknown)}")
    if "serial" in executor_names:
        # The serial reference must run first so every later executor can be
        # verified against its grid and reported as a speedup over it.
        executor_names = ["serial"] + [n for n in executor_names if n != "serial"]

    session = Session(system=args.system, mode="functional")
    system = session.system
    records = []
    print(
        f"bench: {len(app_names)} applications x {len(executor_names)} executors, "
        f"dim={args.dim}, system={system.name}, repeats={args.repeats}\n"
    )
    header = f"{'application':<20} {'executor':<18} {'best wall [s]':>13} {'vs serial':>10}  ok"
    print(header)
    print("-" * len(header))
    with session:
        for app_name in app_names:
            reference = None
            serial_best = None
            for executor_name in executor_names:
                tunables = _bench_tunables(executor_name, args.dim, system.max_usable_gpus)
                if tunables is None:
                    continue
                policy_kwargs: dict = {
                    "backend": executor_name,
                    "tunables": tunables,
                }
                if executor_name == "hybrid":
                    # The paper's tiled serial CPU phases (the historical
                    # bench configuration), not the session's default engine.
                    policy_kwargs["engine"] = "serial"
                if (
                    executor_name in ("mp-parallel", "pipelined")
                    and args.workers is not None
                ):
                    policy_kwargs["workers"] = args.workers
                plan = session.plan(
                    app_name, args.dim, policy=ExecutionPolicy(**policy_kwargs)
                )
                walls = []
                result = None
                for _ in range(args.repeats):
                    t0 = time.perf_counter()
                    result = session.run(plan)
                    walls.append(time.perf_counter() - t0)
                best = min(walls)
                if executor_name == "serial":
                    reference = result.grid
                    serial_best = best
                matches = bool(reference.allclose(result.grid)) if reference is not None else None
                speedup = serial_best / best if serial_best else None
                records.append(
                    {
                        "application": app_name,
                        "executor": executor_name,
                        "dim": args.dim,
                        "wall_s_best": best,
                        "wall_s_all": walls,
                        "rtime_s": result.rtime,
                        "cells": plan.params.cells,
                        "speedup_vs_serial": speedup,
                        "matches_serial": matches,
                        "workers": result.stats.get("workers"),
                    }
                )
                speedup_text = f"{speedup:9.2f}x" if speedup else f"{'n/a':>10}"
                ok_text = {True: "yes", False: "NO", None: "-"}[matches]
                print(
                    f"{app_name:<20} {executor_name:<18} {best:13.6f} {speedup_text}  {ok_text}"
                )
    mismatches = [r for r in records if r["matches_serial"] is False]

    out = args.out
    if out is None:
        out = DEFAULT_BENCH_DIR / f"bench_{system.name}_{args.dim}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "meta": {
            "system": system.name,
            "dim": args.dim,
            "repeats": args.repeats,
            "python": sys.version.split()[0],
            "executors": executor_names,
            "applications": app_names,
            "note": "wall-clock functional execution; serial is the reference "
            "implementation every other grid is verified against",
        },
        "results": records,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {len(records)} measurements to {out}")
    if mismatches:
        print(f"ERROR: {len(mismatches)} executor results did not match the serial reference")
        return EXIT_ERROR
    return EXIT_OK


def cmd_profile(args: argparse.Namespace) -> int:
    """The ``profile`` verb: measure, train, persist, report."""
    from dataclasses import replace

    from repro.analysis.measured import write_measured_report
    from repro.autotuner.measured import ProfileConfig, save_profile
    from repro.autotuner.persistence import save_tuner

    config = ProfileConfig.quick() if args.quick else ProfileConfig()
    overrides = {}
    if args.apps is not None:
        overrides["apps"] = tuple(args.apps.split(","))
    if args.dims is not None:
        overrides["dims"] = tuple(int(d) for d in args.dims.split(","))
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.budget_s is not None:
        overrides["budget_s"] = args.budget_s
    if overrides:
        config = replace(config, **overrides)

    with Session(system="local") as session:
        system = session.system
        print(system.describe())
        print(
            f"\nprofiling {len(config.apps)} applications x {len(config.dims)} dims "
            f"on {len(config.backends)} backends "
            f"(repeats={config.repeats}, budget={config.budget_s:g}s) ...\n"
        )
        profile = session.profile(config, progress=print)
        save_profile(profile, args.out)
        print(f"\nwrote {len(profile)} measured records to {args.out}")

        tuner = session.train_measured(profile)
        save_tuner(tuner.model, args.model_out)
        print(f"wrote trained measured tuner to {args.model_out}")

        report_path = write_measured_report(args.report_out, profile, tuner, system)
        print(f"wrote predicted-vs-measured report to {report_path}\n")
        print(report_path.read_text(encoding="utf-8"))
    return EXIT_OK


def cmd_report(args: argparse.Namespace, deprecated_alias: bool = False) -> int:
    """The ``report`` verb: render the heatmap or measured report."""
    if deprecated_alias:
        print(
            "note: 'sweep' is deprecated; use 'repro-tune report --kind heatmap'\n",
            file=sys.stderr,
        )
    if args.kind == "measured":
        return _report_measured(args)
    if args.kind == "adaptive":
        return _report_adaptive(args)
    with Session(system=args.system, tuner="exhaustive") as session:
        results = session.sweep(_space(args.space))
        print(
            f"{len(results)} configuration points over "
            f"{len(results.instances())} instances\n"
        )
        print(render_heatmap(build_heatmap(results, dsize=args.dsize, quantity="band")))
        if session.system.max_usable_gpus >= 2:
            print()
            print(render_heatmap(build_heatmap(results, dsize=args.dsize, quantity="halo")))
    return EXIT_OK


def _report_measured(args: argparse.Namespace) -> int:
    """Re-render the predicted-vs-measured report from persisted artifacts."""
    import tempfile

    from repro.analysis.measured import write_measured_report
    from repro.facade.tuners import make_tuner

    if args.system != "i7-2600K":  # a non-default --system was requested
        print(
            "note: --kind measured always renders the local host's profile; "
            f"--system {args.system} is ignored",
            file=sys.stderr,
        )
    with Session(system="local") as session:
        tuner = make_tuner(
            "measured",
            session.system,
            model_path=args.model_file,
            profile_path=args.profile_file,
        )
        out = args.out
        if out is None:
            out = Path(tempfile.gettempdir()) / "repro_measured_report.txt"
        report_path = write_measured_report(out, tuner.profile, tuner, session.system)
        print(report_path.read_text(encoding="utf-8"))
        if args.out is not None:
            print(f"wrote predicted-vs-measured report to {report_path}")
    return EXIT_OK


def _report_adaptive(args: argparse.Namespace) -> int:
    """Render the adaptive predicted-vs-observed report from a metrics file.

    Accepts either shape the serving stack writes: a ``/metrics`` snapshot
    (``serve --metrics-out``, adaptive state under ``"adaptive"``) or a
    loadgen artifact (server snapshot under ``"server_metrics"``, with the
    run's counter delta under the artifact's own ``"adaptive"`` key).
    """
    path = args.metrics_file
    if not path.exists():
        raise ArtifactError(
            f"no metrics file at {path}; run 'repro-tune serve --metrics-out "
            f"{path}' or 'repro-tune loadgen --out {path}' first"
        )
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"cannot read metrics file {path}: {exc}") from None
    if "server_metrics" in payload:  # loadgen artifact
        adaptive = (payload.get("server_metrics") or {}).get("adaptive")
        delta = payload.get("adaptive")
    else:  # plain /metrics snapshot
        adaptive = payload.get("adaptive")
        delta = None
    print(f"adaptive report from {path}")
    print(render_adaptive_report(adaptive, delta=delta))
    return EXIT_OK


def cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` verb: expose one session over the HTTP serving layer."""
    import signal
    import threading

    from repro.core.exceptions import ServerError
    from repro.server import FaultPlan, ReproServer, ServerConfig, ServingEndpoint

    fault_plan = FaultPlan.parse(args.chaos)  # UsageError -> exit 2
    session = Session(
        system=args.system,
        tuner=args.tuner,
        space=_space(args.space),
        mode=args.mode,
        cache_dir=args.cache_dir,
    )
    server = None
    try:
        print(f"warming the {args.tuner!r} tuner for {session.system.name} ...")
        session.tuner  # noqa: B018 - train/load before accepting traffic
        session_factory = None
        if args.shards > 1:
            # Each shard hosts its own session but shares the warmed tuner
            # (one training) and the persistent result cache (re-dispatched
            # requests coalesce on its leader/follower keys — at-most-once).
            def session_factory(index: int) -> Session:
                return Session(
                    system=session.system,
                    tuner=session.tuner,
                    space=_space(args.space),
                    mode=args.mode,
                    result_cache=session.result_cache,
                )

        # Built after the warm-up so the metrics uptime clock (the
        # denominator of throughput_rps) starts when serving can, not when
        # training did.
        server = ReproServer(
            session,
            ServerConfig(
                queue_capacity=args.queue_size,
                max_batch=args.max_batch,
                workers=args.server_workers,
                default_deadline_s=(
                    args.default_deadline if args.default_deadline > 0 else None
                ),
                shards=args.shards,
                degraded_fallback=args.degraded_fallback,
                adaptive=args.adaptive,
            ),
            own_session=True,
            session_factory=session_factory,
            fault_plan=fault_plan,
        )
        try:
            endpoint = ServingEndpoint(
                server,
                args.host,
                args.port,
                request_timeout_s=args.request_timeout,
                log=print if args.verbose else None,
            )
        except OSError as exc:
            raise ServerError(
                f"cannot bind {args.host}:{args.port}: {exc}"
            ) from None
        host, port = endpoint.address
        if args.ready_file is not None:
            args.ready_file.parent.mkdir(parents=True, exist_ok=True)
            args.ready_file.write_text(f"{host}:{port}\n", encoding="utf-8")
        if threading.current_thread() is threading.main_thread():
            # SIGINT/SIGTERM begin the same graceful drain as POST /shutdown.
            for signum in (signal.SIGINT, signal.SIGTERM):
                signal.signal(signum, lambda *_: endpoint.begin_shutdown())
        print(
            f"serving {session.system.name} on {endpoint.url}  "
            f"(queue={args.queue_size}, max-batch={args.max_batch}, "
            f"workers={args.server_workers}, shards={args.shards}, "
            f"deadline={args.default_deadline:g}s, mode={args.mode}, "
            f"adaptive={args.adaptive})"
        )
        if len(fault_plan):
            print(f"chaos plan armed: {fault_plan.describe()}")
        print(
            "endpoints: POST /solve  GET /metrics  GET /healthz  GET /readyz  "
            "POST /shutdown"
        )
        endpoint.serve_forever()
        print("shutdown requested; draining the queue ...")
    finally:
        # Release the session's pools on any exit path — through the server
        # once it exists, directly when warm-up/bind failed before that.
        if server is not None:
            server.close()
        else:
            session.close()
    metrics = server.metrics()
    if args.metrics_out is not None:
        args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
        args.metrics_out.write_text(
            json.dumps(metrics, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote final metrics to {args.metrics_out}")
    requests = metrics["requests"]
    latency = metrics["latency_ms"]
    print(
        f"served {requests['completed']} requests "
        f"({requests['rejected']} rejected, {requests['failed']} failed, "
        f"{requests['deadline_expired']} deadline-expired) at "
        f"{metrics['throughput_rps']:.1f} req/s; "
        f"p50={latency['p50']:.2f}ms p95={latency['p95']:.2f}ms"
    )
    supervisor = metrics.get("supervisor") or {}
    print(
        f"supervisor: {supervisor.get('restarts', 0)} restarts, "
        f"{supervisor.get('redispatches', 0)} redispatches, "
        f"{supervisor.get('faults_injected', 0)} faults injected"
    )
    adaptive = metrics.get("adaptive")
    if adaptive is not None:
        drift = adaptive.get("drift", {})
        swaps = adaptive.get("swaps", {})
        shadow = adaptive.get("shadow", {})
        print(
            f"adaptive ({adaptive.get('mode')}): "
            f"{adaptive.get('observations', 0)} observations, "
            f"{drift.get('events', 0)} drift events, "
            f"{shadow.get('would_swap', 0)} would-swap, "
            f"{swaps.get('applied', 0)} swaps applied "
            f"({swaps.get('rolled_back', 0)} rolled back)"
        )
    return EXIT_OK


def cmd_loadgen(args: argparse.Namespace) -> int:
    """The ``loadgen`` verb: drive a serving target, verify, write artifact."""
    from repro.server import (
        HTTPTarget,
        InProcessTarget,
        LoadgenConfig,
        ReproServer,
        ServerConfig,
        build_reference,
        generate_trace,
        load_trace,
        parse_mix,
        run_loadgen,
        save_trace,
    )

    if args.mode != "functional" and not args.no_verify:
        raise UsageError(
            "--mode simulate produces no grids to verify; pass --no-verify "
            "to load-generate without the bit-exact check"
        )
    if args.trace is not None and args.trace_out is not None:
        raise UsageError("--trace (replay) and --trace-out (record) are exclusive")
    mix = parse_mix(args.mix)
    trace = None
    if args.trace is not None:
        trace = load_trace(args.trace)  # CacheError -> exit 3
        print(f"replaying {trace.describe()}  [{args.trace}]")
        mix = trace.distinct_mix()
    elif args.trace_out is not None or args.seed is not None:
        seed = args.seed if args.seed is not None else 0
        trace = generate_trace(
            mix,
            args.requests,
            seed,
            zipf_s=args.zipf,
            rate_rps=args.rate,
            burst=args.burst,
        )
        print(f"generated {trace.describe()}")
        if args.trace_out is not None:
            save_trace(trace, args.trace_out)
            print(f"wrote trace to {args.trace_out}")
    config = LoadgenConfig(
        mix=mix,
        requests=len(trace) if trace is not None else args.requests,
        clients=args.clients,
        rate_rps=args.rate,
        mode=args.mode,
        timeout_s=args.timeout,
        retries=args.retries,
        retry_base_s=args.retry_base,
        deadline_s=args.deadline,
    )

    def make_session(cache_dir=None) -> Session:
        """One session with the serving configuration of this invocation.

        ``cache_dir`` is only ever passed for the in-process *server*
        session — the verification reference must solve uncached, so a
        cache bug can never vouch for itself.
        """
        return Session(
            system=args.system, tuner=args.tuner, space=_space(args.space),
            mode=args.mode, cache_dir=cache_dir,
        )

    own_server: ReproServer | None = None
    if args.url is not None:
        target: HTTPTarget | InProcessTarget = HTTPTarget(args.url)
    else:
        own_server = ReproServer(
            make_session(cache_dir=args.cache_dir),
            ServerConfig(queue_capacity=args.queue_size, max_batch=args.max_batch),
            own_session=True,
        ).start()
        target = InProcessTarget(own_server)
    print(
        f"loadgen -> {target.describe()}  "
        f"({'open loop @ %g req/s' % args.rate if args.rate else 'closed loop'}, "
        f"{config.requests} requests, {args.clients} clients, "
        f"{'trace' if trace is not None else 'mix ' + args.mix})"
    )
    try:
        reference = None
        if not args.no_verify:
            with make_session() as reference_session:
                reference = build_reference(reference_session, mix, args.mode)
            print(
                f"reference: {len(reference.expected)} distinct instances, "
                f"mean direct solve {reference.mean_solve_ms:.2f} ms"
            )
        payload = run_loadgen(target, config, reference, progress=print, trace=trace)
    finally:
        if own_server is not None:
            own_server.close()

    out = args.out
    if out is None:
        out = DEFAULT_BENCH_DIR / "serve_loadgen.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote loadgen artifact to {out}")

    cache = payload.get("cache")
    if cache is not None:
        print(
            f"cache: {cache['hit_rate']:.1%} hit rate over {cache['lookups']} "
            f"lookups (memory {cache['memory_hits']}, disk {cache['disk_hits']}, "
            f"coalesced {cache['coalesced']}, misses {cache['misses']})"
        )
    adaptive = payload.get("adaptive")
    if adaptive is not None:
        print(
            f"adaptive ({adaptive.get('mode')}): "
            f"{adaptive['observations']} observations, "
            f"{adaptive['drift_events']} drift events, "
            f"{adaptive['would_swap']} would-swap, "
            f"{adaptive['swaps_applied']} swaps applied this run"
        )
    results = payload["results"]
    if results["completed"] == 0:
        print("ERROR: no request completed")
        return EXIT_ERROR
    if results["failed"] or results["mismatches"]:
        print(
            f"ERROR: {results['failed']} failed requests, "
            f"{results['mismatches']} answers not matching in-process solving"
        )
        return EXIT_ERROR
    return EXIT_OK


#: Verb dispatch table (the ``sweep`` alias forwards to ``report``).
_HANDLERS = {
    "systems": cmd_systems,
    "run": cmd_run,
    "tune": cmd_tune,
    "bench": cmd_bench,
    "profile": cmd_profile,
    "report": cmd_report,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
    "sweep": lambda args: cmd_report(args, deprecated_alias=True),
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    This is the single place framework errors become exit codes:
    usage/registry errors exit 2, missing artifacts exit 3, every other
    deliberate :class:`~repro.core.exceptions.ReproError` exits 1.
    """
    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose)
    handler = _HANDLERS.get(args.command)
    if handler is None:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(f"unknown command {args.command!r}")
    try:
        return handler(args)
    except (UsageError, RegistryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ARTIFACT
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
