"""Command-line interface to the autotuning framework.

Three subcommands cover the deployment workflow of the paper:

* ``repro-tune systems`` — list the built-in Table 4 platforms;
* ``repro-tune sweep --system i7-2600K`` — run the exhaustive sweep of the
  synthetic application and print the Figure 5 band heatmap;
* ``repro-tune tune --system i7-3820 --app nash-equilibrium --dim 1900`` —
  train the autotuner and print the tuned parameter settings (optionally
  saving/loading the trained model so training happens only once).

The CLI is intentionally thin: it only wires command-line arguments to the
public library API, so everything it does can also be done programmatically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.heatmap import build_heatmap
from repro.analysis.report import render_heatmap
from repro.apps.registry import available_applications, get_application
from repro.autotuner.exhaustive import ExhaustiveSearch
from repro.autotuner.persistence import load_tuner, save_tuner
from repro.autotuner.tuner import AutoTuner
from repro.core.parameter_space import ParameterSpace
from repro.hardware import platforms
from repro.utils.logging import configure_logging


def _space(name: str) -> ParameterSpace:
    spaces = {
        "paper": ParameterSpace.paper,
        "reduced": ParameterSpace.reduced,
        "tiny": ParameterSpace.tiny,
    }
    try:
        return spaces[name]()
    except KeyError:
        raise SystemExit(f"unknown parameter space {name!r}; choose from {sorted(spaces)}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description="Autotune wavefront applications for CPU + multi-GPU systems "
        "(reproduction of Mohanty & Cole, PMAM 2014).",
    )
    parser.add_argument("--verbose", action="store_true", help="enable debug logging")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("systems", help="list the built-in Table 4 systems")

    sweep = sub.add_parser("sweep", help="exhaustive sweep of the synthetic application")
    sweep.add_argument("--system", default="i7-2600K", choices=sorted(platforms.SYSTEMS_BY_NAME))
    sweep.add_argument("--space", default="reduced", choices=("paper", "reduced", "tiny"))
    sweep.add_argument("--dsize", type=int, default=1, help="element payload size slice to report")

    tune = sub.add_parser("tune", help="train (or load) the tuner and tune one application instance")
    tune.add_argument("--system", default="i7-2600K", choices=sorted(platforms.SYSTEMS_BY_NAME))
    tune.add_argument("--space", default="reduced", choices=("paper", "reduced", "tiny"))
    tune.add_argument("--app", default="synthetic", choices=available_applications())
    tune.add_argument("--dim", type=int, default=1900, help="problem size (grid side length)")
    tune.add_argument("--tsize", type=float, default=None, help="override the app's task granularity (synthetic only)")
    tune.add_argument("--dsize", type=int, default=None, help="override the app's data granularity (synthetic only)")
    tune.add_argument("--save-model", type=Path, default=None, help="save the trained models as JSON")
    tune.add_argument("--load-model", type=Path, default=None, help="load previously trained models instead of training")
    return parser


def cmd_systems() -> int:
    for system in platforms.ALL_SYSTEMS:
        print(system.describe())
        print()
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    system = platforms.get_system(args.system)
    results = ExhaustiveSearch(system, _space(args.space)).sweep()
    print(f"{len(results)} configuration points over {len(results.instances())} instances\n")
    print(render_heatmap(build_heatmap(results, dsize=args.dsize, quantity="band")))
    if system.max_usable_gpus >= 2:
        print()
        print(render_heatmap(build_heatmap(results, dsize=args.dsize, quantity="halo")))
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    system = platforms.get_system(args.system)
    tuner = AutoTuner(system, space=_space(args.space))
    if args.load_model is not None:
        tuner.model = load_tuner(args.load_model)
        print(f"loaded trained models from {args.load_model}")
    else:
        print(f"training the autotuner for {system.name} ...")
        tuner.train()
        print(
            f"  held-out efficiency: mean {tuner.validation.mean_efficiency:.1%}, "
            f"min {tuner.validation.min_efficiency:.1%}"
        )
        if args.save_model is not None:
            save_tuner(tuner.model, args.save_model)
            print(f"  saved trained models to {args.save_model}")

    app_kwargs = {"dim": args.dim}
    if args.app == "synthetic":
        if args.tsize is not None:
            app_kwargs["tsize"] = args.tsize
        if args.dsize is not None:
            app_kwargs["dsize"] = args.dsize
    app = get_application(args.app, **app_kwargs)
    problem = app.problem(args.dim)
    params = problem.input_params()
    config = tuner.tune(params)
    print(f"\napplication: {problem.name}  (dim={params.dim}, tsize={params.tsize:g}, dsize={params.dsize})")
    print(f"tuned configuration: {config.describe()}")
    rtime = tuner.predicted_rtime(params, config)
    serial = tuner.cost_model.baseline_serial(params)
    print(f"predicted runtime: {rtime:.3f}s  (serial baseline {serial:.3f}s, {serial / rtime:.1f}x speedup)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose)
    if args.command == "systems":
        return cmd_systems()
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "tune":
        return cmd_tune(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
