"""Command-line interface to the autotuning framework.

Five subcommands cover the deployment workflow of the paper plus the
reproduction's own benchmarking and the measured-profile pipeline:

* ``repro-tune systems`` — list the built-in Table 4 platforms (plus the
  introspected ``local`` host);
* ``repro-tune sweep --system i7-2600K`` — run the exhaustive sweep of the
  synthetic application and print the Figure 5 band heatmap;
* ``repro-tune tune --system i7-3820 --app nash-equilibrium --dim 1900`` —
  train the autotuner and print the tuned parameter settings (optionally
  saving/loading the trained model so training happens only once);
  ``--system local`` instead loads the *measured* model produced by
  ``profile`` and answers from real wall-clocks;
* ``repro-tune bench --dim 512`` — functionally execute every registered
  executor x application pair, print the wall-clock speedup table and write
  the raw measurements as JSON under ``benchmarks/results/``;
* ``repro-tune profile`` — time the live CPU backends on this machine, train
  a tuner on the measured wall-clocks, and write the profile, the model and
  the predicted-vs-measured report under ``benchmarks/results/``
  (``--quick`` keeps it within a CI-friendly budget).

The same interface is available as ``python -m repro``.  The CLI is
intentionally thin: it only wires command-line arguments to the public
library API, so everything it does can also be done programmatically.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.heatmap import build_heatmap
from repro.analysis.report import render_heatmap
from repro.apps.registry import available_applications, get_application
from repro.autotuner.exhaustive import ExhaustiveSearch
from repro.autotuner.measured import (
    DEFAULT_MODEL_PATH,
    DEFAULT_PROFILE_PATH,
    DEFAULT_REPORT_PATH,
)
from repro.autotuner.persistence import load_tuner, save_tuner
from repro.autotuner.tuner import AutoTuner
from repro.core.parameter_space import ParameterSpace
from repro.core.params import TunableParams
from repro.hardware import platforms
from repro.utils.logging import configure_logging
from repro.version import __version__

#: Default location of the bench JSON output, relative to the working dir.
DEFAULT_BENCH_DIR = Path("benchmarks") / "results"


def _space(name: str) -> ParameterSpace:
    spaces = {
        "paper": ParameterSpace.paper,
        "reduced": ParameterSpace.reduced,
        "tiny": ParameterSpace.tiny,
    }
    try:
        return spaces[name]()
    except KeyError:
        raise SystemExit(f"unknown parameter space {name!r}; choose from {sorted(spaces)}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description="Autotune wavefront applications for CPU + multi-GPU systems "
        "(reproduction of Mohanty & Cole, PMAM 2014).",
        epilog="Run 'repro-tune <command> --help' for per-command usage examples.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument("--verbose", action="store_true", help="enable debug logging")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "systems",
        help="list the built-in Table 4 systems and the local host",
        description="List the three Table 4 platforms with their CPU, GPU and "
        "interconnect characteristics, plus the introspected local host.",
        epilog="example:\n  repro-tune systems",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )

    sweep = sub.add_parser(
        "sweep",
        help="exhaustive sweep of the synthetic application",
        description="Run the exhaustive (simulate-mode) sweep of the synthetic "
        "application on one platform and print the Figure 5 band/halo heatmaps.",
        epilog="examples:\n"
        "  repro-tune sweep --system i7-2600K\n"
        "  repro-tune sweep --system i7-3820 --space paper --dsize 5",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sweep.add_argument("--system", default="i7-2600K", choices=sorted(platforms.SYSTEMS_BY_NAME))
    sweep.add_argument("--space", default="reduced", choices=("paper", "reduced", "tiny"))
    sweep.add_argument("--dsize", type=int, default=1, help="element payload size slice to report")

    tune = sub.add_parser(
        "tune",
        help="train (or load) the tuner and tune one application instance",
        description="Train the M5P-based autotuner on the synthetic sweep (or "
        "load a previously saved model), then predict tuned parameters for one "
        "application instance and report the expected speedup.  With "
        "--system local the measured model produced by 'repro-tune profile' "
        "is loaded instead and answers come from real wall-clocks.",
        epilog="examples:\n"
        "  repro-tune tune --system i7-3820 --app nash-equilibrium --dim 1900\n"
        "  repro-tune tune --system i7-2600K --app synthetic --tsize 750 --dsize 4\n"
        "  repro-tune tune --save-model model.json   # train once, reuse later\n"
        "  repro-tune tune --load-model model.json --app lcs --dim 2700\n"
        "  repro-tune tune --system local --app lcs --dim 512   # measured model",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    tune.add_argument(
        "--system",
        default="i7-2600K",
        choices=sorted(platforms.SYSTEMS_BY_NAME) + ["local"],
    )
    tune.add_argument(
        "--profile-file",
        type=Path,
        default=None,
        help="measured profile JSON for --system local "
        f"(default: {DEFAULT_PROFILE_PATH})",
    )
    tune.add_argument("--space", default="reduced", choices=("paper", "reduced", "tiny"))
    tune.add_argument("--app", default="synthetic", choices=available_applications())
    tune.add_argument("--dim", type=int, default=1900, help="problem size (grid side length)")
    tune.add_argument("--tsize", type=float, default=None, help="override the app's task granularity (synthetic only)")
    tune.add_argument("--dsize", type=int, default=None, help="override the app's data granularity (synthetic only)")
    tune.add_argument("--save-model", type=Path, default=None, help="save the trained models as JSON")
    tune.add_argument("--load-model", type=Path, default=None, help="load previously trained models instead of training")

    bench = sub.add_parser(
        "bench",
        help="time every executor x application pair (functional mode)",
        description="Functionally execute every registered executor on every "
        "registered application, verify each grid against the serial reference, "
        "print the wall-clock speedup table and write the raw timings as JSON.",
        epilog="examples:\n"
        "  repro-tune bench --dim 512\n"
        "  repro-tune bench --dim 256 --apps synthetic,lcs --executors serial,vectorized\n"
        "  repro-tune bench --dim 512 --repeats 5 --out benchmarks/results/engine_bench.json",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    bench.add_argument("--system", default="i7-2600K", choices=sorted(platforms.SYSTEMS_BY_NAME))
    bench.add_argument("--dim", type=int, default=256, help="grid side length for every pair")
    bench.add_argument(
        "--apps",
        default="all",
        help="comma-separated application names, or 'all' (default)",
    )
    bench.add_argument(
        "--executors",
        default="all",
        help="comma-separated executor names, or 'all' (default)",
    )
    bench.add_argument("--repeats", type=int, default=3, help="timed repetitions per pair (best is kept)")
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the mp-parallel backend (default: "
        "auto-detect, with a single-core fallback when fewer than two "
        "cores are available)",
    )
    bench.add_argument(
        "--out",
        type=Path,
        default=None,
        help=f"JSON output path (default: {DEFAULT_BENCH_DIR}/bench_<system>_<dim>.json)",
    )

    profile = sub.add_parser(
        "profile",
        help="measure the live CPU backends on this host and train a tuner",
        description="Introspect this machine, run timed functional sweeps of "
        "the registered CPU backends over an instance grid, train the tuner "
        "on the measured wall-clocks, and write the profile JSON, the trained "
        "model and the Figure 7-style predicted-vs-measured report.  The "
        "result is what 'repro-tune tune --system local' deploys.",
        epilog="examples:\n"
        "  repro-tune profile --quick      # CI / 1-core budget (< 60 s)\n"
        "  repro-tune profile --repeats 5\n"
        "  repro-tune profile --apps lcs,synthetic --dims 128,512",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    profile.add_argument(
        "--quick",
        action="store_true",
        help="small instance grid + tight time budget (for CI and slow hosts)",
    )
    profile.add_argument(
        "--apps", default=None, help="comma-separated application names to profile"
    )
    profile.add_argument(
        "--dims", default=None, help="comma-separated grid side lengths to profile"
    )
    profile.add_argument(
        "--repeats", type=int, default=None, help="timed repetitions per point (best kept)"
    )
    profile.add_argument(
        "--budget-s", type=float, default=None, help="wall-clock budget for the sweep"
    )
    profile.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_PROFILE_PATH,
        help=f"profile JSON output path (default: {DEFAULT_PROFILE_PATH})",
    )
    profile.add_argument(
        "--model-out",
        type=Path,
        default=DEFAULT_MODEL_PATH,
        help=f"trained tuner output path (default: {DEFAULT_MODEL_PATH})",
    )
    profile.add_argument(
        "--report-out",
        type=Path,
        default=DEFAULT_REPORT_PATH,
        help=f"predicted-vs-measured report path (default: {DEFAULT_REPORT_PATH})",
    )
    return parser


def cmd_systems() -> int:
    """The ``systems`` verb: list the Table 4 platforms and the local host."""
    for system in platforms.ALL_SYSTEMS:
        print(system.describe())
        print()
    print(platforms.resolve_system("local").describe())
    print("  (introspected host — target of 'repro-tune profile' / '--system local')")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """The ``sweep`` verb: exhaustive simulate-mode sweep + Figure 5 heatmaps."""
    system = platforms.get_system(args.system)
    results = ExhaustiveSearch(system, _space(args.space)).sweep()
    print(f"{len(results)} configuration points over {len(results.instances())} instances\n")
    print(render_heatmap(build_heatmap(results, dsize=args.dsize, quantity="band")))
    if system.max_usable_gpus >= 2:
        print()
        print(render_heatmap(build_heatmap(results, dsize=args.dsize, quantity="halo")))
    return 0


def cmd_tune_local(args: argparse.Namespace) -> int:
    """The measured-model deployment path (``tune --system local``)."""
    from repro.autotuner.measured import MeasuredTuner

    if args.save_model is not None:
        print("note: --save-model is ignored with --system local (nothing is trained)")
    profile_path = args.profile_file or DEFAULT_PROFILE_PATH
    model_path = args.load_model or DEFAULT_MODEL_PATH
    try:
        tuner = MeasuredTuner.from_files(profile_path, model_path)
    except FileNotFoundError as exc:
        raise SystemExit(
            f"missing measured artifact ({exc.filename}); run 'repro-tune profile' first"
        )
    print(f"loaded measured profile {profile_path} ({len(tuner.profile)} records)")
    print(f"loaded measured model   {model_path}")

    # --tsize/--dsize override the synthetic app's granularity, exactly as in
    # the simulated-system path.
    overrides = {}
    if args.app == "synthetic":
        if args.tsize is not None:
            overrides["tsize"] = args.tsize
        if args.dsize is not None:
            overrides["dsize"] = args.dsize
    plan = tuner.tune(args.app, args.dim, **overrides)
    params = get_application(args.app, dim=args.dim, **overrides).input_params(args.dim)
    print(
        f"\napplication: {args.app}  "
        f"(dim={params.dim}, tsize={params.tsize:g}, dsize={params.dsize})"
    )
    print(f"tuned plan: {plan.describe()}")
    anchor = tuner.nearest_instance(params, args.app)
    if anchor != params:
        print(
            f"  (nearest profiled instance: dim={anchor.dim}, "
            f"tsize={anchor.tsize:g}, dsize={anchor.dsize})"
        )
    serial = tuner.profile.serial_time(anchor, app=args.app)
    print(
        f"measured serial reference: {serial * 1e3:.2f} ms "
        f"({serial / plan.expected_s:.1f}x speedup expected)"
    )
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    """The ``tune`` verb: simulated Table 4 systems or the measured local host."""
    if args.system == "local":
        return cmd_tune_local(args)
    system = platforms.get_system(args.system)
    tuner = AutoTuner(system, space=_space(args.space))
    if args.load_model is not None:
        tuner.model = load_tuner(args.load_model)
        print(f"loaded trained models from {args.load_model}")
    else:
        print(f"training the autotuner for {system.name} ...")
        tuner.train()
        print(
            f"  held-out efficiency: mean {tuner.validation.mean_efficiency:.1%}, "
            f"min {tuner.validation.min_efficiency:.1%}"
        )
        if args.save_model is not None:
            save_tuner(tuner.model, args.save_model)
            print(f"  saved trained models to {args.save_model}")

    app_kwargs = {"dim": args.dim}
    if args.app == "synthetic":
        if args.tsize is not None:
            app_kwargs["tsize"] = args.tsize
        if args.dsize is not None:
            app_kwargs["dsize"] = args.dsize
    app = get_application(args.app, **app_kwargs)
    problem = app.problem(args.dim)
    params = problem.input_params()
    config = tuner.tune(params)
    engine = tuner.select_engine(params)
    print(f"\napplication: {problem.name}  (dim={params.dim}, tsize={params.tsize:g}, dsize={params.dsize})")
    print(f"tuned configuration: {config.describe()}  [cpu engine: {engine}]")
    rtime = tuner.predicted_rtime(params, config)
    serial = tuner.cost_model.baseline_serial(params)
    print(f"predicted runtime: {rtime:.3f}s  (serial baseline {serial:.3f}s, {serial / rtime:.1f}x speedup)")
    return 0


def _bench_tunables(executor: str, dim: int, max_gpus: int) -> TunableParams | None:
    """Default configuration each executor is benchmarked under.

    Returns ``None`` when the executor cannot run on the system (e.g. the
    dual-GPU band executor on a single-GPU platform).
    """
    if executor in ("serial", "vectorized"):
        return TunableParams()
    if executor == "cpu-parallel":
        return TunableParams(cpu_tile=8)
    if executor == "mp-parallel":
        # Coarse tiles amortise the per-tile pool dispatch while still
        # exposing enough tile-parallelism across a wave.
        return TunableParams(cpu_tile=max(32, dim // 8))
    if executor == "gpu-only-single":
        if max_gpus < 1:
            return None
        return TunableParams.from_encoding(cpu_tile=1, band=dim - 1, halo=-1, gpu_tile=8)
    if executor == "gpu-only-multi":
        if max_gpus < 2:
            return None
        return TunableParams.from_encoding(cpu_tile=1, band=dim - 1, halo=0, gpu_tile=8)
    if executor == "hybrid":
        if max_gpus < 1:
            return TunableParams(cpu_tile=8)
        return TunableParams.from_encoding(cpu_tile=8, band=dim // 3, halo=-1, gpu_tile=8)
    return TunableParams()


def cmd_bench(args: argparse.Namespace) -> int:
    """The ``bench`` verb: wall-clock the executor x application grid."""
    # Imported here so `repro-tune --help` stays snappy.
    from repro.runtime.registry import available_executors, get_executor

    system = platforms.get_system(args.system)
    app_names = (
        available_applications() if args.apps == "all" else args.apps.split(",")
    )
    executor_names = (
        available_executors() if args.executors == "all" else args.executors.split(",")
    )
    if args.repeats < 1:
        raise SystemExit("--repeats must be >= 1")
    unknown = set(app_names) - set(available_applications())
    if unknown:
        raise SystemExit(f"unknown applications: {sorted(unknown)}")
    unknown = set(executor_names) - set(available_executors())
    if unknown:
        raise SystemExit(f"unknown executors: {sorted(unknown)}")
    if "serial" in executor_names:
        # The serial reference must run first so every later executor can be
        # verified against its grid and reported as a speedup over it.
        executor_names = ["serial"] + [n for n in executor_names if n != "serial"]

    records = []
    print(
        f"bench: {len(app_names)} applications x {len(executor_names)} executors, "
        f"dim={args.dim}, system={system.name}, repeats={args.repeats}\n"
    )
    header = f"{'application':<20} {'executor':<18} {'best wall [s]':>13} {'vs serial':>10}  ok"
    print(header)
    print("-" * len(header))
    for app_name in app_names:
        app = get_application(app_name, dim=args.dim)
        problem = app.problem(args.dim)
        reference = None
        serial_best = None
        for executor_name in executor_names:
            tunables = _bench_tunables(executor_name, args.dim, system.max_usable_gpus)
            if tunables is None:
                continue
            kwargs = {}
            if executor_name == "mp-parallel" and args.workers is not None:
                kwargs["workers"] = args.workers
            executor = get_executor(executor_name, system, **kwargs)
            walls = []
            result = None
            for _ in range(args.repeats):
                t0 = time.perf_counter()
                result = executor.execute(problem, tunables, mode="functional")
                walls.append(time.perf_counter() - t0)
            best = min(walls)
            if executor_name == "serial":
                reference = result.grid
                serial_best = best
            matches = bool(reference.allclose(result.grid)) if reference is not None else None
            speedup = serial_best / best if serial_best else None
            records.append(
                {
                    "application": app_name,
                    "executor": executor_name,
                    "dim": args.dim,
                    "wall_s_best": best,
                    "wall_s_all": walls,
                    "rtime_s": result.rtime,
                    "cells": problem.input_params().cells,
                    "speedup_vs_serial": speedup,
                    "matches_serial": matches,
                    "workers": result.stats.get("workers"),
                }
            )
            speedup_text = f"{speedup:9.2f}x" if speedup else f"{'n/a':>10}"
            ok_text = {True: "yes", False: "NO", None: "-"}[matches]
            print(
                f"{app_name:<20} {executor_name:<18} {best:13.6f} {speedup_text}  {ok_text}"
            )
    mismatches = [r for r in records if r["matches_serial"] is False]

    out = args.out
    if out is None:
        out = DEFAULT_BENCH_DIR / f"bench_{system.name}_{args.dim}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "meta": {
            "system": system.name,
            "dim": args.dim,
            "repeats": args.repeats,
            "python": sys.version.split()[0],
            "executors": executor_names,
            "applications": app_names,
            "note": "wall-clock functional execution; serial is the reference "
            "implementation every other grid is verified against",
        },
        "results": records,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {len(records)} measurements to {out}")
    if mismatches:
        print(f"ERROR: {len(mismatches)} executor results did not match the serial reference")
        return 1
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """The ``profile`` verb: measure, train, persist, report."""
    from dataclasses import replace

    from repro.analysis.measured import write_measured_report
    from repro.autotuner.measured import MeasuredTuner, ProfileConfig, profile_host, save_profile

    config = ProfileConfig.quick() if args.quick else ProfileConfig()
    overrides = {}
    if args.apps is not None:
        overrides["apps"] = tuple(args.apps.split(","))
    if args.dims is not None:
        overrides["dims"] = tuple(int(d) for d in args.dims.split(","))
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.budget_s is not None:
        overrides["budget_s"] = args.budget_s
    if overrides:
        config = replace(config, **overrides)

    system = platforms.resolve_system("local")
    print(system.describe())
    print(
        f"\nprofiling {len(config.apps)} applications x {len(config.dims)} dims "
        f"on {len(config.backends)} backends "
        f"(repeats={config.repeats}, budget={config.budget_s:g}s) ...\n"
    )
    profile = profile_host(system, config, progress=print)
    save_profile(profile, args.out)
    print(f"\nwrote {len(profile)} measured records to {args.out}")

    tuner = MeasuredTuner.train(profile)
    save_tuner(tuner.model, args.model_out)
    print(f"wrote trained measured tuner to {args.model_out}")

    report_path = write_measured_report(args.report_out, profile, tuner, system)
    print(f"wrote predicted-vs-measured report to {report_path}\n")
    print(report_path.read_text(encoding="utf-8"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose)
    if args.command == "systems":
        return cmd_systems()
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "tune":
        return cmd_tune(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "profile":
        return cmd_profile(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
