"""``repro.session`` — the one high-level entry point of the framework.

The paper's promise is "write the kernel once, the autotuner picks the
plan".  :class:`Session` delivers that promise as a single object instead of
hand-wired app constructors, tuner classes and backend registries:

>>> from repro import Session
>>> with Session(system="i7-2600K", tuner="learned") as session:
...     plan = session.plan("lcs", 256)        # inspectable, serialisable
...     result = session.run(plan)             # executes the plan
...     result = session.solve("lcs", 256)     # plan + run in one call

Design points:

* **Plan/execute separation** — :meth:`Session.plan` returns a
  :class:`repro.facade.plan.ResolvedPlan` that can be inspected, saved as
  JSON (:func:`repro.facade.plan.save_plan`) and replayed later by
  :meth:`Session.run`; nothing executes until asked.
* **One tuner protocol** — any :class:`repro.autotuner.protocol.Tuner`
  (``"learned"``, ``"measured"``, ``"exhaustive"`` or a custom instance)
  plugs in unchanged; the session never looks past
  :meth:`~repro.autotuner.protocol.Tuner.resolve`.
* **Batched serving** — :meth:`Session.solve_many` answers streams of
  requests out of the tuned-plan cache, the problem/engine cache and the
  persistent worker pools of :class:`repro.runtime.lifecycle.EngineHost`,
  instead of re-tuning and re-spawning per request.
* **Bounded state** — every cache is an LRU with a size configured by
  ``cache_size``, so a session serving millions of requests holds a
  constant amount of memory and worker processes.
* **Persistent results** — with ``cache_dir`` set, functional
  :meth:`Session.solve`/:meth:`Session.solve_many` answers are served from
  a content-addressed :class:`repro.cache.ResultCache` (memory LRU → disk
  → solve): identical requests across time, threads and processes cost one
  grid sweep, and concurrent misses on one key are stampede-protected.

The CLI's workflow verbs (``run``, ``tune``, ``bench``, ``profile``,
``report``, ``serve``, ``loadgen``) are thin adapters over this class (the
serving verbs through :class:`repro.server.ReproServer`, which shares one
thread-safe session across its workers); the historical
:func:`repro.autotuner.tuner.autotune_and_run` helper survives as a
deprecated shim delegating here.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Any, Callable, Iterable, Mapping

from repro.apps.base import WavefrontApplication
from repro.apps.registry import resolve_application
from repro.autotuner.protocol import PlanDecision, Tuner
from repro.cache import ResultCache, request_key
from repro.core.exceptions import CacheError, DeadlineError, UsageError
from repro.core.params import TunableParams
from repro.core.parameter_space import ParameterSpace
from repro.core.pattern import WavefrontProblem
from repro.facade.plan import ResolvedPlan
from repro.facade.policy import ExecutionPolicy
from repro.facade.tuners import make_tuner
from repro.hardware.costmodel import CostConstants
from repro.hardware.platforms import resolve_system
from repro.hardware.system import SystemSpec
from repro.runtime.executor_base import ExecutionMode
from repro.runtime.lifecycle import EngineHost
from repro.runtime.result import ExecutionResult
from repro.utils.lru import LRUCache

#: Default bound of the session's plan and problem caches.
DEFAULT_CACHE_SIZE = 128


class Session:
    """One facade for planning, executing and serving wavefront workloads.

    ``system`` is a Table 4 platform name, ``"local"`` (the introspected
    host) or a ready :class:`~repro.hardware.system.SystemSpec`; ``tuner``
    is a strategy name understood by :func:`repro.facade.tuners.make_tuner`
    or any :class:`~repro.autotuner.protocol.Tuner` instance.  The tuner is
    built lazily on first use, so sessions serving only explicit plans
    (e.g. the benchmark driver) never pay for training.

    ``mode`` is the default execution mode (``"functional"`` really
    computes, ``"simulate"`` evaluates the cost model only);
    ``cache_size`` bounds the tuned-plan and problem/engine caches;
    ``workers`` — when set — overrides every plan's worker count (useful to
    force or forbid multiprocessing).  ``cache_dir`` — when set — roots a
    persistent content-addressed result cache consulted by :meth:`solve` /
    :meth:`solve_many` for functional registry-name requests (pass a ready
    :class:`repro.cache.ResultCache` as ``result_cache`` to control its
    bounds); a directory written under an incompatible cache format raises
    :class:`repro.core.exceptions.CacheError` here, at construction.  Close
    the session (or use it as a context manager) to shut down its worker
    pools deterministically.

    **Thread safety.**  One session may be shared by many threads (the
    serving layer, :class:`repro.server.ReproServer`, does exactly that):
    planning runs under a plan lock — so the tuner is built once and N
    concurrent requests for one signature cost one resolution — and
    execution runs under a run lock, so the stateful runtime resources
    (borrowed worker pools, shared-memory grids) are never entered
    concurrently.  Executions therefore serialise per session; concurrent
    throughput comes from batching (:meth:`solve_many` and the server's
    coalescing scheduler), not from overlapping grid sweeps.
    """

    def __init__(
        self,
        system: str | SystemSpec = "local",
        tuner: str | Tuner = "learned",
        *,
        space: ParameterSpace | None = None,
        constants: CostConstants | None = None,
        mode: ExecutionMode | str = ExecutionMode.FUNCTIONAL,
        cache_size: int = DEFAULT_CACHE_SIZE,
        workers: int | None = None,
        model_path=None,
        profile_path=None,
        max_pools: int | None = None,
        cache_dir=None,
        result_cache: ResultCache | None = None,
    ) -> None:
        self.system = (
            system if isinstance(system, SystemSpec) else resolve_system(system)
        )
        self.mode = ExecutionMode.coerce(mode)
        self.space = space
        if constants is None and isinstance(tuner, Tuner):
            # A ready tuner may carry calibrated cost constants; executing
            # with the same constants keeps plan estimates and simulate-mode
            # results consistent with the strategy that produced them.
            constants = getattr(tuner, "constants", None)
        self.constants = constants
        self.workers = workers
        self.cache_size = int(cache_size)
        self.model_path = model_path
        self.profile_path = profile_path
        self._tuner_spec: str | Tuner = tuner
        self._tuner: Tuner | None = tuner if isinstance(tuner, Tuner) else None
        host_kwargs: dict[str, int] = {}
        if max_pools is not None:
            host_kwargs["max_pools"] = max_pools
        self.host = EngineHost(self.system, constants, **host_kwargs)
        #: Content-addressed persistent result tier (None = disabled).
        self.result_cache: ResultCache | None = result_cache
        if self.result_cache is None and cache_dir is not None:
            self.result_cache = ResultCache(cache_dir)
        self._plans: LRUCache = LRUCache(self.cache_size)
        self._problems: LRUCache = LRUCache(self.cache_size)
        # Reentrant so plan() may build the tuner (and close() may drain
        # both) under one acquisition; plan lock and run lock are only ever
        # taken in that order, never nested the other way round.
        self._plan_lock = threading.RLock()
        self._run_lock = threading.RLock()
        self._closed = False
        #: Run observer (``observer(plan, mode, wall_s)``) — see
        #: :meth:`attach_observer`; ``None`` = no observation.
        self._observer: Callable[[ResolvedPlan, ExecutionMode, float], None] | None = None
        #: Request counters surfaced by :meth:`cache_info`.
        self.stats: dict[str, int] = {
            "plans_resolved": 0,
            "runs": 0,
            "requests_served": 0,
            "plans_adopted": 0,
        }

    # ------------------------------------------------------------------
    # Tuner lifecycle
    # ------------------------------------------------------------------
    @property
    def tuner(self) -> Tuner:
        """The session's tuning strategy, built (and trained) on first use.

        Construction happens under the plan lock, so concurrent first
        touches train exactly one tuner.
        """
        if self._tuner is None:
            with self._plan_lock:
                if self._tuner is None:
                    self._tuner = make_tuner(
                        self._tuner_spec,
                        self.system,
                        space=self.space,
                        constants=self.constants,
                        model_path=self.model_path,
                        profile_path=self.profile_path,
                        plan_cache_size=self.cache_size,
                    )
        return self._tuner

    @property
    def tuner_ready(self) -> bool:
        """True once the tuner has been built (no side effects)."""
        return self._tuner is not None

    def adopt_tuner(self, tuner: Tuner) -> "Session":
        """Swap in a ready tuner (e.g. freshly trained on a new profile).

        Cached plans from the previous strategy are dropped; problems,
        engines and worker pools are kept (they are tuner-independent).
        """
        with self._plan_lock:
            self._tuner = tuner
            self._plans.clear()
        return self

    def adopt_plan(self, plan: ResolvedPlan) -> ResolvedPlan:
        """Atomically install ``plan`` as the cached answer for its query.

        The plan replaces whatever the tuned-plan LRU holds for the same
        tuner-resolved query — ``(plan.app, plan.dim, plan.app_kwargs)``
        with no overrides — so every subsequent :meth:`plan`/:meth:`solve`
        call for that signature executes the adopted plan.  This is the
        adaptive controller's promotion primitive
        (:class:`repro.adaptive.AdaptiveController`): the LRU ``put`` runs
        under the plan lock, so concurrent planners observe either the old
        plan or the new one, never a mixture.  Manual-override queries
        (explicit ``backend=``/``tunables=``) are unaffected.
        """
        with self._plan_lock:
            self._check_open()
            query = (plan.app, plan.dim, plan.app_kwargs, None, None, None, None, None)
            self.stats["plans_adopted"] += 1
            return self._plans.put(query, plan)

    def attach_observer(
        self,
        observer: Callable[[ResolvedPlan, ExecutionMode, float], None] | None,
    ) -> "Session":
        """Register a run observer called after every :meth:`run`.

        ``observer(plan, mode, wall_s)`` receives the executed plan, the
        effective execution mode and the pure solve wall (executor time
        only — no queueing, no serving overhead).  The adaptive layer uses
        this as its session-side observation feed; pass ``None`` to
        detach.  The observer is invoked outside error paths — a run that
        raises is not observed — and must be cheap and exception-free.
        """
        self._observer = observer
        return self

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self,
        app: str | WavefrontApplication | WavefrontProblem,
        dim: int | None = None,
        *,
        policy: ExecutionPolicy | None = None,
        backend: str | None = None,
        engine: str | None = None,
        workers: int | None = None,
        tunables: TunableParams | None = None,
        **app_kwargs,
    ) -> ResolvedPlan:
        """Resolve one application instance to an executable plan.

        ``app`` is a registered application name (``app_kwargs`` forward to
        its constructor), an application instance, or a bare
        :class:`~repro.core.pattern.WavefrontProblem`.  Without overrides
        the session's tuner decides backend, workers and tunables; passing
        a ``policy`` (:class:`~repro.facade.policy.ExecutionPolicy`) whose
        ``backend`` (or ``tunables``) is set pins an explicit configuration
        and bypasses the tuner entirely — the plan's ``tuner`` field then
        reads ``"manual"``.  The bare ``backend=``/``engine=``/``workers=``/
        ``tunables=`` keywords are the **deprecated** spelling of the same
        overrides: they coerce into a policy and emit a
        :class:`DeprecationWarning`; combining them with ``policy=`` is a
        :class:`~repro.core.exceptions.UsageError`.

        Registry-name requests are cached per (instance, overrides) query,
        so repeated requests cost one LRU hit.  Caller-supplied application
        instances and problems are planned against their *own* objects
        (identity-keyed, never conflated with the registry defaults of the
        same name) and the resulting plan carries the concrete problem, so
        :meth:`run` executes exactly what was handed in.
        """
        self._check_open()
        policy = self._coerce_policy(policy, backend, engine, workers, tunables)
        with self._plan_lock:
            if isinstance(app, WavefrontProblem):
                if app_kwargs:
                    raise UsageError(
                        "constructor arguments cannot be applied to an "
                        "already-built problem"
                    )
                return self._resolve(app, app.name, (), policy)
            if isinstance(app, WavefrontApplication):
                if app_kwargs:
                    raise UsageError(
                        f"cannot apply constructor arguments {sorted(app_kwargs)} to "
                        f"an already-built application instance {app.name!r}"
                    )
                dim = dim if dim is not None else app.default_dim
                problem = self._instance_problem(app, dim)
                return self._resolve(problem, app.name, (), policy)
            app_obj = resolve_application(app, **self._ctor_kwargs(dim, app_kwargs))
            dim = dim if dim is not None else app_obj.default_dim
            kwargs_key = tuple(sorted(app_kwargs.items()))
            query = (
                app,
                dim,
                kwargs_key,
                policy.backend,
                policy.engine,
                policy.workers,
                policy.tunables,
                policy.dispatch,
            )
            cached = self._plans.get(query)
            if cached is not None:
                return cached
            problem = self._problems.get_or_create(
                (app, dim, kwargs_key), lambda: app_obj.problem(dim)
            )
            plan = self._resolve(problem, app, kwargs_key, policy)
            return self._plans.put(query, plan)

    @staticmethod
    def _coerce_policy(
        policy: ExecutionPolicy | None, backend, engine, workers, tunables
    ) -> ExecutionPolicy:
        """One :class:`ExecutionPolicy` from either spelling of the overrides."""
        legacy = (
            backend is not None
            or engine is not None
            or workers is not None
            or tunables is not None
        )
        if policy is not None:
            if legacy:
                raise UsageError(
                    "pass overrides either as policy= or as the legacy "
                    "backend=/engine=/workers=/tunables= keywords, not both"
                )
            return policy
        if legacy:
            warnings.warn(
                "the backend=/engine=/workers=/tunables= keywords of "
                "Session.plan()/solve() are deprecated; pass "
                "policy=ExecutionPolicy(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            return ExecutionPolicy(
                backend=backend, engine=engine, workers=workers, tunables=tunables
            )
        return ExecutionPolicy()

    @staticmethod
    def _ctor_kwargs(dim, app_kwargs: dict) -> dict:
        """Constructor arguments for registry resolution."""
        kwargs = dict(app_kwargs)
        if dim is not None:
            kwargs["dim"] = dim
        return kwargs

    def _instance_problem(self, app: WavefrontApplication, dim: int) -> WavefrontProblem:
        """The cached problem of one caller-supplied application instance.

        Keyed by the instance's identity (the cache entry keeps the
        instance alive, so a recycled ``id()`` can never alias) — two
        differently-configured instances sharing a registry name get two
        problems, and neither touches the registry-default cache slots.
        """
        key = ("__instance__", id(app), dim)
        entry = self._problems.get(key)
        if entry is None or entry[0] is not app:
            entry = self._problems.put(key, (app, app.problem(dim)))
        return entry[1]

    def _resolve(self, problem, name, kwargs_key, policy: ExecutionPolicy) -> ResolvedPlan:
        """Combine the tuner's decision with the policy's overrides."""
        params = problem.input_params()
        if policy.backend is not None or policy.tunables is not None:
            decision = PlanDecision(
                backend=policy.backend if policy.backend is not None else "hybrid",
                tunables=(
                    policy.tunables if policy.tunables is not None else TunableParams()
                ),
                workers=policy.workers if policy.workers is not None else 1,
                engine=policy.engine,
            )
            source = "manual"
        else:
            decision = self.tuner.resolve(name, params)
            self.stats["plans_resolved"] += 1
            source = self.tuner.kind
            if policy.engine is not None:
                decision = PlanDecision(
                    backend=decision.backend,
                    tunables=decision.tunables,
                    workers=decision.workers,
                    engine=policy.engine,
                    expected_s=decision.expected_s,
                )
        resolved_workers = (
            policy.workers if policy.workers is not None else decision.workers
        )
        if self.workers is not None:
            resolved_workers = self.workers
        return ResolvedPlan(
            app=name,
            dim=problem.dim,
            params=params,
            tunables=decision.tunables.clipped(problem.dim),
            backend=decision.backend,
            engine=decision.engine,
            workers=max(1, int(resolved_workers)),
            dispatch=policy.dispatch if policy.dispatch is not None else "barrier",
            system=self.system.name,
            tuner=source,
            expected_s=decision.expected_s,
            app_kwargs=kwargs_key,
            problem=problem,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, plan: ResolvedPlan, mode: ExecutionMode | str | None = None
    ) -> ExecutionResult:
        """Execute a resolved plan (this session's or a replayed one).

        Plans this session resolved carry their concrete problem and
        execute it directly; replayed plans (loaded from JSON) rebuild the
        problem through the application registry, cached per (app, dim,
        overrides).  ``mode`` defaults to the session's mode.

        The whole execution holds the session's run lock: borrowed worker
        pools and shared-memory grids are single-request resources, so
        concurrent callers queue here and run one after another.
        """
        self._check_open()
        mode = ExecutionMode.coerce(mode) if mode is not None else self.mode
        problem = plan.problem
        if problem is None:
            problem = self._problems.get_or_create(
                (plan.app, plan.dim, plan.app_kwargs),
                lambda: resolve_application(
                    plan.app, dim=plan.dim, **plan.app_options
                ).problem(plan.dim),
            )
        strategy, engine = plan.split()
        with self._run_lock:
            self._check_open()
            executor = self.host.executor_for(
                strategy, engine, plan.workers, dispatch=plan.dispatch
            )
            self.stats["runs"] += 1
            started = time.perf_counter()
            result = executor.execute(problem, plan.tunables, mode=mode)
            if self._observer is not None:
                self._observer(plan, mode, time.perf_counter() - started)
            return result

    def solve(
        self,
        app: str | WavefrontApplication | WavefrontProblem,
        dim: int | None = None,
        mode: ExecutionMode | str | None = None,
        **plan_kwargs,
    ) -> ExecutionResult:
        """Plan and execute in one call (the "just solve it" entry point).

        With a persistent result cache configured (``cache_dir=`` /
        ``result_cache=``), functional registry-name requests are answered
        content-addressed: the resolved plan's request key is looked up
        memory → disk before any grid is swept, and concurrent misses on
        one key run exactly one solve.  Simulate-mode requests, instance /
        problem requests and requests whose arguments the key codec cannot
        canonicalise bypass the cache and execute directly.
        """
        plan = self.plan(app, dim, **plan_kwargs)
        key = self._request_key_for(app, plan, mode, plan_kwargs)
        if key is None:
            return self.run(plan, mode=mode)
        return self.result_cache.get_or_solve(key, lambda: self.run(plan, mode=mode))

    def _request_key_for(self, app, plan: ResolvedPlan, mode, plan_kwargs):
        """The cache key of one solve request, or ``None`` when uncacheable.

        Only functional registry-name requests are cached: instance and
        problem requests carry caller-owned state the codec cannot see, and
        simulate-mode answers have no bit-exact payload worth addressing.
        Plan-relevant overrides (``backend``/``engine``/``workers``/
        ``tunables``, plus a non-default ``dispatch``) enter the key —
        whether spelled as a ``policy=`` or as the legacy keywords, the same
        overrides produce the same key, so persisted caches survive the
        migration.  Un-canonicalisable values make the request silently
        uncacheable rather than unsolvable.
        """
        if self.result_cache is None or not isinstance(app, str):
            return None
        resolved_mode = ExecutionMode.coerce(mode) if mode is not None else self.mode
        if resolved_mode is not ExecutionMode.FUNCTIONAL:
            return None
        policy = plan_kwargs.get("policy")
        if isinstance(policy, ExecutionPolicy):
            overrides = policy.overrides()
            # Default dispatch is key-invisible so pre-existing cache
            # entries keep matching.
            if overrides.get("dispatch") == "barrier":
                del overrides["dispatch"]
        else:
            overrides = {
                name: plan_kwargs[name]
                for name in ("backend", "engine", "workers", "tunables")
                if plan_kwargs.get(name) is not None
            }
        if self.workers is not None:
            # The session-wide override changes the executed plan, so it
            # must change the key too.
            overrides["workers"] = self.workers
        try:
            return request_key(
                plan.app,
                plan.dim,
                params=plan.params,
                app_kwargs=plan.app_kwargs,
                overrides=overrides,
                mode=resolved_mode.value,
            )
        except CacheError:
            return None

    def solve_many(
        self,
        requests: Iterable[Any],
        mode: ExecutionMode | str | None = None,
        deadline_at: float | None = None,
    ) -> list[ExecutionResult]:
        """Serve a batch of requests, reusing plans, engines and pools.

        Each request is a registered application name, an
        ``(app, dim)`` pair, a mapping of :meth:`plan` keyword arguments,
        or a ready :class:`~repro.facade.plan.ResolvedPlan`.  Repeated
        requests hit the tuned-plan cache (one tuner resolution for the
        whole stream) and the multicore backends keep their worker pools
        warm across the batch — the serving behaviour the per-call helpers
        could not offer.

        ``deadline_at`` (an absolute ``time.perf_counter()`` instant) makes
        the batch deadline-aware: a request whose turn comes after the
        deadline raises :class:`~repro.core.exceptions.DeadlineError`
        instead of starting work nobody is waiting for.  A solve already
        underway runs to completion — compute is not aborted part-way.
        """
        results = []
        for request in requests:
            if deadline_at is not None and time.perf_counter() > deadline_at:
                raise DeadlineError(
                    f"batch deadline expired with {len(results)} of its "
                    f"requests served; not starting the next one"
                )
            if isinstance(request, ResolvedPlan):
                results.append(self.run(request, mode=mode))
            elif isinstance(request, Mapping):
                results.append(self.solve(mode=mode, **request))
            elif isinstance(request, (tuple, list)):
                app, dim = request
                results.append(self.solve(app, dim, mode=mode))
            else:
                results.append(self.solve(request, mode=mode))
            with self._run_lock:
                self.stats["requests_served"] += 1
        return results

    # ------------------------------------------------------------------
    # Profiling / sweeping (the CLI's remaining verbs)
    # ------------------------------------------------------------------
    def profile(self, config=None, progress: Callable[[str], None] | None = None):
        """Measure the live CPU backends on this session's system.

        Thin wrapper over :func:`repro.autotuner.measured.profile_host`
        returning the :class:`~repro.autotuner.measured.MeasuredProfile`;
        pair with :meth:`train_measured` to turn the profile into a
        deployable tuner.
        """
        from repro.autotuner.measured import profile_host

        return profile_host(self.system, config, progress=progress)

    def train_measured(self, profile, adopt: bool = False):
        """Train a measured tuner on a profile; optionally adopt it.

        With ``adopt=True`` the session starts answering :meth:`plan`
        queries from the new tuner immediately (dropping cached plans).
        """
        from repro.autotuner.measured import MeasuredTuner

        tuner = MeasuredTuner.train(profile)
        if adopt:
            self.adopt_tuner(tuner)
        return tuner

    def sweep(self, space: ParameterSpace | None = None, instances=None):
        """Exhaustive cost-model sweep of the synthetic application.

        Returns :class:`repro.autotuner.exhaustive.SearchResults` for the
        report/analysis helpers; ``space`` defaults to the session's space
        (or the reduced space).
        """
        from repro.autotuner.exhaustive import ExhaustiveSearch

        search = ExhaustiveSearch(
            self.system, space if space is not None else self.space, self.constants
        )
        return search.sweep(instances)

    def save_model(self, path) -> None:
        """Persist the tuner's learned model (for later ``model_path=`` use)."""
        from repro.autotuner.persistence import save_tuner

        model = getattr(self.tuner, "model", None)
        if model is None:
            raise UsageError(
                f"the {self.tuner.kind!r} tuner has no trainable model to save"
            )
        save_tuner(model, path)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable summary of system, tuner and cache state."""
        tuner_txt = (
            self.tuner.describe() if self.tuner_ready else f"{self._tuner_spec!r} (lazy)"
        )
        return (
            f"Session(system={self.system.name}, tuner={tuner_txt}, "
            f"mode={self.mode.value}, cache_size={self.cache_size})"
        )

    def cache_info(self) -> dict:
        """Counters of every bounded cache plus the request statistics."""
        info = {
            "plans": self._plans.info(),
            "problems": self._problems.info(),
            "requests": dict(self.stats),
            **self.host.cache_info(),
        }
        if self.result_cache is not None:
            info["results"] = self.result_cache.info()
        return info

    def close(self) -> None:
        """Release worker pools, engines and caches; the session stays closed.

        Takes both locks (plan first, then run — the only nesting order used
        anywhere), so an in-flight execution finishes before its pools are
        torn down.
        """
        with self._plan_lock, self._run_lock:
            if self._closed:
                return
            self.host.close()
            self._plans.clear()
            self._problems.clear()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise UsageError("Session used after close()")

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
