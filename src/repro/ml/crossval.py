"""Cross-validation utilities.

The paper's training procedure evaluates candidate models by
cross-validation on synthetic-application instances withheld from the
training set, and accepts a configuration once test accuracy reaches 90%
(Section 3.1.2).  These helpers implement that protocol for any model that
exposes ``fit(dataset)`` and ``predict(X)``.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.core.exceptions import InvalidParameterError
from repro.ml.dataset import Dataset
from repro.ml.metrics import within_tolerance
from repro.utils.rng import make_rng


class SupervisedModel(Protocol):
    """Anything with the fit/predict interface used by the tuner."""

    def fit(self, dataset: Dataset) -> "SupervisedModel":
        """Fit the model on a dataset."""
        ...

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix."""
        ...


def kfold_indices(
    n_samples: int, k: int, seed: int | np.random.Generator | None = None
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``k`` (train_indices, test_indices) folds over ``n_samples`` rows."""
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    if n_samples < k:
        raise InvalidParameterError(
            f"cannot make {k} folds out of {n_samples} samples"
        )
    rng = make_rng(seed)
    order = rng.permutation(n_samples)
    folds = np.array_split(order, k)
    out = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        out.append((train, test))
    return out


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.25, seed=None
) -> tuple[Dataset, Dataset]:
    """Split a dataset into (train, test)."""
    train, test = dataset.split(1.0 - test_fraction, seed=seed)
    return train, test


def cross_val_score(
    model_factory: Callable[[], SupervisedModel],
    dataset: Dataset,
    k: int = 5,
    metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
    seed: int | np.random.Generator | None = None,
) -> list[float]:
    """K-fold cross-validation scores of ``model_factory()`` on ``dataset``.

    The default metric is the paper's tolerance-based accuracy
    (:func:`repro.ml.metrics.within_tolerance`).
    """
    metric = metric or within_tolerance
    scores = []
    for train_idx, test_idx in kfold_indices(dataset.n_samples, k, seed):
        train = dataset.subset(train_idx)
        test = dataset.subset(test_idx)
        model = model_factory()
        model.fit(train)
        preds = model.predict(test.X)
        scores.append(float(metric(test.y, preds)))
    return scores


def meets_accuracy_threshold(scores: list[float], threshold: float = 0.9) -> bool:
    """The paper's acceptance rule: mean cross-validated accuracy >= 90%."""
    if not scores:
        raise InvalidParameterError("no cross-validation scores supplied")
    return float(np.mean(scores)) >= threshold
