"""Ordinary least-squares linear models.

These serve two roles: the linear models sitting at the leaves of the M5P
model tree (Figure 9's ``LM1 ... LM22``) and the stand-alone linear
regression baseline that the paper's earlier work found insufficient for
predicting the tuning parameters (Section 3.1.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ModelNotFittedError, InvalidParameterError


class LinearModel:
    """OLS regression ``y = w . x + b`` with optional attribute dropping."""

    def __init__(self, ridge: float = 1e-8) -> None:
        if ridge < 0:
            raise InvalidParameterError(f"ridge must be >= 0, got {ridge}")
        self.ridge = float(ridge)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.feature_names: list[str] | None = None

    # ------------------------------------------------------------------
    def fit(
        self, X: np.ndarray, y: np.ndarray, feature_names: list[str] | None = None
    ) -> "LinearModel":
        """Fit the model by (ridge-stabilised) least squares."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise InvalidParameterError(
                f"inconsistent shapes X{X.shape}, y{y.shape} for LinearModel.fit"
            )
        if X.shape[0] == 0:
            raise InvalidParameterError("cannot fit a linear model on zero samples")
        n, m = X.shape
        self.feature_names = list(feature_names) if feature_names is not None else None
        if n == 1:
            # Degenerate case: constant model through the single point.
            self.coef_ = np.zeros(m)
            self.intercept_ = float(y[0])
            return self
        # Augment with a bias column and solve the normal equations with a
        # small ridge term for numerical stability on collinear features.
        A = np.hstack([X, np.ones((n, 1))])
        gram = A.T @ A + self.ridge * np.eye(m + 1)
        rhs = A.T @ y
        try:
            beta = np.linalg.solve(gram, rhs)
        except np.linalg.LinAlgError:
            beta, *_ = np.linalg.lstsq(A, y, rcond=None)
        self.coef_ = beta[:m]
        self.intercept_ = float(beta[m])
        return self

    @property
    def fitted(self) -> bool:
        """True once the coefficients have been fitted."""
        return self.coef_ is not None

    def _check_fitted(self) -> None:
        if not self.fitted:
            raise ModelNotFittedError("LinearModel used before fit()")

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``X`` (shape ``(n, m)`` or ``(m,)``)."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        if X.shape[1] != self.coef_.shape[0]:
            raise InvalidParameterError(
                f"expected {self.coef_.shape[0]} features, got {X.shape[1]}"
            )
        out = X @ self.coef_ + self.intercept_
        return out[0:1][0] if single else out

    # ------------------------------------------------------------------
    def drop_small_terms(self, X: np.ndarray, y: np.ndarray, threshold: float = 0.01) -> "LinearModel":
        """Refit keeping only attributes that matter (M5's term dropping).

        An attribute is dropped when zeroing its coefficient changes the
        training RMSE by less than ``threshold`` (relative).  The paper notes
        that dropping the other tunables from the cpu-tile model *increased*
        accuracy — this is the mechanism that allows it.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        base_rmse = float(np.sqrt(np.mean((self.predict(X) - y) ** 2))) + 1e-12
        keep = np.ones(self.coef_.shape[0], dtype=bool)
        for idx in range(self.coef_.shape[0]):
            coef_backup = self.coef_[idx]
            self.coef_[idx] = 0.0
            dropped_rmse = float(np.sqrt(np.mean((self.predict(X) - y) ** 2)))
            self.coef_[idx] = coef_backup
            if (dropped_rmse - base_rmse) / base_rmse < threshold:
                keep[idx] = False
        if keep.all():
            return self
        # Refit on the kept attributes, then expand back to full width.
        refit = LinearModel(ridge=self.ridge).fit(X[:, keep], y)
        coef = np.zeros_like(self.coef_)
        coef[keep] = refit.coef_
        self.coef_ = coef
        self.intercept_ = refit.intercept_
        return self

    # ------------------------------------------------------------------
    def equation(self, precision: int = 4) -> str:
        """Human-readable equation (used by the Figure 9 model-tree dump)."""
        self._check_fitted()
        names = self.feature_names or [f"x{i}" for i in range(self.coef_.shape[0])]
        terms = []
        for coef, name in zip(self.coef_, names):
            if abs(coef) < 10 ** (-precision):
                continue
            terms.append(f"{coef:+.{precision}g} * {name}")
        terms.append(f"{self.intercept_:+.{precision}g}")
        body = " ".join(terms)
        return body.lstrip("+").strip()

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        self._check_fitted()
        return {
            "coef": self.coef_.tolist(),
            "intercept": self.intercept_,
            "feature_names": self.feature_names,
            "ridge": self.ridge,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinearModel":
        """Rebuild a model serialised by :meth:`to_dict`."""
        model = cls(ridge=float(data.get("ridge", 1e-8)))
        model.coef_ = np.asarray(data["coef"], dtype=float)
        model.intercept_ = float(data["intercept"])
        model.feature_names = data.get("feature_names")
        return model
