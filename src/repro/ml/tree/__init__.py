"""Decision / model tree implementations (M5P, REP tree, OLS leaves)."""

from repro.ml.tree.linear_model import LinearModel
from repro.ml.tree.splitter import SplitCandidate, best_split
from repro.ml.tree.reptree import REPTree
from repro.ml.tree.m5p import M5ModelTree

__all__ = ["LinearModel", "SplitCandidate", "best_split", "REPTree", "M5ModelTree"]
