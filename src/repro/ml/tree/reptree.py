"""REP tree: a regression tree with reduced-error pruning.

The paper uses Weka's REPTree for the binary gpu-tile decision (Section
4.1.5).  The implementation here grows a variance-reduction tree and then
prunes it bottom-up against a held-out pruning set: a subtree is replaced by
a leaf whenever the leaf's error on the pruning set is no worse than the
subtree's (classic reduced-error pruning).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import InvalidParameterError, ModelNotFittedError
from repro.ml.dataset import Dataset
from repro.ml.tree.splitter import best_split
from repro.utils.rng import make_rng


@dataclass
class _Node:
    """One node of the tree; leaves predict their mean target value."""

    prediction: float
    n_samples: int
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None or self.right is None

    def to_dict(self) -> dict:
        out = {
            "prediction": self.prediction,
            "n_samples": self.n_samples,
            "depth": self.depth,
        }
        if not self.is_leaf:
            out.update(
                feature=self.feature,
                threshold=self.threshold,
                left=self.left.to_dict(),
                right=self.right.to_dict(),
            )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "_Node":
        node = cls(
            prediction=float(data["prediction"]),
            n_samples=int(data["n_samples"]),
            depth=int(data.get("depth", 0)),
        )
        if "left" in data:
            node.feature = int(data["feature"])
            node.threshold = float(data["threshold"])
            node.left = cls.from_dict(data["left"])
            node.right = cls.from_dict(data["right"])
        return node


class REPTree:
    """Variance-reduction regression tree with reduced-error pruning."""

    def __init__(
        self,
        max_depth: int = 12,
        min_leaf: int = 3,
        prune_fraction: float = 0.25,
        prune: bool = True,
        seed: int | None = None,
    ) -> None:
        if max_depth < 1:
            raise InvalidParameterError(f"max_depth must be >= 1, got {max_depth}")
        if min_leaf < 1:
            raise InvalidParameterError(f"min_leaf must be >= 1, got {min_leaf}")
        if not 0.0 < prune_fraction < 1.0:
            raise InvalidParameterError(
                f"prune_fraction must be in (0, 1), got {prune_fraction}"
            )
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.prune_fraction = prune_fraction
        self.prune = prune
        self.seed = seed
        self.root: _Node | None = None
        self.feature_names: list[str] | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset) -> "REPTree":
        """Grow the tree on a growing split and prune it on the held-out rest."""
        self.feature_names = list(dataset.feature_names)
        if self.prune and dataset.n_samples >= 8:
            grow, prune_set = dataset.split(1.0 - self.prune_fraction, seed=make_rng(self.seed))
        else:
            grow, prune_set = dataset, None
        self.root = self._grow(grow.X, grow.y, depth=0)
        if prune_set is not None and prune_set.n_samples > 0:
            self._reduced_error_prune(self.root, prune_set.X, prune_set.y)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(np.mean(y)), n_samples=y.size, depth=depth)
        if depth >= self.max_depth or y.size < 2 * self.min_leaf:
            return node
        split = best_split(X, y, min_leaf=self.min_leaf, criterion="variance")
        if split is None:
            return node
        mask = X[:, split.feature] <= split.threshold
        node.feature = split.feature
        node.threshold = split.threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _reduced_error_prune(self, node: _Node, X: np.ndarray, y: np.ndarray) -> float:
        """Prune bottom-up; returns the node's squared error on (X, y)."""
        leaf_error = float(np.sum((y - node.prediction) ** 2)) if y.size else 0.0
        if node.is_leaf:
            return leaf_error
        mask = X[:, node.feature] <= node.threshold
        left_error = self._reduced_error_prune(node.left, X[mask], y[mask])
        right_error = self._reduced_error_prune(node.right, X[~mask], y[~mask])
        subtree_error = left_error + right_error
        if leaf_error <= subtree_error + 1e-12:
            # Collapse: the held-out data does not justify the subtree.
            node.left = None
            node.right = None
            node.feature = None
            return leaf_error
        return subtree_error

    # ------------------------------------------------------------------
    # Prediction / introspection
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.root is None:
            raise ModelNotFittedError("REPTree used before fit()")

    def _predict_one(self, x: np.ndarray) -> float:
        node = self.root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.prediction

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for each row of ``X``."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        out = np.array([self._predict_one(row) for row in X])
        return out[0] if single else out

    def predict_binary(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary decisions for {0, 1} targets (the gpu-tile use case)."""
        return (self.predict(X) >= threshold).astype(int)

    @property
    def n_leaves(self) -> int:
        """Number of leaves of the (pruned) tree."""
        self._check_fitted()

        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        return count(self.root)

    @property
    def depth(self) -> int:
        """Depth of the (pruned) tree; 0 for a single leaf."""
        self._check_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    def to_text(self) -> str:
        """Indented text rendering of the tree."""
        self._check_fitted()
        names = self.feature_names or []
        lines: list[str] = []

        def walk(node: _Node, indent: str) -> None:
            if node.is_leaf:
                lines.append(f"{indent}-> {node.prediction:.4g} ({node.n_samples})")
                return
            name = names[node.feature] if node.feature < len(names) else f"x{node.feature}"
            lines.append(f"{indent}{name} <= {node.threshold:.4g}")
            walk(node.left, indent + "|   ")
            lines.append(f"{indent}{name} > {node.threshold:.4g}")
            walk(node.right, indent + "|   ")

        walk(self.root, "")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        self._check_fitted()
        return {
            "type": "reptree",
            "max_depth": self.max_depth,
            "min_leaf": self.min_leaf,
            "prune_fraction": self.prune_fraction,
            "feature_names": self.feature_names,
            "root": self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "REPTree":
        """Rebuild a tree serialised by :meth:`to_dict`."""
        tree = cls(
            max_depth=int(data["max_depth"]),
            min_leaf=int(data["min_leaf"]),
            prune_fraction=float(data["prune_fraction"]),
        )
        tree.feature_names = data.get("feature_names")
        tree.root = _Node.from_dict(data["root"])
        return tree
