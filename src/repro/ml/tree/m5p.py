"""M5P model trees (Quinlan's M5 with Wang & Witten's improvements).

The M5 pruned model tree is the paper's main regression heuristic: it
predicts band, cpu-tile and halo values from the instance features and,
where it helps, from other tunable parameters (Figure 9 shows a fragment of
the halo tree for the i7-2600K).

Algorithm implemented here:

1. **Grow** a regression tree using the standard-deviation-reduction (SDR)
   splitting criterion.
2. **Fit linear models** at every node by ordinary least squares, with
   small-coefficient dropping.
3. **Prune** bottom-up: a subtree is replaced by its node's linear model
   whenever the model's (complexity-adjusted) error is no worse than the
   subtree's.
4. **Smooth** predictions on the way back up the tree,
   ``p' = (n p + k q) / (n + k)``, blending the leaf prediction ``p`` with
   the ancestor models ``q``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import InvalidParameterError, ModelNotFittedError
from repro.ml.dataset import Dataset
from repro.ml.tree.linear_model import LinearModel
from repro.ml.tree.splitter import best_split


@dataclass
class _M5Node:
    """One node of the model tree."""

    model: LinearModel
    prediction_mean: float
    n_samples: int
    depth: int
    feature: int | None = None
    threshold: float = 0.0
    left: "_M5Node | None" = None
    right: "_M5Node | None" = None
    lm_id: int = 0  # assigned to leaves after pruning, for the text dump

    @property
    def is_leaf(self) -> bool:
        return self.left is None or self.right is None

    def to_dict(self) -> dict:
        out = {
            "model": self.model.to_dict(),
            "prediction_mean": self.prediction_mean,
            "n_samples": self.n_samples,
            "depth": self.depth,
            "lm_id": self.lm_id,
        }
        if not self.is_leaf:
            out.update(
                feature=self.feature,
                threshold=self.threshold,
                left=self.left.to_dict(),
                right=self.right.to_dict(),
            )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "_M5Node":
        node = cls(
            model=LinearModel.from_dict(data["model"]),
            prediction_mean=float(data["prediction_mean"]),
            n_samples=int(data["n_samples"]),
            depth=int(data["depth"]),
            lm_id=int(data.get("lm_id", 0)),
        )
        if "left" in data:
            node.feature = int(data["feature"])
            node.threshold = float(data["threshold"])
            node.left = cls.from_dict(data["left"])
            node.right = cls.from_dict(data["right"])
        return node


class M5ModelTree:
    """M5 pruned model tree with optional smoothing."""

    def __init__(
        self,
        max_depth: int = 10,
        min_leaf: int = 4,
        smoothing_k: float = 15.0,
        pruning_factor: float = 1.0,
        drop_terms: bool = True,
    ) -> None:
        if max_depth < 1:
            raise InvalidParameterError(f"max_depth must be >= 1, got {max_depth}")
        if min_leaf < 2:
            raise InvalidParameterError(f"min_leaf must be >= 2, got {min_leaf}")
        if smoothing_k < 0:
            raise InvalidParameterError(f"smoothing_k must be >= 0, got {smoothing_k}")
        if pruning_factor < 0:
            raise InvalidParameterError(
                f"pruning_factor must be >= 0, got {pruning_factor}"
            )
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.smoothing_k = smoothing_k
        self.pruning_factor = pruning_factor
        self.drop_terms = drop_terms
        self.root: _M5Node | None = None
        self.feature_names: list[str] | None = None
        self.n_linear_models = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset) -> "M5ModelTree":
        """Grow, prune and label the model tree on ``dataset``."""
        self.feature_names = list(dataset.feature_names)
        self.root = self._grow(dataset.X, dataset.y, depth=0)
        self._prune(self.root, dataset.X, dataset.y)
        self.n_linear_models = self._assign_lm_ids(self.root, 1) - 1
        return self

    def _fit_node_model(self, X: np.ndarray, y: np.ndarray) -> LinearModel:
        model = LinearModel().fit(X, y, feature_names=self.feature_names)
        if self.drop_terms and X.shape[0] > X.shape[1] + 1:
            model.drop_small_terms(X, y)
        return model

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _M5Node:
        node = _M5Node(
            model=self._fit_node_model(X, y),
            prediction_mean=float(np.mean(y)),
            n_samples=y.size,
            depth=depth,
        )
        if depth >= self.max_depth or y.size < 2 * self.min_leaf:
            return node
        # M5 also stops when the node's spread is a tiny fraction of the
        # root's; the gain<=0 check in best_split covers the degenerate case.
        split = best_split(X, y, min_leaf=self.min_leaf, criterion="sdr")
        if split is None:
            return node
        mask = X[:, split.feature] <= split.threshold
        node.feature = split.feature
        node.threshold = split.threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _subtree_errors(self, node: _M5Node, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Absolute errors of the (current) subtree on (X, y), unsmoothed."""
        if node.is_leaf or X.shape[0] == 0:
            return np.abs(node.model.predict(X) - y) if X.shape[0] else np.zeros(0)
        mask = X[:, node.feature] <= node.threshold
        out = np.empty(y.shape)
        out[mask] = self._subtree_errors(node.left, X[mask], y[mask])
        out[~mask] = self._subtree_errors(node.right, X[~mask], y[~mask])
        return out

    def _prune(self, node: _M5Node, X: np.ndarray, y: np.ndarray) -> None:
        """Bottom-up pruning: keep the subtree only if it clearly beats the node model."""
        if node.is_leaf:
            return
        mask = X[:, node.feature] <= node.threshold
        self._prune(node.left, X[mask], y[mask])
        self._prune(node.right, X[~mask], y[~mask])
        n = max(1, y.size)
        params = np.count_nonzero(np.abs(node.model.coef_) > 1e-12) + 1
        # Complexity-adjusted error, in the spirit of M5's (n + v)/(n - v) factor.
        def adjusted(err: float, v: float) -> float:
            denom = max(1.0, n - self.pruning_factor * v)
            return err * (n + self.pruning_factor * v) / denom

        model_err = float(np.mean(np.abs(node.model.predict(X) - y))) if y.size else 0.0
        subtree_err = float(np.mean(self._subtree_errors(node, X, y))) if y.size else 0.0
        subtree_params = params + 2  # the split itself plus child models
        if adjusted(model_err, params) <= adjusted(subtree_err, subtree_params) + 1e-12:
            node.left = None
            node.right = None
            node.feature = None

    def _assign_lm_ids(self, node: _M5Node, next_id: int) -> int:
        if node.is_leaf:
            node.lm_id = next_id
            return next_id + 1
        next_id = self._assign_lm_ids(node.left, next_id)
        return self._assign_lm_ids(node.right, next_id)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.root is None:
            raise ModelNotFittedError("M5ModelTree used before fit()")

    def _predict_one(self, x: np.ndarray) -> float:
        # Descend to the responsible leaf, remembering the path for smoothing.
        path: list[_M5Node] = []
        node = self.root
        while not node.is_leaf:
            path.append(node)
            node = node.left if x[node.feature] <= node.threshold else node.right
        value = float(node.model.predict(x))
        if self.smoothing_k <= 0:
            return value
        n = node.n_samples
        for ancestor in reversed(path):
            value = (n * value + self.smoothing_k * float(ancestor.model.predict(x))) / (
                n + self.smoothing_k
            )
        return value

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for each row of ``X`` (smoothed)."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        if X.shape[1] != len(self.feature_names or []):
            raise InvalidParameterError(
                f"expected {len(self.feature_names or [])} features, got {X.shape[1]}"
            )
        out = np.array([self._predict_one(row) for row in X])
        return out[0] if single else out

    # ------------------------------------------------------------------
    # Introspection (Figure 9)
    # ------------------------------------------------------------------
    @property
    def n_leaves(self) -> int:
        """Number of leaf linear models after pruning."""
        self._check_fitted()
        return self.n_linear_models

    def to_text(self, equations: bool = True) -> str:
        """Text dump in the style of Weka's M5P output (Figure 9)."""
        self._check_fitted()
        names = self.feature_names or []
        lines: list[str] = []
        leaves: list[_M5Node] = []

        def walk(node: _M5Node, indent: str) -> None:
            if node.is_leaf:
                leaves.append(node)
                lines.append(f"{indent}LM{node.lm_id} ({node.n_samples})")
                return
            name = names[node.feature] if node.feature < len(names) else f"x{node.feature}"
            lines.append(f"{indent}{name} <= {node.threshold:.4g} :")
            walk(node.left, indent + "|   ")
            lines.append(f"{indent}{name} >  {node.threshold:.4g} :")
            walk(node.right, indent + "|   ")

        walk(self.root, "")
        if equations:
            lines.append("")
            for leaf in leaves:
                lines.append(f"LM{leaf.lm_id}: {leaf.model.equation()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        self._check_fitted()
        return {
            "type": "m5p",
            "max_depth": self.max_depth,
            "min_leaf": self.min_leaf,
            "smoothing_k": self.smoothing_k,
            "pruning_factor": self.pruning_factor,
            "drop_terms": self.drop_terms,
            "feature_names": self.feature_names,
            "n_linear_models": self.n_linear_models,
            "root": self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "M5ModelTree":
        """Rebuild a tree serialised by :meth:`to_dict`."""
        tree = cls(
            max_depth=int(data["max_depth"]),
            min_leaf=int(data["min_leaf"]),
            smoothing_k=float(data["smoothing_k"]),
            pruning_factor=float(data["pruning_factor"]),
            drop_terms=bool(data["drop_terms"]),
        )
        tree.feature_names = data.get("feature_names")
        tree.n_linear_models = int(data.get("n_linear_models", 0))
        tree.root = _M5Node.from_dict(data["root"])
        return tree
