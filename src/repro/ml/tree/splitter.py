"""Split search shared by the REP and M5P trees.

Both trees grow by choosing, at every node, the (feature, threshold) pair
that maximises the reduction of the target's spread.  M5 uses the expected
*standard deviation reduction* (SDR); the REP tree uses variance reduction.
Both are computed here from cumulative sums so a node's split search costs
``O(n_features * n log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import InvalidParameterError


@dataclass(frozen=True)
class SplitCandidate:
    """A candidate split: ``feature <= threshold`` goes left."""

    feature: int
    threshold: float
    gain: float
    n_left: int
    n_right: int


def _spread(sum_y: float, sum_y2: float, n: int, criterion: str) -> float:
    """Variance or standard deviation of a group given its running sums."""
    if n <= 0:
        return 0.0
    mean = sum_y / n
    var = max(0.0, sum_y2 / n - mean * mean)
    return np.sqrt(var) if criterion == "sdr" else var


def best_split(
    X: np.ndarray,
    y: np.ndarray,
    min_leaf: int = 2,
    criterion: str = "sdr",
) -> SplitCandidate | None:
    """Best split of (X, y), or ``None`` when no admissible split exists.

    ``criterion`` is ``"sdr"`` (standard deviation reduction, M5) or
    ``"variance"`` (variance reduction, REP tree).
    """
    if criterion not in ("sdr", "variance"):
        raise InvalidParameterError(f"unknown split criterion {criterion!r}")
    if min_leaf < 1:
        raise InvalidParameterError(f"min_leaf must be >= 1, got {min_leaf}")
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n, m = X.shape
    if n < 2 * min_leaf:
        return None
    parent_spread = _spread(float(y.sum()), float((y * y).sum()), n, criterion)
    if parent_spread < 1e-12:
        return None

    best: SplitCandidate | None = None
    for feature in range(m):
        order = np.argsort(X[:, feature], kind="stable")
        xs = X[order, feature]
        ys = y[order]
        # Candidate cut positions: between distinct consecutive feature values.
        cum_y = np.cumsum(ys)
        cum_y2 = np.cumsum(ys * ys)
        total_y = cum_y[-1]
        total_y2 = cum_y2[-1]
        for cut in range(min_leaf, n - min_leaf + 1):
            if xs[cut - 1] == xs[cut]:
                continue
            n_left = cut
            n_right = n - cut
            left = _spread(cum_y[cut - 1], cum_y2[cut - 1], n_left, criterion)
            right = _spread(total_y - cum_y[cut - 1], total_y2 - cum_y2[cut - 1], n_right, criterion)
            gain = parent_spread - (n_left / n) * left - (n_right / n) * right
            if best is None or gain > best.gain:
                best = SplitCandidate(
                    feature=feature,
                    threshold=float((xs[cut - 1] + xs[cut]) / 2.0),
                    gain=float(gain),
                    n_left=n_left,
                    n_right=n_right,
                )
    if best is None or best.gain <= 1e-12:
        return None
    return best
