"""Linear soft-margin SVM trained with the Pegasos sub-gradient method.

The paper first trains "a binary SVM based predictor to decide whether or not
to exploit parallelism" (Section 3.1.2) and only consults the regression
trees when parallelism is predicted to pay off.  A linear SVM on the three
instance features (dim, tsize, dsize) is entirely adequate for that gate;
Pegasos (Shalev-Shwartz et al.) converges quickly and needs nothing beyond
NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import InvalidParameterError, ModelNotFittedError
from repro.ml.dataset import Dataset
from repro.utils.rng import make_rng


class LinearSVM:
    """Binary linear SVM; labels are {0, 1} on input and output."""

    def __init__(
        self,
        regularisation: float = 1e-3,
        epochs: int = 200,
        seed: int | None = None,
    ) -> None:
        if regularisation <= 0:
            raise InvalidParameterError(
                f"regularisation must be positive, got {regularisation}"
            )
        if epochs < 1:
            raise InvalidParameterError(f"epochs must be >= 1, got {epochs}")
        self.regularisation = float(regularisation)
        self.epochs = int(epochs)
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self.feature_names: list[str] | None = None

    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset) -> "LinearSVM":
        """Train on a dataset whose targets are in {0, 1}."""
        y01 = np.round(dataset.y)
        if not np.all(np.isin(y01, (0.0, 1.0))):
            raise InvalidParameterError("LinearSVM targets must be binary (0/1)")
        self.feature_names = list(dataset.feature_names)
        self._mean, self._std = dataset.standardisation()
        X = (dataset.X - self._mean) / self._std
        y = np.where(y01 > 0.5, 1.0, -1.0)
        n, m = X.shape

        # Degenerate single-class training sets: predict the constant class.
        if np.all(y > 0) or np.all(y < 0):
            self.weights_ = np.zeros(m)
            self.bias_ = 1.0 if y[0] > 0 else -1.0
            return self

        rng = make_rng(self.seed)
        w = np.zeros(m)
        b = 0.0
        lam = self.regularisation
        t = 0
        for _ in range(self.epochs):
            for idx in rng.permutation(n):
                t += 1
                eta = 1.0 / (lam * t)
                margin = y[idx] * (X[idx] @ w + b)
                if margin < 1.0:
                    w = (1.0 - eta * lam) * w + eta * y[idx] * X[idx]
                    b = b + eta * y[idx]
                else:
                    w = (1.0 - eta * lam) * w
        self.weights_ = w
        self.bias_ = float(b)
        return self

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        """True once the separating hyperplane has been fitted."""
        return self.weights_ is not None

    def _check_fitted(self) -> None:
        if not self.fitted:
            raise ModelNotFittedError("LinearSVM used before fit()")

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distance to the separating hyperplane."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        Xs = (X - self._mean) / self._std
        out = Xs @ self.weights_ + self.bias_
        return out[0] if single else out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels in {0, 1}."""
        scores = self.decision_function(X)
        return (np.atleast_1d(scores) >= 0.0).astype(int) if np.ndim(scores) else int(scores >= 0)

    def predict_bool(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels as booleans."""
        return np.atleast_1d(self.decision_function(X)) >= 0.0

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        self._check_fitted()
        return {
            "type": "linear_svm",
            "regularisation": self.regularisation,
            "epochs": self.epochs,
            "weights": self.weights_.tolist(),
            "bias": self.bias_,
            "mean": self._mean.tolist(),
            "std": self._std.tolist(),
            "feature_names": self.feature_names,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinearSVM":
        """Rebuild a model serialised by :meth:`to_dict`."""
        model = cls(
            regularisation=float(data["regularisation"]), epochs=int(data["epochs"])
        )
        model.weights_ = np.asarray(data["weights"], dtype=float)
        model.bias_ = float(data["bias"])
        model._mean = np.asarray(data["mean"], dtype=float)
        model._std = np.asarray(data["std"], dtype=float)
        model.feature_names = data.get("feature_names")
        return model
