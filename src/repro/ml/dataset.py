"""Feature/target datasets used to train the autotuner's models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.exceptions import InvalidParameterError
from repro.utils.rng import make_rng


@dataclass
class Dataset:
    """A plain (X, y) dataset with named feature columns.

    ``X`` has shape ``(n_samples, n_features)``; ``y`` has shape
    ``(n_samples,)``.  Targets may be real-valued (regression trees) or
    binary in {0, 1} / {-1, +1} (SVM gate, REP-tree decisions).
    """

    X: np.ndarray
    y: np.ndarray
    feature_names: list[str]
    target_name: str = "target"

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.X.ndim != 2:
            raise InvalidParameterError(f"X must be 2-D, got shape {self.X.shape}")
        if self.y.ndim != 1:
            raise InvalidParameterError(f"y must be 1-D, got shape {self.y.shape}")
        if self.X.shape[0] != self.y.shape[0]:
            raise InvalidParameterError(
                f"X has {self.X.shape[0]} rows but y has {self.y.shape[0]}"
            )
        if self.X.shape[1] != len(self.feature_names):
            raise InvalidParameterError(
                f"X has {self.X.shape[1]} columns but "
                f"{len(self.feature_names)} feature names were given"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, float]],
        features: Sequence[str],
        target: str,
    ) -> "Dataset":
        """Build a dataset from dictionaries (e.g. search-result summaries)."""
        if not records:
            raise InvalidParameterError("cannot build a dataset from zero records")
        missing = [f for f in list(features) + [target] if f not in records[0]]
        if missing:
            raise InvalidParameterError(f"records lack required keys: {missing}")
        X = np.array([[float(r[f]) for f in features] for r in records])
        y = np.array([float(r[target]) for r in records])
        return cls(X=X, y=y, feature_names=list(features), target_name=target)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of rows (samples) in the dataset."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Number of feature columns in the dataset."""
        return self.X.shape[1]

    def feature_index(self, name: str) -> int:
        """Column index of a named feature."""
        try:
            return self.feature_names.index(name)
        except ValueError:
            raise InvalidParameterError(
                f"unknown feature {name!r}; have {self.feature_names}"
            ) from None

    def column(self, name: str) -> np.ndarray:
        """The values of one named feature."""
        return self.X[:, self.feature_index(name)]

    # ------------------------------------------------------------------
    # Subsetting
    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray) -> "Dataset":
        """Row subset by integer or boolean index array."""
        indices = np.asarray(indices)
        return Dataset(
            X=self.X[indices],
            y=self.y[indices],
            feature_names=list(self.feature_names),
            target_name=self.target_name,
        )

    def with_target(self, y: np.ndarray, target_name: str) -> "Dataset":
        """Same features, different target column."""
        return Dataset(
            X=self.X.copy(),
            y=np.asarray(y, dtype=float),
            feature_names=list(self.feature_names),
            target_name=target_name,
        )

    def shuffled(self, seed: int | np.random.Generator | None = None) -> "Dataset":
        """Row-shuffled copy (deterministic for a given seed)."""
        rng = make_rng(seed)
        order = rng.permutation(self.n_samples)
        return self.subset(order)

    def split(
        self, fraction: float, seed: int | np.random.Generator | None = None
    ) -> tuple["Dataset", "Dataset"]:
        """Random split into (first, second) with ``fraction`` of rows in the first."""
        if not 0.0 < fraction < 1.0:
            raise InvalidParameterError(f"fraction must be in (0, 1), got {fraction}")
        shuffled = self.shuffled(seed)
        cut = max(1, min(self.n_samples - 1, int(round(fraction * self.n_samples))))
        return shuffled.subset(np.arange(cut)), shuffled.subset(np.arange(cut, self.n_samples))

    # ------------------------------------------------------------------
    # Standardisation (used by the SVM)
    # ------------------------------------------------------------------
    def standardisation(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-feature (mean, std) with zero stds replaced by one."""
        mean = self.X.mean(axis=0)
        std = self.X.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
        return mean, std
