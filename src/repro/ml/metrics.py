"""Evaluation metrics for the learned models."""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import InvalidParameterError


def _check(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise InvalidParameterError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise InvalidParameterError("metrics need at least one sample")
    return y_true, y_pred


def mse(y_true, y_pred) -> float:
    """Mean squared error."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(y_true, y_pred)))


def mae(y_true, y_pred) -> float:
    """Mean absolute error."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (1.0 is a perfect fit)."""
    y_true, y_pred = _check(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot < 1e-15:
        return 1.0 if ss_res < 1e-15 else 0.0
    return 1.0 - ss_res / ss_tot


def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly matching (integer / boolean) predictions."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.round(y_true) == np.round(y_pred)))


def within_tolerance(y_true, y_pred, rel: float = 0.1, absolute: float = 1.0) -> float:
    """Fraction of predictions within ``rel`` relative or ``absolute`` error.

    The paper accepts a model once cross-validated test results are "at least
    90% accurate"; for real-valued tuning parameters accuracy is measured as
    the fraction of predictions close enough to the exhaustive-search optimum.
    """
    y_true, y_pred = _check(y_true, y_pred)
    err = np.abs(y_true - y_pred)
    tol = np.maximum(absolute, rel * np.abs(y_true))
    return float(np.mean(err <= tol))
