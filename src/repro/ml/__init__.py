"""Machine-learning substrate.

The paper trains its autotuner with Weka's M5P model trees, REP trees and an
SVM gate (Section 3.1.2).  Neither Weka nor scikit-learn is available in this
offline reproduction, so the algorithms are implemented here from scratch on
NumPy:

* :class:`repro.ml.tree.m5p.M5ModelTree` — regression tree grown with the
  standard-deviation-reduction criterion, linear models at the leaves,
  bottom-up pruning and smoothing (Quinlan's M5, Wang & Witten's M5');
* :class:`repro.ml.tree.reptree.REPTree` — variance-reduction tree with
  reduced-error pruning against a held-out pruning set;
* :class:`repro.ml.tree.linear_model.LinearModel` — ordinary least squares
  with optional attribute dropping (the baseline prior work found lacking);
* :class:`repro.ml.svm.LinearSVM` — linear soft-margin SVM trained with the
  Pegasos sub-gradient method (the "exploit parallelism?" gate);
* :mod:`repro.ml.crossval` — k-fold cross-validation and the >=90% accuracy
  acceptance criterion used during training.
"""

from repro.ml.dataset import Dataset
from repro.ml.metrics import accuracy, mae, mse, r2_score, rmse, within_tolerance
from repro.ml.svm import LinearSVM
from repro.ml.crossval import cross_val_score, kfold_indices, train_test_split
from repro.ml.tree.linear_model import LinearModel
from repro.ml.tree.reptree import REPTree
from repro.ml.tree.m5p import M5ModelTree

__all__ = [
    "Dataset",
    "accuracy",
    "mae",
    "mse",
    "r2_score",
    "rmse",
    "within_tolerance",
    "LinearSVM",
    "cross_val_score",
    "kfold_indices",
    "train_test_split",
    "LinearModel",
    "REPTree",
    "M5ModelTree",
]
