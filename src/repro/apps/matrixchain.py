"""Matrix-chain ordering — interval DP re-oriented onto the wavefront.

The full matrix-chain multiplication DP minimises over every split point of
an interval, which needs O(n) predecessors per cell and falls outside the
strict three-neighbour wavefront stencil (the same situation as the general
knapsack, see :mod:`repro.apps.knapsack`).  The wavefront-expressible
restriction implemented here considers the two *edge* splits only — multiply
the first or the last matrix of the chain into the rest:

    m[s, e] = 0                                           if s == e
    m[s, e] = min(m[s, e-1] + p[s] * p[e] * p[e+1],       (split off last)
                  m[s+1, e] + p[s] * p[s+1] * p[e+1])     (split off first)

a classic upper bound on the true optimum that is exact for monotone
dimension sequences.  Mapping grid cell ``(i, j)`` to the interval
``[s, e] = [n-1-i, j]`` turns "drop the last matrix" into the west
neighbour and "drop the first matrix" into the north neighbour, and keeps
chain length constant along every anti-diagonal — intervals are the
wavefronts.  Cells with ``e < s`` (below the single-matrix base diagonal)
are not meaningful intervals and evaluate to 0.

The kernel is of medium granularity on the synthetic scale (three multiplies
and a min per cell, ``tsize = 1``, ``dsize = 0``).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import WavefrontApplication
from repro.core.exceptions import InvalidParameterError
from repro.core.pattern import WavefrontKernel
from repro.utils.rng import make_rng

#: Synthetic-scale granularity of one chain-ordering cell.
CHAIN_TSIZE = 1.0
#: No per-cell payload beyond the DP value itself.
CHAIN_DSIZE = 0


class MatrixChainKernel(WavefrontKernel):
    """Edge-split matrix-chain ordering recurrence."""

    def __init__(self, dims: np.ndarray) -> None:
        dims = np.asarray(dims, dtype=float)
        if dims.ndim != 1 or dims.size < 2:
            raise InvalidParameterError(
                "dims must be a 1-D array of at least 2 matrix dimensions"
            )
        if np.any(dims <= 0):
            raise InvalidParameterError("matrix dimensions must be positive")
        self.dims = dims
        self.n = dims.size - 1  # number of matrices in the chain
        self.tsize = CHAIN_TSIZE
        self.dsize = CHAIN_DSIZE
        self.name = "matrix-chain"

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        """Vectorized matrix-chain recurrence over one anti-diagonal."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        n = self.n
        p = self.dims
        s = (n - 1) - (i % n)
        e = j % n
        last = west + p[s] * p[e] * p[e + 1]
        first = north + p[s] * p[s + 1] * p[e + 1]
        return np.where(e <= s, 0.0, np.minimum(last, first))

    def make_diagonal_evaluator(self, dim, boundary):
        """Fused sweep path: every ``p`` gather becomes a reversed-slice view.

        Along diagonal ``d`` both the interval start ``s = n-1-i`` and end
        ``e = d-i`` decrease as the row grows, so ``p[s]``, ``p[s+1]``,
        ``p[e]`` and ``p[e+1]`` are all contiguous slices of the reversed
        dimension vector.  Diagonals at or below the base (``d <= n-1``) are
        identically zero; all others are pure interior cells.
        """
        if dim != self.n:
            # The modular index wrap-around of diagonal() has no slice
            # equivalent; only the natural problem size gets the fast path.
            return None
        n = self.n
        p_rev = self.dims[::-1].copy()  # p_rev[k] == p[n - k]
        scratch = np.empty(dim)

        def evaluate(d, i_min, i_max, west, north, northwest, out):
            if d <= n - 1:
                out[:] = 0.0
                return
            m = i_max - i_min + 1
            t = scratch[:m]
            p_s = p_rev[i_min + 1 : i_max + 2]  # p[n-1-i]
            p_s1 = p_rev[i_min : i_max + 1]  # p[n-i]
            p_e = p_rev[n - d + i_min : n - d + i_min + m]  # p[d-i]
            p_e1 = p_rev[n - d + i_min - 1 : n - d + i_min - 1 + m]  # p[d-i+1]
            np.multiply(p_s, p_e, out=out)
            out *= p_e1
            out += west
            np.multiply(p_s, p_s1, out=t)
            t *= p_e1
            t += north
            np.minimum(out, t, out=out)

        return evaluate

    def optimum_edge_split(self) -> float:
        """Reference value of the edge-split DP, computed by a direct loop.

        Used by the tests to validate the grid sweep; note this is the
        restricted (first-or-last) recurrence, an upper bound on the full
        matrix-chain optimum.
        """
        n = self.n
        p = self.dims
        m = np.zeros((n, n))
        for length in range(2, n + 1):
            for s in range(0, n - length + 1):
                e = s + length - 1
                m[s, e] = min(
                    m[s, e - 1] + p[s] * p[e] * p[e + 1],
                    m[s + 1, e] + p[s] * p[s + 1] * p[e + 1],
                )
        return float(m[0, n - 1])


class MatrixChainApp(WavefrontApplication):
    """Edge-split matrix-chain ordering with random matrix dimensions."""

    name = "matrix-chain"
    default_dim = 128

    def __init__(
        self,
        dim: int | None = None,
        seed: int | None = None,
        max_dim_size: int = 64,
    ) -> None:
        if max_dim_size < 1:
            raise InvalidParameterError(
                f"max_dim_size must be >= 1, got {max_dim_size}"
            )
        if dim is not None:
            self.default_dim = int(dim)
        self.seed = seed
        self.max_dim_size = int(max_dim_size)

    def make_kernel(self) -> MatrixChainKernel:
        """Construct the matrix-chain kernel for the app's dimensions."""
        rng = make_rng(self.seed)
        dims = rng.integers(1, self.max_dim_size + 1, size=self.default_dim + 1)
        return MatrixChainKernel(dims)
