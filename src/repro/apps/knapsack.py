"""0/1 knapsack dynamic program — the paper's "future work" extension.

Section 6 of the paper names the 0/1 knapsack problem as the next dynamic
programming pattern the framework should support.  The general knapsack
recurrence reaches back an arbitrary number of columns (``w - weight[i]``),
which falls outside the strict wavefront stencil the framework supports; the
wavefront-expressible special case implemented here is the *unit-weight*
knapsack, where every item weighs one unit:

    V[i, w] = max(V[i-1, w], V[i-1, w-1] + value[i])

i.e. exactly the north / north-west dependencies of the wavefront pattern.
Row ``i`` considers the first ``i`` items and column ``w`` the capacity used.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import WavefrontApplication
from repro.core.exceptions import InvalidParameterError
from repro.core.pattern import WavefrontKernel
from repro.utils.rng import make_rng

#: Synthetic-scale granularity: comparable to Smith-Waterman (a max + add).
KNAPSACK_TSIZE = 0.5
#: No per-cell payload beyond the DP value itself.
KNAPSACK_DSIZE = 0


class KnapsackKernel(WavefrontKernel):
    """Unit-weight 0/1 knapsack recurrence."""

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        if values.ndim != 1 or values.size < 1:
            raise InvalidParameterError("values must be a non-empty 1-D array")
        if np.any(values < 0):
            raise InvalidParameterError("item values must be non-negative")
        self.values = values
        self.tsize = KNAPSACK_TSIZE
        self.dsize = KNAPSACK_DSIZE
        self.name = "knapsack"

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        """Vectorized knapsack recurrence over one anti-diagonal."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        item_value = self.values[i % self.values.size]
        # Capacity 0 (first column) can hold nothing: taking the item is only
        # allowed when at least one unit of capacity is used (j >= 1).
        take = np.where(j >= 1, northwest + item_value, 0.0)
        skip = north
        return np.maximum(take, skip)

    def make_diagonal_evaluator(self, dim, boundary):
        """Fused sweep path: row-tiled item values, two in-place ufuncs.

        The only ``j``-dependence of the recurrence is the ``j == 0`` column,
        which along one anti-diagonal is at most its last element (and only
        on the growing half of the sweep), so it is patched as one scalar.
        """
        row_values = self.values[np.arange(dim, dtype=np.int64) % self.values.size]

        def evaluate(d, i_min, i_max, west, north, northwest, out):
            np.add(northwest, row_values[i_min : i_max + 1], out=out)
            if i_max == d:  # last element sits in column j == 0
                out[i_max - i_min] = 0.0
            np.maximum(out, north, out=out)

        return evaluate

    def optimum(self, capacity: int, n_items: int | None = None) -> float:
        """Reference optimum computed directly (greedy on the best values).

        With unit weights the optimal choice is simply the ``capacity`` most
        valuable items among the first ``n_items``; the tests use this to
        validate the DP grid.
        """
        if capacity < 0:
            raise InvalidParameterError(f"capacity must be >= 0, got {capacity}")
        n_items = self.values.size if n_items is None else n_items
        pool = np.sort(self.values[:n_items])[::-1]
        return float(np.sum(pool[: min(capacity, pool.size)]))


class ExpectedKnapsackKernel(WavefrontKernel):
    """Moment-tracking expected-value knapsack over Bernoulli item values.

    The probabilistic extension of :class:`KnapsackKernel`: item ``i`` is
    worth ``values[i]`` with probability ``probs[i]`` and nothing otherwise
    (independent Bernoulli draws), still at unit weight.  The *policy* is
    fixed by the first-moment DP

        M1[i, w] = max(M1[i-1, w], M1[i-1, w-1] + p_i v_i)

    (ties take the item), i.e. the classic recurrence on expected values.
    What the wavefront grid carries is the **second moment** of the total
    value ``S`` collected by that policy:

        M2[i, w] = M2[i-1, w-1] + 2 M1[i-1, w-1] (p_i v_i) + p_i v_i^2
                                                if the policy takes item i,
        M2[i, w] = M2[i-1, w]                   otherwise,

    from ``E[(S + X)^2] = E[S^2] + 2 E[S] E[X] + E[X^2]`` for the
    independent Bernoulli increment ``X`` (``E[X] = p v``,
    ``E[X^2] = p v^2``).  Together with M1 this yields the exact variance of
    the stochastic payoff — the "moments of probabilistic loops" shape from
    the related work — while keeping the north / north-west stencil: the
    decision and increment tables are pure functions of ``(i, w)``
    precomputed from the M1 DP, so the grid recurrence is a masked choice
    between ``northwest + A[i, w]`` and ``north``.

    The *witness* is the policy itself: the indices of the items taken on
    the optimal-expected-value traceback from the corner cell, ascending.

    Tables are precomputed lazily per grid size (the M1 DP is a genuine
    O(dim^2) computation, not tileable modulo the item count) and cached on
    the kernel under a ``_cached_`` attribute, which the problem's pickling
    support already knows to drop.
    """

    def __init__(self, values: np.ndarray, probs: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        probs = np.asarray(probs, dtype=float)
        if values.ndim != 1 or values.size < 1:
            raise InvalidParameterError("values must be a non-empty 1-D array")
        if probs.shape != values.shape:
            raise InvalidParameterError("probs must match values' shape")
        if np.any(values < 0):
            raise InvalidParameterError("item values must be non-negative")
        if np.any(probs < 0) or np.any(probs > 1):
            raise InvalidParameterError("item probabilities must lie in [0, 1]")
        self.values = values
        self.probs = probs
        self.tsize = KNAPSACK_TSIZE
        self.dsize = KNAPSACK_DSIZE
        self.name = "knapsack-ev"
        self._cached_ev_tables: tuple | None = None

    def __getstate__(self) -> dict:
        """Drop the lazy table cache; workers rebuild it on first use."""
        state = dict(self.__dict__)
        state["_cached_ev_tables"] = None
        return state

    # ------------------------------------------------------------------
    def _tables(self, dim: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(take, add, m1) tables for a ``dim x dim`` grid, cached.

        ``take[i, w]`` is the policy decision at grid cell ``(i, w)``,
        ``add[i, w]`` the M2 increment applied when taking, and ``m1[i, w]``
        the first moment at the cell.  Row ``i`` of the grid considers
        items ``0 .. i`` (item indices modulo the item count), column ``w``
        is the capacity, with the framework's zero boundary as the empty
        prefix — exactly the :class:`KnapsackKernel` convention.
        """
        cached = self._cached_ev_tables
        if cached is not None and cached[0] >= dim:
            return cached[1][:dim, :dim], cached[2][:dim, :dim], cached[3][:dim, :dim]
        # Grow geometrically so incremental sweeps (serial per-diagonal
        # calls) trigger O(log dim) rebuilds, not one per diagonal.
        size = max(dim, self.values.size)
        if cached is not None:
            size = max(size, 2 * cached[0])
        n = self.values.size
        ev = self.probs * self.values  # E[X] per item
        ev2 = self.probs * self.values**2  # E[X^2] per item
        m1_prev = np.zeros(size)  # M1 of the previous row, capacities 0..size-1
        take = np.empty((size, size), dtype=bool)
        add = np.empty((size, size))
        m1 = np.empty((size, size))
        for i in range(size):
            gain = ev[i % n]
            cand = np.empty(size)
            cand[0] = -np.inf  # capacity 0 can never take
            np.add(m1_prev[:-1], gain, out=cand[1:])
            take[i] = cand >= m1_prev  # ties take the item
            add[i, 0] = 0.0
            add[i, 1:] = 2.0 * m1_prev[:-1] * gain + ev2[i % n]
            m1[i] = np.where(take[i], cand, m1_prev)
            m1_prev = m1[i]
        self._cached_ev_tables = (size, take, add, m1)
        return take[:dim, :dim], add[:dim, :dim], m1[:dim, :dim]

    def first_moment(self, dim: int) -> np.ndarray:
        """The M1 grid (expected total value) for a ``dim x dim`` problem."""
        return self._tables(dim)[2].copy()

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        """Vectorized second-moment recurrence over one anti-diagonal."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        dim = int(max(np.max(i), np.max(j))) + 1
        take, add, _ = self._tables(dim)
        return np.where(take[i, j], northwest + add[i, j], north)

    def make_diagonal_evaluator(self, dim, boundary):
        """Fused sweep path: flat decision/increment tables, one masked copy."""
        from repro.core import diagonal as dg

        take, add, _ = self._tables(dim)
        take_flat = np.ascontiguousarray(take).reshape(-1)
        add_flat = np.ascontiguousarray(add).reshape(-1)
        scratch = np.empty(dim)

        def evaluate(d, i_min, i_max, west, north, northwest, out):
            m = i_max - i_min + 1
            seg = dg.flat_diagonal_segment(d, dim, i_min, i_max)
            t = scratch[:m]
            np.add(northwest, add_flat[seg], out=t)
            np.copyto(out, north)
            np.copyto(out, t, where=take_flat[seg])

        return evaluate

    # ------------------------------------------------------------------
    def reconstruct_witness(self, values: np.ndarray) -> np.ndarray:
        """Item indices the policy takes on the corner-cell traceback.

        Walks the decision table from ``(dim-1, dim-1)``: a *take* records
        the row's item index and moves north-west, a *skip* moves north.
        Returns the ascending ``int64`` item indices (modulo the item
        count), i.e. the deterministic policy whose moments the grid holds.
        """
        dim = values.shape[0]
        take, _, _ = self._tables(dim)
        n = self.values.size
        chosen = []
        i, j = dim - 1, dim - 1
        while i >= 0:
            if take[i, j]:
                chosen.append(i % n)
                j -= 1
            i -= 1
        return np.asarray(chosen[::-1], dtype=np.int64)


class KnapsackApp(WavefrontApplication):
    """Unit-weight 0/1 knapsack application with random item values."""

    name = "knapsack"
    default_dim = 128

    def __init__(self, dim: int | None = None, seed: int | None = None, max_value: float = 10.0) -> None:
        if max_value <= 0:
            raise InvalidParameterError(f"max_value must be positive, got {max_value}")
        if dim is not None:
            self.default_dim = int(dim)
        self.seed = seed
        self.max_value = float(max_value)

    def make_kernel(self) -> KnapsackKernel:
        """Construct the knapsack kernel for the app's item values."""
        rng = make_rng(self.seed)
        values = rng.uniform(0.0, self.max_value, size=self.default_dim)
        return KnapsackKernel(values)


class ExpectedKnapsackApp(WavefrontApplication):
    """Expected-value knapsack with Bernoulli item values and moment tracking.

    Item values are drawn like :class:`KnapsackApp`'s; each item's success
    probability is uniform over ``(0.1, 0.9)`` so no decision is ever
    degenerate and the tie-take rule is exercised through repeated values.
    """

    name = "knapsack-ev"
    default_dim = 128

    def __init__(
        self,
        dim: int | None = None,
        seed: int | None = None,
        max_value: float = 10.0,
    ) -> None:
        if max_value <= 0:
            raise InvalidParameterError(f"max_value must be positive, got {max_value}")
        if dim is not None:
            self.default_dim = int(dim)
        self.seed = seed
        self.max_value = float(max_value)

    def make_kernel(self) -> ExpectedKnapsackKernel:
        """Construct the moment-tracking kernel for the app's random items."""
        rng = make_rng(self.seed)
        values = rng.uniform(0.0, self.max_value, size=self.default_dim)
        probs = rng.uniform(0.1, 0.9, size=self.default_dim)
        return ExpectedKnapsackKernel(values, probs)
