"""0/1 knapsack dynamic program — the paper's "future work" extension.

Section 6 of the paper names the 0/1 knapsack problem as the next dynamic
programming pattern the framework should support.  The general knapsack
recurrence reaches back an arbitrary number of columns (``w - weight[i]``),
which falls outside the strict wavefront stencil the framework supports; the
wavefront-expressible special case implemented here is the *unit-weight*
knapsack, where every item weighs one unit:

    V[i, w] = max(V[i-1, w], V[i-1, w-1] + value[i])

i.e. exactly the north / north-west dependencies of the wavefront pattern.
Row ``i`` considers the first ``i`` items and column ``w`` the capacity used.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import WavefrontApplication
from repro.core.exceptions import InvalidParameterError
from repro.core.pattern import WavefrontKernel
from repro.utils.rng import make_rng

#: Synthetic-scale granularity: comparable to Smith-Waterman (a max + add).
KNAPSACK_TSIZE = 0.5
#: No per-cell payload beyond the DP value itself.
KNAPSACK_DSIZE = 0


class KnapsackKernel(WavefrontKernel):
    """Unit-weight 0/1 knapsack recurrence."""

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        if values.ndim != 1 or values.size < 1:
            raise InvalidParameterError("values must be a non-empty 1-D array")
        if np.any(values < 0):
            raise InvalidParameterError("item values must be non-negative")
        self.values = values
        self.tsize = KNAPSACK_TSIZE
        self.dsize = KNAPSACK_DSIZE
        self.name = "knapsack"

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        """Vectorized knapsack recurrence over one anti-diagonal."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        item_value = self.values[i % self.values.size]
        # Capacity 0 (first column) can hold nothing: taking the item is only
        # allowed when at least one unit of capacity is used (j >= 1).
        take = np.where(j >= 1, northwest + item_value, 0.0)
        skip = north
        return np.maximum(take, skip)

    def make_diagonal_evaluator(self, dim, boundary):
        """Fused sweep path: row-tiled item values, two in-place ufuncs.

        The only ``j``-dependence of the recurrence is the ``j == 0`` column,
        which along one anti-diagonal is at most its last element (and only
        on the growing half of the sweep), so it is patched as one scalar.
        """
        row_values = self.values[np.arange(dim, dtype=np.int64) % self.values.size]

        def evaluate(d, i_min, i_max, west, north, northwest, out):
            np.add(northwest, row_values[i_min : i_max + 1], out=out)
            if i_max == d:  # last element sits in column j == 0
                out[i_max - i_min] = 0.0
            np.maximum(out, north, out=out)

        return evaluate

    def optimum(self, capacity: int, n_items: int | None = None) -> float:
        """Reference optimum computed directly (greedy on the best values).

        With unit weights the optimal choice is simply the ``capacity`` most
        valuable items among the first ``n_items``; the tests use this to
        validate the DP grid.
        """
        if capacity < 0:
            raise InvalidParameterError(f"capacity must be >= 0, got {capacity}")
        n_items = self.values.size if n_items is None else n_items
        pool = np.sort(self.values[:n_items])[::-1]
        return float(np.sum(pool[: min(capacity, pool.size)]))


class KnapsackApp(WavefrontApplication):
    """Unit-weight 0/1 knapsack application with random item values."""

    name = "knapsack"
    default_dim = 128

    def __init__(self, dim: int | None = None, seed: int | None = None, max_value: float = 10.0) -> None:
        if max_value <= 0:
            raise InvalidParameterError(f"max_value must be positive, got {max_value}")
        if dim is not None:
            self.default_dim = int(dim)
        self.seed = seed
        self.max_value = float(max_value)

    def make_kernel(self) -> KnapsackKernel:
        """Construct the knapsack kernel for the app's item values."""
        rng = make_rng(self.seed)
        values = rng.uniform(0.0, self.max_value, size=self.default_dim)
        return KnapsackKernel(values)
