"""Registry of the available wavefront applications."""

from __future__ import annotations

from typing import Callable

from repro.apps.base import WavefrontApplication
from repro.core.exceptions import UnknownApplicationError
from repro.apps.editdistance import EditDistanceApp
from repro.apps.knapsack import ExpectedKnapsackApp, KnapsackApp
from repro.apps.lcs import LCSApp
from repro.apps.matrixchain import MatrixChainApp
from repro.apps.nash import NashEquilibriumApp
from repro.apps.sequence import SequenceComparisonApp
from repro.apps.stochastic_path import StochasticPathApp
from repro.apps.synthetic import SyntheticApp
from repro.apps.viterbi import ViterbiApp

#: Application factories by name; each factory takes no required arguments.
APPLICATIONS: dict[str, Callable[[], WavefrontApplication]] = {
    "synthetic": SyntheticApp,
    "nash-equilibrium": NashEquilibriumApp,
    "sequence-comparison": SequenceComparisonApp,
    "knapsack": KnapsackApp,
    "knapsack-ev": ExpectedKnapsackApp,
    "edit-distance": EditDistanceApp,
    "lcs": LCSApp,
    "matrix-chain": MatrixChainApp,
    "stochastic-path": StochasticPathApp,
    "viterbi": ViterbiApp,
}


def get_application(name: str, **kwargs) -> WavefrontApplication:
    """Build a registered application by name.

    Keyword arguments are forwarded to the application's constructor, e.g.
    ``get_application("synthetic", dim=256, tsize=750)``.
    """
    try:
        factory = APPLICATIONS[name]
    except KeyError:
        known = ", ".join(sorted(APPLICATIONS))
        raise UnknownApplicationError(
            f"unknown application {name!r}; known: {known}"
        ) from None
    return factory(**kwargs)


def resolve_application(
    app: str | WavefrontApplication, **kwargs
) -> WavefrontApplication:
    """The one registry path every caller resolves applications through.

    Accepts either a registered name (constructed via
    :func:`get_application`, forwarding ``kwargs``) or an already-built
    :class:`~repro.apps.base.WavefrontApplication` instance (returned as-is;
    passing constructor ``kwargs`` alongside an instance is an error).
    """
    if isinstance(app, WavefrontApplication):
        if kwargs:
            raise UnknownApplicationError(
                f"cannot apply constructor arguments {sorted(kwargs)} to an "
                f"already-built application instance {app.name!r}"
            )
        return app
    return get_application(app, **kwargs)


def available_applications() -> list[str]:
    """Names of all registered applications, sorted."""
    return sorted(APPLICATIONS)
