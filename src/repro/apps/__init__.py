"""Wavefront applications.

* :class:`repro.apps.synthetic.SyntheticApp` — the parameterisable synthetic
  application used to train the autotuner (Section 3.1);
* :class:`repro.apps.nash.NashEquilibriumApp` — the coarse-grained
  game-theoretic evaluation application (Section 3.2.1);
* :class:`repro.apps.sequence.SequenceComparisonApp` — Smith-Waterman
  biological sequence comparison, the fine-grained evaluation application;
* :class:`repro.apps.knapsack.KnapsackApp` — the 0/1 knapsack dynamic
  program mentioned as future work (Section 6), included as an extension.
"""

from repro.apps.base import WavefrontApplication
from repro.apps.synthetic import SyntheticApp, SyntheticKernel
from repro.apps.nash import NashEquilibriumApp, NashKernel
from repro.apps.sequence import SequenceComparisonApp, SmithWatermanKernel, random_dna
from repro.apps.knapsack import KnapsackApp, KnapsackKernel
from repro.apps.registry import APPLICATIONS, get_application

__all__ = [
    "WavefrontApplication",
    "SyntheticApp",
    "SyntheticKernel",
    "NashEquilibriumApp",
    "NashKernel",
    "SequenceComparisonApp",
    "SmithWatermanKernel",
    "random_dna",
    "KnapsackApp",
    "KnapsackKernel",
    "APPLICATIONS",
    "get_application",
]
