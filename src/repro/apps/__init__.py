"""Wavefront applications.

* :class:`repro.apps.synthetic.SyntheticApp` — the parameterisable synthetic
  application used to train the autotuner (Section 3.1);
* :class:`repro.apps.nash.NashEquilibriumApp` — the coarse-grained
  game-theoretic evaluation application (Section 3.2.1);
* :class:`repro.apps.sequence.SequenceComparisonApp` — Smith-Waterman
  biological sequence comparison, the fine-grained evaluation application;
* :class:`repro.apps.knapsack.KnapsackApp` — the 0/1 knapsack dynamic
  program mentioned as future work (Section 6), included as an extension;
* :class:`repro.apps.editdistance.EditDistanceApp` — Needleman-Wunsch global
  alignment / edit distance, a second alignment-shaped recurrence;
* :class:`repro.apps.lcs.LCSApp` — longest common subsequence, the textbook
  zero-boundary wavefront DP;
* :class:`repro.apps.matrixchain.MatrixChainApp` — edge-split matrix-chain
  ordering, interval DP re-oriented onto the wavefront;
* :class:`repro.apps.viterbi.ViterbiApp` — banded-HMM Viterbi decoding,
  the max-product probabilistic recurrence with a state-path witness;
* :class:`repro.apps.stochastic_path.StochasticPathApp` — risk-sensitive
  expected cost of a random lattice walk, the log-space-sum recurrence;
* :class:`repro.apps.knapsack.ExpectedKnapsackApp` — expected-value
  knapsack over Bernoulli items tracking first and second moments.

All applications register themselves in :mod:`repro.apps.registry`; every
kernel is expressible both per-cell (:meth:`WavefrontKernel.cell`) and
diagonal-vectorized (:meth:`WavefrontKernel.diagonal`, optionally fused via
:meth:`WavefrontKernel.make_diagonal_evaluator`).
"""

from repro.apps.base import WavefrontApplication
from repro.apps.synthetic import SyntheticApp, SyntheticKernel
from repro.apps.nash import NashEquilibriumApp, NashKernel
from repro.apps.sequence import SequenceComparisonApp, SmithWatermanKernel, random_dna
from repro.apps.knapsack import (
    ExpectedKnapsackApp,
    ExpectedKnapsackKernel,
    KnapsackApp,
    KnapsackKernel,
)
from repro.apps.editdistance import EditDistanceApp, EditDistanceKernel
from repro.apps.lcs import LCSApp, LCSKernel
from repro.apps.matrixchain import MatrixChainApp, MatrixChainKernel
from repro.apps.stochastic_path import StochasticPathApp, StochasticPathKernel
from repro.apps.viterbi import ViterbiApp, ViterbiKernel
from repro.apps.registry import APPLICATIONS, get_application

__all__ = [
    "WavefrontApplication",
    "SyntheticApp",
    "SyntheticKernel",
    "NashEquilibriumApp",
    "NashKernel",
    "SequenceComparisonApp",
    "SmithWatermanKernel",
    "random_dna",
    "KnapsackApp",
    "KnapsackKernel",
    "EditDistanceApp",
    "EditDistanceKernel",
    "LCSApp",
    "LCSKernel",
    "MatrixChainApp",
    "MatrixChainKernel",
    "ViterbiApp",
    "ViterbiKernel",
    "StochasticPathApp",
    "StochasticPathKernel",
    "ExpectedKnapsackApp",
    "ExpectedKnapsackKernel",
    "APPLICATIONS",
    "get_application",
]
