"""Biological sequence comparison (Smith-Waterman local alignment).

The paper's fine-grained evaluation application: "a string alignment problem
from Bioinformatics, characterized by very large instances and very
fine-grained kernels", mapping to ``tsize = 0.5`` and ``dsize = 0`` on the
synthetic scale (Section 3.2.1).

The kernel is the classic Smith-Waterman recurrence with linear gap penalty:

    H[i, j] = max(0,
                  H[i-1, j-1] + score(a[i], b[j]),
                  H[i-1, j]   - gap,
                  H[i, j-1]   - gap)

The paper used real genome data; this reproduction generates synthetic DNA
sequences with a controllable similarity level (see DESIGN.md, substitution
table) — only the recurrence structure and its tiny per-cell cost matter to
the autotuner.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import WavefrontApplication
from repro.core.exceptions import InvalidParameterError
from repro.core.pattern import WavefrontKernel
from repro.utils.rng import make_rng

#: The synthetic-scale granularity of one Smith-Waterman cell.
SW_TSIZE = 0.5
#: The synthetic-scale data granularity of the sequence application.
SW_DSIZE = 0

#: DNA alphabet used by the synthetic sequence generator.
DNA_ALPHABET = np.array([0, 1, 2, 3], dtype=np.int8)  # A, C, G, T
DNA_LETTERS = "ACGT"


def random_dna(length: int, seed: int | None = None) -> np.ndarray:
    """Generate a random DNA sequence of ``length`` bases (encoded 0..3)."""
    if length < 1:
        raise InvalidParameterError(f"length must be >= 1, got {length}")
    rng = make_rng(seed)
    return rng.choice(DNA_ALPHABET, size=length)


def mutate(sequence: np.ndarray, rate: float, seed: int | None = None) -> np.ndarray:
    """Return a copy of ``sequence`` with a fraction ``rate`` of bases replaced.

    Used to build pairs of sequences with a controllable similarity level.
    """
    if not 0.0 <= rate <= 1.0:
        raise InvalidParameterError(f"rate must be in [0, 1], got {rate}")
    rng = make_rng(seed)
    out = np.array(sequence, dtype=np.int8, copy=True)
    flips = rng.random(out.size) < rate
    out[flips] = rng.choice(DNA_ALPHABET, size=int(flips.sum()))
    return out


def decode_dna(sequence: np.ndarray) -> str:
    """Human-readable string of an encoded DNA sequence."""
    return "".join(DNA_LETTERS[int(b)] for b in sequence)


class SmithWatermanKernel(WavefrontKernel):
    """Smith-Waterman local-alignment recurrence."""

    def __init__(
        self,
        seq_a: np.ndarray,
        seq_b: np.ndarray,
        match: float = 2.0,
        mismatch: float = -1.0,
        gap: float = 1.0,
    ) -> None:
        seq_a = np.asarray(seq_a, dtype=np.int8)
        seq_b = np.asarray(seq_b, dtype=np.int8)
        if seq_a.ndim != 1 or seq_b.ndim != 1:
            raise InvalidParameterError("sequences must be 1-D arrays")
        if gap < 0:
            raise InvalidParameterError(f"gap penalty must be >= 0, got {gap}")
        self.seq_a = seq_a
        self.seq_b = seq_b
        self.match = float(match)
        self.mismatch = float(mismatch)
        self.gap = float(gap)
        self.tsize = SW_TSIZE
        self.dsize = SW_DSIZE
        self.name = "smith-waterman"

    def substitution(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Match/mismatch score of aligning base ``a[i]`` with ``b[j]``."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        same = self.seq_a[i % self.seq_a.size] == self.seq_b[j % self.seq_b.size]
        return np.where(same, self.match, self.mismatch)

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        """Vectorized Smith-Waterman recurrence over one anti-diagonal."""
        score = northwest + self.substitution(i, j)
        candidates = np.stack(
            [np.zeros_like(score), score, north - self.gap, west - self.gap]
        )
        return np.max(candidates, axis=0)

    def make_diagonal_evaluator(self, dim, boundary):
        """Fused sweep path: one precomputed ``dim x dim`` substitution grid.

        Diagonals of the substitution grid are zero-copy strided slices, so
        each anti-diagonal of the recurrence reduces to six in-place ufuncs
        (an add and three maxima) with a single scratch vector.
        """
        from repro.core import diagonal as dg

        idx = np.arange(dim, dtype=np.int64)
        sub = np.where(
            self.seq_a[idx % self.seq_a.size][:, None]
            == self.seq_b[idx % self.seq_b.size][None, :],
            self.match,
            self.mismatch,
        )
        sub_flat = sub.reshape(-1)
        gap = self.gap
        scratch = np.empty(dim)

        def evaluate(d, i_min, i_max, west, north, northwest, out):
            m = i_max - i_min + 1
            t = scratch[:m]
            np.add(northwest, sub_flat[dg.flat_diagonal_segment(d, dim, i_min, i_max)], out=out)
            np.maximum(out, 0.0, out=out)
            np.subtract(north, gap, out=t)
            np.maximum(out, t, out=out)
            np.subtract(west, gap, out=t)
            np.maximum(out, t, out=out)

        return evaluate


class SequenceComparisonApp(WavefrontApplication):
    """The biological sequence comparison evaluation application."""

    name = "sequence-comparison"
    default_dim = 512  # "characterized by very large instances"

    def __init__(
        self,
        dim: int | None = None,
        similarity: float = 0.7,
        seed: int | None = None,
        match: float = 2.0,
        mismatch: float = -1.0,
        gap: float = 1.0,
    ) -> None:
        if not 0.0 <= similarity <= 1.0:
            raise InvalidParameterError(
                f"similarity must be in [0, 1], got {similarity}"
            )
        if dim is not None:
            self.default_dim = int(dim)
        self.similarity = similarity
        self.seed = seed
        self.match = match
        self.mismatch = mismatch
        self.gap = gap

    def make_kernel(self) -> SmithWatermanKernel:
        """Construct the Smith-Waterman kernel for the app's sequences."""
        seq_a = random_dna(self.default_dim, seed=self.seed)
        seq_b = mutate(seq_a, rate=1.0 - self.similarity, seed=self.seed)
        return SmithWatermanKernel(
            seq_a, seq_b, match=self.match, mismatch=self.mismatch, gap=self.gap
        )
