"""The synthetic wavefront application used for training (Section 3.1).

Each element of the synthetic application carries two ints and ``dsize``
floats; the kernel performs ``tsize`` units of work per element.  In this
reproduction the kernel's *value* function is a cheap, deterministic mixture
of the three wavefront neighbours plus a position-dependent term, so the
functional executors can validate correctness quickly; ``tsize`` remains the
granularity the cost model charges for.  Setting ``emulate_work=True`` makes
the kernel really spin a work loop proportional to ``tsize`` (capped), which
the calibration example uses to relate simulated and wall-clock time.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import WavefrontApplication
from repro.core.exceptions import InvalidParameterError
from repro.core.pattern import WavefrontKernel

#: Upper bound on the emulated work loop so functional runs stay interactive.
MAX_EMULATED_ITERATIONS = 2000


class SyntheticKernel(WavefrontKernel):
    """Parameterisable kernel of the synthetic application."""

    def __init__(
        self,
        tsize: float = 100.0,
        dsize: int = 1,
        emulate_work: bool = False,
        seed_term: float = 0.01,
    ) -> None:
        if tsize <= 0:
            raise InvalidParameterError(f"tsize must be positive, got {tsize}")
        if dsize < 0:
            raise InvalidParameterError(f"dsize must be >= 0, got {dsize}")
        self.tsize = float(tsize)
        self.dsize = int(dsize)
        self.emulate_work = emulate_work
        self.seed_term = float(seed_term)
        self.name = "synthetic"

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        """Vectorized synthetic recurrence over one anti-diagonal."""
        i = np.asarray(i, dtype=float)
        j = np.asarray(j, dtype=float)
        value = (west + north + northwest) / 3.0 + self.seed_term * (1.0 + (i + 2.0 * j) % 7.0)
        if self.emulate_work:
            iterations = int(min(self.tsize, MAX_EMULATED_ITERATIONS))
            acc = value.copy()
            for _ in range(iterations):
                acc = acc * 0.999 + 0.001
            # The emulated work must not change the recurrence's result, only
            # burn time; fold it in with weight zero.
            value = value + 0.0 * acc
        return value

    def make_diagonal_evaluator(self, dim, boundary):
        """Fused sweep path: the position term ``s * (1 + (i + 2j) % 7)``.

        Along diagonal ``d`` the term equals ``s * (1 + (2d - i) % 7)`` — a
        7-periodic function of the row — so one precomputed table of length
        ``dim + 7`` serves every diagonal as a plain slice, and each diagonal
        costs four in-place ufuncs with no temporaries.
        """
        if self.emulate_work:
            # The emulated work loop exists to burn wall-clock time; keep the
            # generic path so calibration measurements stay meaningful.
            return None
        seed_term = self.seed_term
        t = np.arange(dim + 7)
        # table[t0 + r] == s * (1 + (2d - (i_min + r)) % 7) when
        # t0 == (i_min - 2d) mod 7; bit-identical to the float arithmetic of
        # diagonal() because the operands are small exact integers.
        table = seed_term * (1.0 + (-t) % 7)

        def evaluate(d, i_min, i_max, west, north, northwest, out):
            m = i_max - i_min + 1
            np.add(west, north, out=out)
            out += northwest
            out /= 3.0
            t0 = (i_min - 2 * d) % 7
            out += table[t0 : t0 + m]

        return evaluate


class SyntheticApp(WavefrontApplication):
    """Synthetic application instance with fixed (tsize, dsize)."""

    name = "synthetic"
    default_dim = 128

    def __init__(
        self,
        dim: int | None = None,
        tsize: float = 100.0,
        dsize: int = 1,
        emulate_work: bool = False,
    ) -> None:
        self.tsize = float(tsize)
        self.dsize = int(dsize)
        self.emulate_work = emulate_work
        if dim is not None:
            self.default_dim = int(dim)

    def make_kernel(self) -> SyntheticKernel:
        """Construct the synthetic kernel with the app's (tsize, dsize)."""
        return SyntheticKernel(
            tsize=self.tsize, dsize=self.dsize, emulate_work=self.emulate_work
        )

    @classmethod
    def from_input_params(cls, params) -> "SyntheticApp":
        """Build the synthetic app matching an :class:`InputParams` instance."""
        return cls(dim=params.dim, tsize=params.tsize, dsize=params.dsize)
