"""Longest common subsequence (LCS) of two synthetic sequences.

The textbook wavefront dynamic program:

    L[i, j] = L[i-1, j-1] + 1              if a[i] == b[j]
              max(L[i-1, j], L[i, j-1])    otherwise

with zero boundaries — which is exactly the framework's constant-boundary
convention, so unlike :mod:`repro.apps.editdistance` the kernel needs no
virtual first row/column.  Cell ``(dim-1, dim-1)`` holds the LCS length of
the two full sequences.

On the synthetic scale the kernel is as fine-grained as Smith-Waterman
(``tsize = 0.5``, ``dsize = 0``): one comparison and one max per cell.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import WavefrontApplication
from repro.apps.sequence import mutate, random_dna
from repro.core.exceptions import InvalidParameterError
from repro.core.pattern import WavefrontKernel

#: Synthetic-scale granularity of one LCS cell.
LCS_TSIZE = 0.5
#: No per-cell payload beyond the DP value itself.
LCS_DSIZE = 0


class LCSKernel(WavefrontKernel):
    """Longest-common-subsequence recurrence."""

    def __init__(self, seq_a: np.ndarray, seq_b: np.ndarray) -> None:
        seq_a = np.asarray(seq_a, dtype=np.int8)
        seq_b = np.asarray(seq_b, dtype=np.int8)
        if seq_a.ndim != 1 or seq_b.ndim != 1:
            raise InvalidParameterError("sequences must be 1-D arrays")
        self.seq_a = seq_a
        self.seq_b = seq_b
        self.tsize = LCS_TSIZE
        self.dsize = LCS_DSIZE
        self.name = "lcs"

    def matches(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Boolean mask of positions where ``a[i] == b[j]``."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        return self.seq_a[i % self.seq_a.size] == self.seq_b[j % self.seq_b.size]

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        """Vectorized LCS recurrence over one anti-diagonal."""
        return np.where(
            self.matches(i, j), northwest + 1.0, np.maximum(north, west)
        )

    def make_diagonal_evaluator(self, dim, boundary):
        """Fused sweep path: precomputed match mask, three ufuncs per diagonal.

        The zero boundary is the recurrence's natural base case, so no edge
        patching is needed anywhere in the sweep.
        """
        from repro.core import diagonal as dg

        idx = np.arange(dim, dtype=np.int64)
        match = (
            self.seq_a[idx % self.seq_a.size][:, None]
            == self.seq_b[idx % self.seq_b.size][None, :]
        )
        match_flat = match.reshape(-1)
        scratch = np.empty(dim)

        def evaluate(d, i_min, i_max, west, north, northwest, out):
            m = i_max - i_min + 1
            t = scratch[:m]
            np.add(northwest, 1.0, out=t)
            np.maximum(north, west, out=out)
            np.copyto(out, t, where=match_flat[dg.flat_diagonal_segment(d, dim, i_min, i_max)])

        return evaluate


class LCSApp(WavefrontApplication):
    """LCS of two synthetic DNA sequences with controllable similarity."""

    name = "lcs"
    default_dim = 512  # fine-grained kernel, large instances

    def __init__(
        self,
        dim: int | None = None,
        similarity: float = 0.7,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= similarity <= 1.0:
            raise InvalidParameterError(
                f"similarity must be in [0, 1], got {similarity}"
            )
        if dim is not None:
            self.default_dim = int(dim)
        self.similarity = similarity
        self.seed = seed

    def make_kernel(self) -> LCSKernel:
        """Construct the LCS kernel for the app's sequences."""
        seq_a = random_dna(self.default_dim, seed=self.seed)
        seq_b = mutate(seq_a, rate=1.0 - self.similarity, seed=self.seed)
        return LCSKernel(seq_a, seq_b)
