"""Nash-equilibrium evaluation application (Section 3.2.1).

The paper describes it as "a game-theoretic problem in economics,
characterized by small instances but a very computationally demanding
kernel", whose granularity parameter controls the iteration count of a
nested loop, and maps one iteration to ``tsize = 750`` and ``dsize = 4`` on
the synthetic scale.

The reproduction implements the kernel as an iterated best-response update:
each cell blends the payoffs implied by its west / north / north-west
predecessors and then runs a short damped fixed-point loop towards the local
equilibrium value.  The inner loop is what gives the kernel its coarse
granularity; its functional iteration count is kept small by default so the
tests stay fast, while the ``tsize`` metadata keeps the full granularity the
autotuner reasons about.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import WavefrontApplication
from repro.core.exceptions import InvalidParameterError
from repro.core.pattern import WavefrontKernel

#: The synthetic-scale granularity the paper assigns to one Nash iteration.
NASH_TSIZE = 750.0
#: The synthetic-scale data granularity of the Nash application.
NASH_DSIZE = 4


class NashKernel(WavefrontKernel):
    """Iterated best-response kernel."""

    def __init__(self, inner_iterations: int = 8, damping: float = 0.5) -> None:
        if inner_iterations < 1:
            raise InvalidParameterError(
                f"inner_iterations must be >= 1, got {inner_iterations}"
            )
        if not 0.0 < damping <= 1.0:
            raise InvalidParameterError(f"damping must be in (0, 1], got {damping}")
        self.inner_iterations = int(inner_iterations)
        self.damping = float(damping)
        self.tsize = NASH_TSIZE
        self.dsize = NASH_DSIZE
        self.name = "nash-equilibrium"

    def _payoff(self, i: np.ndarray, j: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Deterministic payoff surface of the two-player row/column game."""
        row_pref = ((3.0 * i + 1.0) % 11.0) / 11.0
        col_pref = ((5.0 * j + 2.0) % 13.0) / 13.0
        return 0.5 * (row_pref + col_pref) + 0.25 * np.tanh(v)

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        """Vectorized best-response recurrence over one anti-diagonal."""
        i = np.asarray(i, dtype=float)
        j = np.asarray(j, dtype=float)
        # The predecessors act as the opponents' announced strategies.
        value = 0.4 * west + 0.4 * north + 0.2 * northwest
        for _ in range(self.inner_iterations):
            value = (1.0 - self.damping) * value + self.damping * self._payoff(i, j, value)
        return value

    def make_diagonal_evaluator(self, dim, boundary):
        """Fused sweep path for the best-response iteration.

        The payoff's row preference is 11-periodic in ``i`` and its column
        preference 13-periodic in ``j``; along a diagonal both become plain
        slices of precomputed tables, so the static half of the payoff is
        built once per diagonal and each inner iteration costs four in-place
        ufuncs (with ``tanh`` dominating, exactly as in the scalar path).
        """
        i_all = np.arange(dim, dtype=float)
        row_pref = ((3.0 * i_all + 1.0) % 11.0) / 11.0
        # col_table[t0 + r] == ((5 * (d - i_min - r) + 2) % 13) / 13 when
        # t0 == (i_min - d) mod 13 (same periodic-slice trick as synthetic).
        t = np.arange(dim + 13, dtype=np.int64)
        col_table = ((5.0 * ((-t) % 13) + 2.0) % 13.0) / 13.0
        damping = self.damping
        keep = 1.0 - damping
        iters = self.inner_iterations
        half = np.empty(dim)
        scratch = np.empty(dim)

        def evaluate(d, i_min, i_max, west, north, northwest, out):
            m = i_max - i_min + 1
            p0 = half[:m]
            s = scratch[:m]
            t0 = (i_min - d) % 13
            # Static payoff half: 0.5 * (row_pref + col_pref).
            np.add(row_pref[i_min : i_max + 1], col_table[t0 : t0 + m], out=p0)
            p0 *= 0.5
            # Seed: 0.4 * west + 0.4 * north + 0.2 * northwest.
            np.multiply(west, 0.4, out=out)
            np.multiply(north, 0.4, out=s)
            out += s
            np.multiply(northwest, 0.2, out=s)
            out += s
            for _ in range(iters):
                np.tanh(out, out=s)
                s *= 0.25
                s += p0
                out *= keep
                s *= damping
                out += s

        return evaluate


class NashEquilibriumApp(WavefrontApplication):
    """The Nash-equilibrium evaluation application."""

    name = "nash-equilibrium"
    default_dim = 96  # "characterized by small instances"

    def __init__(self, dim: int | None = None, inner_iterations: int = 8) -> None:
        self.inner_iterations = inner_iterations
        if dim is not None:
            self.default_dim = int(dim)

    def make_kernel(self) -> NashKernel:
        """Construct the Nash-equilibrium kernel for the app's payoffs."""
        return NashKernel(inner_iterations=self.inner_iterations)
