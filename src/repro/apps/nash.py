"""Nash-equilibrium evaluation application (Section 3.2.1).

The paper describes it as "a game-theoretic problem in economics,
characterized by small instances but a very computationally demanding
kernel", whose granularity parameter controls the iteration count of a
nested loop, and maps one iteration to ``tsize = 750`` and ``dsize = 4`` on
the synthetic scale.

The reproduction implements the kernel as an iterated best-response update:
each cell blends the payoffs implied by its west / north / north-west
predecessors and then runs a short damped fixed-point loop towards the local
equilibrium value.  The inner loop is what gives the kernel its coarse
granularity; its functional iteration count is kept small by default so the
tests stay fast, while the ``tsize`` metadata keeps the full granularity the
autotuner reasons about.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import WavefrontApplication
from repro.core.exceptions import InvalidParameterError
from repro.core.pattern import WavefrontKernel

#: The synthetic-scale granularity the paper assigns to one Nash iteration.
NASH_TSIZE = 750.0
#: The synthetic-scale data granularity of the Nash application.
NASH_DSIZE = 4


class NashKernel(WavefrontKernel):
    """Iterated best-response kernel."""

    def __init__(self, inner_iterations: int = 8, damping: float = 0.5) -> None:
        if inner_iterations < 1:
            raise InvalidParameterError(
                f"inner_iterations must be >= 1, got {inner_iterations}"
            )
        if not 0.0 < damping <= 1.0:
            raise InvalidParameterError(f"damping must be in (0, 1], got {damping}")
        self.inner_iterations = int(inner_iterations)
        self.damping = float(damping)
        self.tsize = NASH_TSIZE
        self.dsize = NASH_DSIZE
        self.name = "nash-equilibrium"

    def _payoff(self, i: np.ndarray, j: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Deterministic payoff surface of the two-player row/column game."""
        row_pref = ((3.0 * i + 1.0) % 11.0) / 11.0
        col_pref = ((5.0 * j + 2.0) % 13.0) / 13.0
        return 0.5 * (row_pref + col_pref) + 0.25 * np.tanh(v)

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        i = np.asarray(i, dtype=float)
        j = np.asarray(j, dtype=float)
        # The predecessors act as the opponents' announced strategies.
        value = 0.4 * west + 0.4 * north + 0.2 * northwest
        for _ in range(self.inner_iterations):
            value = (1.0 - self.damping) * value + self.damping * self._payoff(i, j, value)
        return value


class NashEquilibriumApp(WavefrontApplication):
    """The Nash-equilibrium evaluation application."""

    name = "nash-equilibrium"
    default_dim = 96  # "characterized by small instances"

    def __init__(self, dim: int | None = None, inner_iterations: int = 8) -> None:
        self.inner_iterations = inner_iterations
        if dim is not None:
            self.default_dim = int(dim)

    def make_kernel(self) -> NashKernel:
        return NashKernel(inner_iterations=self.inner_iterations)
