"""Global sequence alignment / edit distance (Needleman-Wunsch).

The global counterpart of the Smith-Waterman evaluation application: the
classic Levenshtein / Needleman-Wunsch recurrence with unit (or configurable)
gap and mismatch costs,

    D[r, c] = min(D[r-1, c] + gap,
                  D[r, c-1] + gap,
                  D[r-1, c-1] + sub(a[r], b[c]))

over the ``(len(a)+1) x (len(b)+1)`` table with first row/column ``c * gap``
and ``r * gap``.  Grid cell ``(i, j)`` holds ``D[i+1, j+1]``; the virtual
first row and column live outside the grid, so the kernel substitutes the
``(j+1)*gap`` / ``(i+1)*gap`` boundary terms itself from the cell's indices —
the wavefront framework only ever supplies a constant boundary value.

Like Smith-Waterman this is a very fine-grained kernel on the synthetic
scale (``tsize = 0.5``, ``dsize = 0``); it exists to exercise the tuner on a
second alignment-shaped recurrence whose dependency stencil uses all three
neighbours.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import WavefrontApplication
from repro.apps.sequence import mutate, random_dna
from repro.core.exceptions import InvalidParameterError
from repro.core.pattern import WavefrontKernel

#: Synthetic-scale granularity of one edit-distance cell (a 3-way min).
EDIT_TSIZE = 0.5
#: No per-cell payload beyond the DP value itself.
EDIT_DSIZE = 0


class EditDistanceKernel(WavefrontKernel):
    """Needleman-Wunsch global-alignment recurrence."""

    def __init__(
        self,
        seq_a: np.ndarray,
        seq_b: np.ndarray,
        gap: float = 1.0,
        mismatch: float = 1.0,
    ) -> None:
        seq_a = np.asarray(seq_a, dtype=np.int8)
        seq_b = np.asarray(seq_b, dtype=np.int8)
        if seq_a.ndim != 1 or seq_b.ndim != 1:
            raise InvalidParameterError("sequences must be 1-D arrays")
        if gap <= 0:
            raise InvalidParameterError(f"gap cost must be positive, got {gap}")
        if mismatch < 0:
            raise InvalidParameterError(f"mismatch cost must be >= 0, got {mismatch}")
        self.seq_a = seq_a
        self.seq_b = seq_b
        self.gap = float(gap)
        self.mismatch = float(mismatch)
        self.tsize = EDIT_TSIZE
        self.dsize = EDIT_DSIZE
        self.name = "edit-distance"

    def substitution(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Substitution cost of aligning base ``a[i]`` with ``b[j]`` (0 on match)."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        same = self.seq_a[i % self.seq_a.size] == self.seq_b[j % self.seq_b.size]
        return np.where(same, 0.0, self.mismatch)

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        """Vectorized edit-distance recurrence over one anti-diagonal."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        gap = self.gap
        # Out-of-grid neighbours are the virtual first row/column of the
        # (len+1)-sized table, not the framework's constant boundary.
        north_e = np.where(i > 0, north, (j + 1.0) * gap)
        west_e = np.where(j > 0, west, (i + 1.0) * gap)
        nw_e = np.where(
            (i > 0) & (j > 0), northwest, np.where(i == 0, j * gap, i * gap)
        )
        sub = self.substitution(i, j)
        return np.minimum(np.minimum(north_e + gap, west_e + gap), nw_e + sub)

    def make_diagonal_evaluator(self, dim, boundary):
        """Fused sweep path: precomputed substitution grid, scalar edge fixes.

        Interior cells are three in-place ufunc pairs; the virtual first
        row/column only ever touches the two end elements of a diagonal on
        the growing half of the sweep, patched as scalars.
        """
        from repro.core import diagonal as dg

        idx = np.arange(dim, dtype=np.int64)
        sub = np.where(
            self.seq_a[idx % self.seq_a.size][:, None]
            == self.seq_b[idx % self.seq_b.size][None, :],
            0.0,
            self.mismatch,
        )
        sub_flat = sub.reshape(-1)
        gap = self.gap
        scratch = np.empty(dim)

        def evaluate(d, i_min, i_max, west, north, northwest, out):
            m = i_max - i_min + 1
            t = scratch[:m]
            np.add(northwest, sub_flat[dg.flat_diagonal_segment(d, dim, i_min, i_max)], out=out)
            np.add(north, gap, out=t)
            np.minimum(out, t, out=out)
            np.add(west, gap, out=t)
            np.minimum(out, t, out=out)
            if i_min == 0:
                # First element is cell (0, d): north/north-west come from
                # the virtual first row.  Recompute the full scalar min with
                # the same float arithmetic as diagonal().
                west0 = west[0] if d > 0 else 1.0 * gap
                sub0 = sub_flat[d]
                out[0] = min((d + 1.0) * gap + gap, west0 + gap, d * gap + sub0)
            if d - i_max == 0 and d >= 1:
                # Last element is cell (d, 0): west/north-west from the
                # virtual first column.
                subl = sub_flat[d * dim]
                out[m - 1] = min(
                    north[m - 1] + gap, (d + 1.0) * gap + gap, d * gap + subl
                )

        return evaluate


class EditDistanceApp(WavefrontApplication):
    """Global alignment of two synthetic DNA sequences."""

    name = "edit-distance"
    default_dim = 512  # large, fine-grained instances like sequence-comparison

    def __init__(
        self,
        dim: int | None = None,
        similarity: float = 0.7,
        seed: int | None = None,
        gap: float = 1.0,
        mismatch: float = 1.0,
    ) -> None:
        if not 0.0 <= similarity <= 1.0:
            raise InvalidParameterError(
                f"similarity must be in [0, 1], got {similarity}"
            )
        if dim is not None:
            self.default_dim = int(dim)
        self.similarity = similarity
        self.seed = seed
        self.gap = gap
        self.mismatch = mismatch

    def make_kernel(self) -> EditDistanceKernel:
        """Construct the edit-distance kernel for the app's sequences."""
        seq_a = random_dna(self.default_dim, seed=self.seed)
        seq_b = mutate(seq_a, rate=1.0 - self.similarity, seed=self.seed)
        return EditDistanceKernel(seq_a, seq_b, gap=self.gap, mismatch=self.mismatch)
