"""Base class for wavefront applications.

An *application* bundles a kernel family with metadata (name, the synthetic
scale it maps to, sensible default sizes) and knows how to build concrete
:class:`repro.core.pattern.WavefrontProblem` instances of any requested
``dim``.  The autotuner only ever sees the problem's (dim, tsize, dsize)
features, exactly as in the paper.
"""

from __future__ import annotations

import abc

from repro.core.exceptions import InvalidParameterError
from repro.core.params import InputParams
from repro.core.pattern import WavefrontKernel, WavefrontProblem


class WavefrontApplication(abc.ABC):
    """A family of wavefront problems sharing one kernel."""

    #: Application name used in reports and the registry.
    name: str = "application"
    #: Default problem size used by examples when none is given.
    default_dim: int = 128

    @abc.abstractmethod
    def make_kernel(self) -> WavefrontKernel:
        """Build the application's kernel."""

    def problem(self, dim: int | None = None) -> WavefrontProblem:
        """Build a concrete problem instance of side length ``dim``."""
        dim = self.default_dim if dim is None else dim
        if dim < 2:
            raise InvalidParameterError(f"dim must be >= 2, got {dim}")
        return WavefrontProblem(dim=dim, kernel=self.make_kernel(), name=self.name)

    def input_params(self, dim: int | None = None) -> InputParams:
        """The (dim, tsize, dsize) characteristics of an instance."""
        return self.problem(dim).input_params()

    def describe(self) -> str:
        """One-line description used by the examples and reports."""
        kernel = self.make_kernel()
        return (
            f"{self.name}: tsize={kernel.tsize:g}, dsize={kernel.dsize}, "
            f"default dim={self.default_dim}"
        )
