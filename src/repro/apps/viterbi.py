"""Viterbi decoding of a left-to-right (Bakis) HMM — max-product in log space.

The first member of the probabilistic application family: a hidden Markov
model whose transition structure is *banded* — from state ``s`` the chain
either **stays** in ``s`` or **advances** to ``s + 1`` — which maps the
classic Viterbi max-product recurrence exactly onto the wavefront stencil.
With row ``i`` the time step and column ``j`` the state,

    V[0, j] = log pi[j] + log emit[0, j]
    V[i, j] = log emit[i, j] + max(V[i-1, j]   + log stay[j],
                                   V[i-1, j-1] + log adv[j])      (j >= 1)
    V[i, 0] = log emit[i, 0] + V[i-1, 0] + log stay[0]

i.e. precisely the north / north-west dependencies of the framework.  All
probabilities are drawn strictly positive, so every grid value is finite and
the engine's finiteness guarantees hold unchanged; the *semiring* arithmetic
(log-space products as sums, max as the combiner) routes through the shared
:func:`repro.runtime.compute.max_product_pair` primitive so every backend
evaluates one definition.

Because ``max`` introduces no rounding, the whole recurrence is **bit-exact**
against a pure-Python reference that performs the same IEEE additions — the
property the differential battery (``tests/property/test_stochastic_apps``)
asserts with strict equality, ties included.

The decoded *witness* is the most probable state path: a length-``dim``
``int64`` array, one state per time row, reconstructed by
:meth:`ViterbiKernel.reconstruct_witness` tracing the argmax decisions
backwards from the best final state.  Ties break deterministically toward
the **lower state index** — both at the final-state argmax and at every
stay-vs-advance decision (advance comes from ``j - 1 < j``, so an exact tie
prefers advance), matching a reference that scans predecessor states in
ascending order and keeps the first maximum.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import WavefrontApplication
from repro.core.exceptions import InvalidParameterError
from repro.core.pattern import WavefrontKernel
from repro.runtime.compute import max_product_pair
from repro.utils.rng import make_rng

#: Synthetic-scale granularity: two adds + one max per cell, marginally
#: coarser than the pure comparison kernels (LCS / knapsack at 0.5).
VITERBI_TSIZE = 0.75
#: No per-cell payload beyond the DP value itself.
VITERBI_DSIZE = 0


class ViterbiKernel(WavefrontKernel):
    """Banded-HMM Viterbi max-product recurrence in log space.

    ``log_pi`` is the initial state distribution, ``log_stay`` / ``log_adv``
    the per-state self-loop and advance log-probabilities, and ``log_emit``
    the ``(time, state)`` emission log-likelihood table — all finite (the
    app draws strictly positive probabilities).  Tables are indexed modulo
    their length, following the convention of every other registered kernel,
    so one kernel serves any grid size.
    """

    def __init__(
        self,
        log_pi: np.ndarray,
        log_stay: np.ndarray,
        log_adv: np.ndarray,
        log_emit: np.ndarray,
    ) -> None:
        log_pi = np.asarray(log_pi, dtype=float)
        log_stay = np.asarray(log_stay, dtype=float)
        log_adv = np.asarray(log_adv, dtype=float)
        log_emit = np.asarray(log_emit, dtype=float)
        if log_pi.ndim != 1 or log_pi.size < 1:
            raise InvalidParameterError("log_pi must be a non-empty 1-D array")
        if log_stay.shape != log_pi.shape or log_adv.shape != log_pi.shape:
            raise InvalidParameterError(
                "log_stay and log_adv must match log_pi's shape"
            )
        if log_emit.ndim != 2:
            raise InvalidParameterError("log_emit must be a 2-D (time, state) array")
        for name, table in (
            ("log_pi", log_pi),
            ("log_stay", log_stay),
            ("log_adv", log_adv),
            ("log_emit", log_emit),
        ):
            if not np.all(np.isfinite(table)):
                raise InvalidParameterError(
                    f"{name} must be finite (strictly positive probabilities)"
                )
        self.log_pi = log_pi
        self.log_stay = log_stay
        self.log_adv = log_adv
        self.log_emit = log_emit
        self.tsize = VITERBI_TSIZE
        self.dsize = VITERBI_DSIZE
        self.name = "viterbi"

    # ------------------------------------------------------------------
    def _emit(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Emission log-likelihoods of the cells ``(i, j)`` (modulo tables)."""
        return self.log_emit[i % self.log_emit.shape[0], j % self.log_emit.shape[1]]

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        """Vectorized Viterbi recurrence over one anti-diagonal."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        n_states = self.log_pi.size
        stay = north + self.log_stay[j % n_states]
        adv = northwest + self.log_adv[j % n_states]
        best = max_product_pair(np.where(j >= 1, adv, -np.inf), stay)
        values = self._emit(i, j) + best
        # Time step 0 scores from the initial distribution, not from the
        # (boundary-valued) previous row.
        return np.where(i == 0, self.log_pi[j % n_states] + self._emit(i, j), values)

    def make_diagonal_evaluator(self, dim, boundary):
        """Fused sweep path: row-0 / column-0 cells patched as scalars.

        On an anti-diagonal, ``i == 0`` is at most the first element (when
        ``i_min == 0``) and ``j == 0`` at most the last (when ``i_max == d``),
        so both corrections are scalar writes; everything in between is the
        interior recurrence evaluated with in-place ufuncs through the
        shared :func:`~repro.runtime.compute.max_product_pair` primitive.
        """
        from repro.core import diagonal as dg

        idx = np.arange(dim, dtype=np.int64)
        n_states = self.log_pi.size
        stay_col = self.log_stay[idx % n_states]
        adv_col = self.log_adv[idx % n_states]
        pi_col = self.log_pi[idx % n_states]
        emit_flat = self.log_emit[
            (idx % self.log_emit.shape[0])[:, None],
            (idx % self.log_emit.shape[1])[None, :],
        ].reshape(-1)
        scratch = np.empty(dim)

        def evaluate(d, i_min, i_max, west, north, northwest, out):
            m = i_max - i_min + 1
            # Column index of cell (i, d - i) along the diagonal descends as
            # the row grows: j = d - i for i in [i_min, i_max].
            j_lo = d - i_max
            j_cols = slice(d - i_min, j_lo - 1 if j_lo > 0 else None, -1)
            stay = scratch[:m]
            np.add(north, stay_col[j_cols], out=stay)
            np.add(northwest, adv_col[j_cols], out=out)
            max_product_pair(out, stay, out=out)
            if i_max == d:  # last element sits in column j == 0: stay only
                out[m - 1] = stay[m - 1]
            np.add(
                out, emit_flat[dg.flat_diagonal_segment(d, dim, i_min, i_max)], out=out
            )
            if i_min == 0:  # first element sits in row i == 0, column d
                out[0] = pi_col[d] + emit_flat[d]

        return evaluate

    # ------------------------------------------------------------------
    def reconstruct_witness(self, values: np.ndarray) -> np.ndarray:
        """Trace the most probable state path back through the value grid.

        Starts at the best final state (lowest index on ties) and at every
        step re-evaluates the stay / advance scores from the grid's previous
        row; exact ties prefer the advance predecessor (``j - 1``),
        matching an ascending-state argmax scan.  Returns the length-``dim``
        ``int64`` state sequence, one state per time row.
        """
        dim = values.shape[0]
        n_states = self.log_pi.size
        path = np.empty(dim, dtype=np.int64)
        path[-1] = int(np.argmax(values[-1]))
        for t in range(dim - 1, 0, -1):
            j = path[t]
            stay = values[t - 1, j] + self.log_stay[j % n_states]
            if j >= 1:
                adv = values[t - 1, j - 1] + self.log_adv[j % n_states]
                path[t - 1] = j - 1 if adv >= stay else j
            else:
                path[t - 1] = j
        return path


class ViterbiApp(WavefrontApplication):
    """Banded-HMM Viterbi decoding with seeded random model parameters.

    ``self_bias`` tilts the stay/advance split (0.5 = balanced); emission
    likelihoods are drawn log-uniformly over roughly three decades so argmax
    decisions are well-separated on typical instances while still exercising
    ties through the modulo-tiled tables.
    """

    name = "viterbi"
    default_dim = 256

    def __init__(
        self,
        dim: int | None = None,
        seed: int | None = None,
        self_bias: float = 0.6,
    ) -> None:
        if not 0.0 < self_bias < 1.0:
            raise InvalidParameterError(
                f"self_bias must be in (0, 1), got {self_bias}"
            )
        if dim is not None:
            self.default_dim = int(dim)
        self.seed = seed
        self.self_bias = float(self_bias)

    def make_kernel(self) -> ViterbiKernel:
        """Construct the Viterbi kernel for the app's random HMM."""
        rng = make_rng(self.seed)
        dim = self.default_dim
        # Strictly positive probabilities keep every log finite.
        pi = rng.uniform(0.05, 1.0, size=dim)
        pi /= pi.sum()
        stay = np.clip(
            rng.normal(self.self_bias, 0.1, size=dim), 0.05, 0.95
        )
        emit = rng.uniform(1e-3, 1.0, size=(dim, dim))
        return ViterbiKernel(
            log_pi=np.log(pi),
            log_stay=np.log(stay),
            log_adv=np.log1p(-stay),
            log_emit=np.log(emit),
        )
