"""Risk-sensitive expected cost of a random monotone path on a lattice DAG.

The log-space *sum* member of the probabilistic application family.  A
walker traverses the ``dim x dim`` lattice from the origin to cell
``(i, j)`` moving only east or south; at every interior cell the arrival
direction is random — west with probability ``p_west[i, j]``, north with
the complement — and each visited cell charges a deterministic cost
``c[i, j]``.  The grid tracks the risk-sensitive (exponential-utility)
aggregate

    L[i, j] = log E[ exp(-C(path to (i, j))) ]

whose recurrence is a logsumexp over the two predecessors:

    L[i, j] = -c[i, j] + logsumexp(log p_west[i, j] + L[i, j-1],
                                   log(1 - p_west[i, j]) + L[i-1, j])

with the degenerate edges ``L[0, j] = -c + L[0, j-1]`` (row 0 only ever
arrives from the west), ``L[i, 0] = -c + L[i-1, 0]``, and
``L[0, 0] = -c[0, 0]``.  All probabilities are strictly inside ``(0, 1)``
and costs strictly positive, so every grid value is finite (and negative).
``-L[dim-1, dim-1]`` is the certainty-equivalent path cost of the corner.

The log-space sum routes through the shared, numerically-stable
:func:`repro.runtime.compute.logsumexp_pair` primitive; because it is
elementwise and the fused evaluator applies the *same* ufuncs in the same
order as the serial :meth:`StochasticPathKernel.diagonal`, every backend
produces bit-identical grids — which is what lets the witness below be
byte-identical across backends even though differential tests against an
independent reference are ``allclose`` (log-space sums round).

The *witness* is the maximum-a-posteriori arrival path: starting from the
corner, each step picks the predecessor with the larger posterior mass
``log p_dir + L[predecessor]`` (exact ties prefer **west**, matching a
reference that scans predecessors in (west, north) order and keeps the
first maximum).  It is returned as the ``2*dim - 1`` flattened cell
indices ``i*dim + j`` of the path, origin first.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import WavefrontApplication
from repro.core.exceptions import InvalidParameterError
from repro.core.pattern import WavefrontKernel
from repro.runtime.compute import logsumexp_pair
from repro.utils.rng import make_rng

#: Synthetic-scale granularity: a logsumexp (exp + log1p) dominates the cell.
STOCHASTIC_PATH_TSIZE = 2.0
#: No per-cell payload beyond the DP value itself.
STOCHASTIC_PATH_DSIZE = 0


class StochasticPathKernel(WavefrontKernel):
    """Risk-sensitive random-arrival lattice recurrence in log space.

    ``costs`` is the per-cell charge table (strictly positive) and
    ``p_west`` the per-cell west-arrival probability table (strictly inside
    ``(0, 1)``); both are indexed modulo their shape so one kernel serves
    any grid size, following the registry-wide convention.
    """

    def __init__(self, costs: np.ndarray, p_west: np.ndarray) -> None:
        costs = np.asarray(costs, dtype=float)
        p_west = np.asarray(p_west, dtype=float)
        if costs.ndim != 2 or p_west.ndim != 2:
            raise InvalidParameterError("costs and p_west must be 2-D arrays")
        if not np.all(np.isfinite(costs)) or np.any(costs <= 0):
            raise InvalidParameterError("cell costs must be finite and positive")
        if np.any(p_west <= 0) or np.any(p_west >= 1):
            raise InvalidParameterError(
                "west-arrival probabilities must lie strictly inside (0, 1)"
            )
        self.costs = costs
        self.p_west = p_west
        self.log_pw = np.log(p_west)
        self.log_pn = np.log1p(-p_west)
        self.tsize = STOCHASTIC_PATH_TSIZE
        self.dsize = STOCHASTIC_PATH_DSIZE
        self.name = "stochastic-path"

    # ------------------------------------------------------------------
    def _cell(self, table: np.ndarray, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Table values of the cells ``(i, j)``, tiled modulo the table shape."""
        return table[i % table.shape[0], j % table.shape[1]]

    def diagonal(self, i, j, west, north, northwest):  # noqa: D102 - see base class
        """Vectorized risk-sensitive recurrence over one anti-diagonal."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        west_mass = west + self._cell(self.log_pw, i, j)
        north_mass = north + self._cell(self.log_pn, i, j)
        mixed = logsumexp_pair(west_mass, north_mass)
        # Edge rows/columns have a single deterministic predecessor; the
        # origin has none (empty path, log E[exp(0)] = 0 before its cost).
        mixed = np.where(i == 0, west, mixed)
        mixed = np.where(j == 0, north, mixed)
        mixed = np.where((i == 0) & (j == 0), 0.0, mixed)
        return mixed - self._cell(self.costs, i, j)

    def make_diagonal_evaluator(self, dim, boundary):
        """Fused sweep path: identical ufunc order to :meth:`diagonal`.

        Bit-identity with the serial sweep matters here (the witness
        traceback reads exact grid values), so the fused path applies the
        same elementwise operations in the same order; the ``i == 0`` /
        ``j == 0`` edge cells are at most the first / last element of any
        anti-diagonal segment and are patched as scalars.
        """
        from repro.core import diagonal as dg

        idx = np.arange(dim, dtype=np.int64)
        rows = (idx % self.costs.shape[0])[:, None]
        cols = (idx % self.costs.shape[1])[None, :]
        cost_flat = self.costs[rows, cols].reshape(-1)
        pw_flat = self.log_pw[rows, cols].reshape(-1)
        pn_flat = self.log_pn[rows, cols].reshape(-1)
        scratch = np.empty(dim)

        def evaluate(d, i_min, i_max, west, north, northwest, out):
            m = i_max - i_min + 1
            seg = dg.flat_diagonal_segment(d, dim, i_min, i_max)
            tmp = scratch[:m]
            np.add(west, pw_flat[seg], out=out)
            np.add(north, pn_flat[seg], out=tmp)
            logsumexp_pair(out, tmp, out=out)
            if i_min == 0:  # first element sits in row i == 0: west only
                out[0] = west[0]
            if i_max == d:  # last element sits in column j == 0: north only
                out[m - 1] = north[m - 1]
            if d == 0:  # the origin has no predecessor at all
                out[0] = 0.0
            np.subtract(out, cost_flat[seg], out=out)

        return evaluate

    # ------------------------------------------------------------------
    def reconstruct_witness(self, values: np.ndarray) -> np.ndarray:
        """Trace the maximum-a-posteriori arrival path back from the corner.

        At cell ``(i, j)`` the posterior mass of having arrived from a
        predecessor is ``log p_dir[i, j] + L[predecessor]``; the larger one
        wins, exact ties prefer west.  Returns the ``2*dim - 1`` flattened
        cell indices ``i*dim + j`` of the path, origin first.
        """
        dim = values.shape[0]
        path = np.empty(2 * dim - 1, dtype=np.int64)
        i, j = dim - 1, dim - 1
        for step in range(2 * dim - 2, -1, -1):
            path[step] = i * dim + j
            if i > 0 and j > 0:
                west_mass = self.log_pw[i % self.log_pw.shape[0], j % self.log_pw.shape[1]] + values[i, j - 1]
                north_mass = self.log_pn[i % self.log_pn.shape[0], j % self.log_pn.shape[1]] + values[i - 1, j]
                if west_mass >= north_mass:
                    j -= 1
                else:
                    i -= 1
            elif j > 0:
                j -= 1
            elif i > 0:
                i -= 1
        return path


class StochasticPathApp(WavefrontApplication):
    """Random-arrival lattice walk with seeded random costs and mixtures."""

    name = "stochastic-path"
    default_dim = 256

    def __init__(
        self,
        dim: int | None = None,
        seed: int | None = None,
        cost_scale: float = 1.0,
    ) -> None:
        if cost_scale <= 0:
            raise InvalidParameterError(
                f"cost_scale must be positive, got {cost_scale}"
            )
        if dim is not None:
            self.default_dim = int(dim)
        self.seed = seed
        self.cost_scale = float(cost_scale)

    def make_kernel(self) -> StochasticPathKernel:
        """Construct the kernel for the app's random lattice."""
        rng = make_rng(self.seed)
        dim = self.default_dim
        costs = rng.uniform(0.1, 1.0, size=(dim, dim)) * self.cost_scale
        p_west = rng.uniform(0.05, 0.95, size=(dim, dim))
        return StochasticPathKernel(costs, p_west)
