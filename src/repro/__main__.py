"""Module entry point so ``python -m repro`` behaves like ``repro-tune``."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
