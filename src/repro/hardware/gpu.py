"""GPU device specification (the accelerator side of Table 4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import InvalidParameterError

#: Work-items that one compute unit keeps in flight for wavefront kernels.
#: Fermi-class SMs schedule warps of 32, but diagonal-major wavefront kernels
#: rarely keep every lane busy; 8 effective lanes reproduces the moderate
#: (order 10-20x) peak speedups the paper reports.
DEFAULT_LANES_PER_CU = 8


@dataclass(frozen=True)
class GPUSpec:
    """One GPU device of the platform."""

    name: str
    freq_mhz: float
    compute_units: int
    mem_gb: float
    lanes_per_cu: int = DEFAULT_LANES_PER_CU

    def __post_init__(self) -> None:
        if self.freq_mhz <= 0:
            raise InvalidParameterError(f"freq_mhz must be positive, got {self.freq_mhz}")
        if self.compute_units < 1:
            raise InvalidParameterError(
                f"compute_units must be >= 1, got {self.compute_units}"
            )
        if self.mem_gb <= 0:
            raise InvalidParameterError(f"mem_gb must be positive, got {self.mem_gb}")
        if self.lanes_per_cu < 1:
            raise InvalidParameterError(
                f"lanes_per_cu must be >= 1, got {self.lanes_per_cu}"
            )

    @property
    def freq_ghz(self) -> float:
        """Clock frequency in GHz."""
        return self.freq_mhz / 1000.0

    @property
    def parallel_width(self) -> int:
        """Work-items the device can execute concurrently on one diagonal."""
        return self.compute_units * self.lanes_per_cu

    @property
    def mem_bytes(self) -> int:
        """Device memory in bytes."""
        return int(self.mem_gb * 1024**3)

    def describe(self) -> str:
        """One-line human readable description."""
        return (
            f"{self.name} ({self.compute_units} CUs @ {self.freq_mhz:.0f} MHz, "
            f"{self.mem_gb:g} GB)"
        )
