"""Analytic cost model for the three-phase hybrid wavefront execution.

The paper measured wall-clock runtime on three physical CPU+GPU systems.  In
this reproduction the same quantity — called ``rtime`` throughout — is
computed by an analytic model parameterised by the platform description
(:class:`repro.hardware.system.SystemSpec`) and a set of calibration
constants (:class:`CostConstants`).  The model charges time for exactly the
mechanisms the paper identifies as the tuning trade-offs (Section 2.1):

* per-point compute cost on a CPU core vs. on a GPU lane,
* the critical path of the tiled CPU wavefront over ``cores`` workers,
* a cache-reuse factor that favours moderate CPU tile sizes,
* GPU start-up cost and per-kernel launch overhead,
* PCIe transfers when offloading the band and bringing results back,
* work-group synchronisation when tiling inside the GPU,
* halo swaps through the host and redundant halo computation for dual GPUs.

The same model backs both the ``simulate`` execution mode (where no cell
values are produced) and the timeline that the functional executors charge
their simulated operations to, so the two modes report identical ``rtime``
for identical configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core import diagonal as dg
from repro.core.exceptions import InvalidParameterError
from repro.core.params import InputParams, TunableParams
from repro.core.partition import count_halo_swaps, halo_swap_nbytes
from repro.core.plan import ThreePhasePlan
from repro.core.tiling import TileDecomposition, triangular_tile_waves
from repro.hardware.system import SystemSpec


@dataclass(frozen=True)
class CostConstants:
    """Calibration constants of the analytic cost model.

    All times are expressed for a *reference* CPU core clocked at
    ``ref_cpu_ghz``; actual platforms scale them by their clock ratio.  The
    default values are calibrated (see :mod:`repro.hardware.calibration`) so
    the qualitative results of the paper hold: maximum tuned speedup of
    roughly 20x over the sequential baseline, GPU offload thresholds that are
    lower on the slow-CPU i3 system than on the i7 systems, higher thresholds
    for larger ``dsize``, and halo sizes that shrink as ``tsize`` grows.
    """

    #: Clock of the reference core that defines one ``tsize`` unit.
    ref_cpu_ghz: float = 1.6
    #: Nanoseconds per synthetic-kernel iteration on the reference core.
    cpu_iter_ns: float = 8.0
    #: Nanoseconds per payload float touched per cell on the CPU.
    cpu_payload_ns_per_float: float = 2.0
    #: Per-tile scheduling/synchronisation overhead of the CPU phases.
    cpu_tile_sync_us: float = 2.0
    #: GPU lane slowdown vs. the reference CPU core at equal clock.
    gpu_iter_penalty: float = 10.0
    #: Nanoseconds of (serialised, uncoalesced) global-memory traffic per
    #: payload float per cell on the GPU.
    gpu_payload_ns_per_float: float = 25.0
    #: Host-side overhead of one kernel launch.
    kernel_launch_us: float = 20.0
    #: Cost of one intra-work-group barrier step when tiling inside the GPU.
    workgroup_sync_us: float = 2.0
    #: Compute inflation caused by idle work-items at intra-tile wavefront edges.
    gpu_tiled_compute_factor: float = 1.2
    #: One-off cost of initialising a GPU context/queue, per device used.
    gpu_startup_s: float = 0.22
    #: Extra launch-cost factor per additional device driven by the host.
    multi_gpu_launch_factor: float = 0.3
    #: CPU cache-reuse model: factor = a + b / tile + c * tile.
    cache_base: float = 0.85
    cache_inv_coeff: float = 0.40
    cache_lin_coeff: float = 0.004
    #: Per-cell speedup of the vectorized (SIMD batch-per-diagonal) engine
    #: over the scalar serial sweep; calibrated against the measured ratio of
    #: the two functional executors (``repro bench``).
    cpu_vector_speedup: float = 6.0
    #: Per-diagonal batch dispatch overhead of the vectorized engine.
    vector_diag_overhead_us: float = 2.0
    #: Per-cell speedup of the compiled (JIT whole-grid) tier over the scalar
    #: serial sweep; recalibrated from measured compiled walls when a profile
    #: includes them.
    compiled_speedup: float = 12.0
    #: Per-tile dispatch cost of the shared-memory process pool (submitting
    #: the tile descriptor, collecting the result, barrier bookkeeping).
    mp_task_overhead_us: float = 60.0
    #: One-off cost of starting (forking + initialising) one pool worker,
    #: including its per-worker engine precompute.
    mp_worker_startup_s: float = 0.02

    def cache_factor(self, tile: int) -> float:
        """Relative per-cell cost of the CPU phases for a given tile size.

        Minimal around tile sizes of 8-10 (good reuse, low loop overhead);
        tile = 1 pays untiled-loop overhead, very large tiles start to spill.
        """
        if tile < 1:
            raise InvalidParameterError(f"tile must be >= 1, got {tile}")
        return self.cache_base + self.cache_inv_coeff / tile + self.cache_lin_coeff * tile

    def scaled(self, **overrides: float) -> "CostConstants":
        """Return a copy with some constants replaced (used by calibration)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class PhaseBreakdown:
    """Per-component simulated runtime of one hybrid execution (seconds)."""

    pre_s: float = 0.0
    post_s: float = 0.0
    gpu_compute_s: float = 0.0
    gpu_launch_s: float = 0.0
    gpu_sync_s: float = 0.0
    halo_s: float = 0.0
    transfer_s: float = 0.0
    startup_s: float = 0.0

    @property
    def cpu_s(self) -> float:
        """Time spent in the CPU phases."""
        return self.pre_s + self.post_s

    @property
    def gpu_s(self) -> float:
        """Time spent in the GPU phase, including its overheads."""
        return (
            self.gpu_compute_s
            + self.gpu_launch_s
            + self.gpu_sync_s
            + self.halo_s
            + self.transfer_s
            + self.startup_s
        )

    @property
    def total_s(self) -> float:
        """End-to-end simulated runtime (the paper's ``rtime``)."""
        return self.cpu_s + self.gpu_s

    def to_dict(self) -> dict[str, float]:
        """Flat dictionary of the components plus the total."""
        return {
            "pre_s": self.pre_s,
            "post_s": self.post_s,
            "gpu_compute_s": self.gpu_compute_s,
            "gpu_launch_s": self.gpu_launch_s,
            "gpu_sync_s": self.gpu_sync_s,
            "halo_s": self.halo_s,
            "transfer_s": self.transfer_s,
            "startup_s": self.startup_s,
            "cpu_s": self.cpu_s,
            "gpu_s": self.gpu_s,
            "total_s": self.total_s,
        }


class CostModel:
    """Analytic runtime model of one platform."""

    def __init__(self, system: SystemSpec, constants: CostConstants | None = None) -> None:
        self.system = system
        if constants is None:
            # Imported lazily to avoid a circular import at module load time.
            from repro.hardware.calibration import constants_for_system

            constants = constants_for_system(system)
        self.constants = constants

    # ------------------------------------------------------------------
    # Per-point costs
    # ------------------------------------------------------------------
    def cpu_point_time(self, params: InputParams) -> float:
        """Seconds to compute one cell on one CPU core of this system."""
        c = self.constants
        clock_scale = c.ref_cpu_ghz / self.system.cpu.freq_ghz
        ns = (c.cpu_iter_ns * params.tsize + c.cpu_payload_ns_per_float * params.dsize)
        return ns * clock_scale * 1e-9

    def gpu_point_time(self, params: InputParams, device_index: int = 0) -> float:
        """Seconds for one GPU lane to compute one cell (excluding memory traffic)."""
        c = self.constants
        gpu = self.system.gpu(device_index)
        clock_scale = c.ref_cpu_ghz / gpu.freq_ghz
        return c.cpu_iter_ns * c.gpu_iter_penalty * params.tsize * clock_scale * 1e-9

    # ------------------------------------------------------------------
    # Whole-execution costs
    # ------------------------------------------------------------------
    def serial_time(self, params: InputParams) -> float:
        """The optimised sequential baseline: every cell on one CPU core."""
        return params.cells * self.cpu_point_time(params)

    def vectorized_time(self, params: InputParams) -> float:
        """Single-core vectorized engine: diagonal batches on one CPU core.

        Per-cell work is amortised by the SIMD batch speedup; each diagonal
        pays a fixed batch dispatch overhead, so the engine's advantage grows
        with ``dim`` and shrinks for coarse-grained kernels (large ``tsize``),
        matching the behaviour of the functional executors.
        """
        c = self.constants
        overhead = params.n_diagonals * c.vector_diag_overhead_us * 1e-6
        return overhead + self.serial_time(params) / c.cpu_vector_speedup

    def engine_time(self, engine: str, params: InputParams) -> float:
        """Runtime of one single-core engine by registry name."""
        if engine == "serial":
            return self.serial_time(params)
        if engine == "vectorized":
            return self.vectorized_time(params)
        if engine == "compiled":
            return self.compiled_time(params)
        raise InvalidParameterError(f"unknown serial engine {engine!r}")

    def compiled_time(self, params: InputParams) -> float:
        """Single-core compiled (JIT) tier: whole-grid scalar fill, no batches.

        The compiled fill visits cells in row-major order with no per-diagonal
        dispatch at all, so the model is a pure per-cell rate — the serial
        scalar cost divided by the calibrated compiled speedup.
        """
        return self.serial_time(params) / self.constants.compiled_speedup

    def cpu_region_time(
        self, params: InputParams, n_diagonals: int, cells: int, cpu_tile: int
    ) -> float:
        """Tiled parallel CPU time for a triangular region of the grid.

        ``n_diagonals`` is the number of cell anti-diagonals the region spans
        (phase 1 and phase 3 regions are triangles bounded by the GPU band;
        the full grid is the degenerate case spanning every diagonal).
        """
        if cells <= 0 or n_diagonals <= 0:
            return 0.0
        cpu = self.system.cpu
        c = self.constants
        tile = max(1, min(cpu_tile, params.dim))
        point = self.cpu_point_time(params)
        cache = c.cache_factor(tile)
        waves = triangular_tile_waves(params.dim, n_diagonals, tile, cpu.workers)
        tile_time = tile * tile * point * cache + c.cpu_tile_sync_us * 1e-6
        critical_path = waves * tile_time
        # The critical path over full tiles can undercount when the region is
        # wide but shallow; never report less than the perfectly-balanced
        # work bound over the effective cores.
        work_bound = cells * point * cache / cpu.effective_cores
        return max(critical_path, work_bound)

    def cpu_parallel_time(self, params: InputParams, cpu_tile: int) -> float:
        """All-CPU tiled parallel execution of the whole grid."""
        return self.cpu_region_time(
            params, params.n_diagonals, params.cells, cpu_tile
        )

    # ------------------------------------------------------------------
    # The shared-memory multicore backend (``mp-parallel``)
    # ------------------------------------------------------------------
    def mp_parallel_efficiency(self, params: InputParams, cpu_tile: int, workers: int) -> float:
        """Load-balance efficiency of the tile wavefront on ``workers`` cores.

        The ratio of ideal to critical-path tile rounds
        (:meth:`repro.core.tiling.TileDecomposition.parallel_efficiency`):
        1.0 means every wave keeps all workers busy; small grids or large
        tiles expose fewer independent tiles than workers on the early/late
        tile-diagonals and push it below 1.
        """
        tile = max(1, min(cpu_tile, params.dim))
        decomp = TileDecomposition(params.dim, params.dim, tile)
        return decomp.parallel_efficiency(workers)

    def mp_parallel_time(self, params: InputParams, cpu_tile: int, workers: int) -> float:
        """Shared-memory multicore backend: tiled-vectorized tiles on real cores.

        Each tile is swept with the tile-local strided-diagonal engine (so
        per-cell work is the vectorized rate plus per-local-diagonal batch
        overhead) and pays one pool dispatch; the critical path is the ideal
        per-worker share divided by the wavefront's parallel-efficiency
        term, plus the one-off worker start-up.  With fewer than two workers
        this degrades to the single-core vectorized engine, mirroring the
        functional backend's graceful fallback.
        """
        workers = max(1, int(workers))
        if workers < 2:
            return self.vectorized_time(params)
        c = self.constants
        tile = max(1, min(cpu_tile, params.dim))
        decomp = TileDecomposition(params.dim, params.dim, tile)
        point = self.cpu_point_time(params) / c.cpu_vector_speedup
        tile_time = (
            tile * tile * point
            + (2 * tile - 1) * c.vector_diag_overhead_us * 1e-6
            + c.mp_task_overhead_us * 1e-6
        )
        efficiency = max(decomp.parallel_efficiency(workers), 1e-9)
        ideal_rounds = decomp.n_tiles / workers
        startup = c.mp_worker_startup_s * workers
        return startup + (ideal_rounds / efficiency) * tile_time

    def pipelined_time(self, params: InputParams, cpu_tile: int, workers: int) -> float:
        """Dependency-driven multicore backend: no barrier between tile waves.

        Same per-tile cost as :meth:`mp_parallel_time`, but the per-wave
        straggler term (the division by the wavefront's parallel-efficiency)
        disappears: with tiles released the moment their neighbours retire,
        the run is bound by whichever is longer of the perfectly-balanced
        work share and the tile-diagonal dependency chain — never by partial
        waves idling workers at a barrier.
        """
        workers = max(1, int(workers))
        if workers < 2:
            return self.vectorized_time(params)
        c = self.constants
        tile = max(1, min(cpu_tile, params.dim))
        decomp = TileDecomposition(params.dim, params.dim, tile)
        point = self.cpu_point_time(params) / c.cpu_vector_speedup
        tile_time = (
            tile * tile * point
            + (2 * tile - 1) * c.vector_diag_overhead_us * 1e-6
            + c.mp_task_overhead_us * 1e-6
        )
        ideal_rounds = decomp.n_tiles / workers
        critical_chain = decomp.n_tile_diagonals
        startup = c.mp_worker_startup_s * workers
        return startup + max(ideal_rounds, critical_chain) * tile_time

    def cpu_backend_time(
        self,
        backend: str,
        params: InputParams,
        cpu_tile: int = 8,
        workers: int | None = None,
    ) -> float:
        """Runtime of one CPU backend by registry name (single- or multicore)."""
        if backend == "mp-parallel":
            effective = workers if workers is not None else self.system.cpu.workers
            return self.mp_parallel_time(params, cpu_tile, effective)
        if backend == "pipelined":
            effective = workers if workers is not None else self.system.cpu.workers
            return self.pipelined_time(params, cpu_tile, effective)
        if backend == "cpu-parallel":
            return self.cpu_parallel_time(params, cpu_tile)
        return self.engine_time(backend, params)

    # ------------------------------------------------------------------
    # GPU band phase
    # ------------------------------------------------------------------
    def _gpu_band_components(
        self, params: InputParams, plan: ThreePhasePlan, tunables: TunableParams
    ) -> dict[str, float]:
        """Compute the GPU-phase cost components for a non-empty band."""
        c = self.constants
        tun = tunables
        gpu_count = tun.gpu_count
        if gpu_count > self.system.gpu_count:
            raise InvalidParameterError(
                f"configuration requests {gpu_count} GPUs but system "
                f"{self.system.name!r} has {self.system.gpu_count}"
            )
        gpu = self.system.gpu(0)
        width = gpu.parallel_width
        lengths = np.asarray(plan.gpu_diagonal_lengths(), dtype=np.int64)
        n_diags = lengths.size
        elem = params.element_nbytes
        halo = tun.halo if gpu_count == 2 else 0

        # Per-device share of each diagonal, including the redundant halo.
        per_dev = np.ceil(lengths / gpu_count).astype(np.int64)
        if gpu_count == 2:
            per_dev = np.minimum(per_dev + halo, lengths)

        point_gpu = self.gpu_point_time(params)
        waves = np.ceil(per_dev / width)
        compute = float(np.sum(waves)) * point_gpu
        # Serialised global-memory traffic for the payload floats.
        memory = float(np.sum(per_dev)) * params.dsize * c.gpu_payload_ns_per_float * 1e-9

        launch_scale = 1.0 + c.multi_gpu_launch_factor * (gpu_count - 1)
        if tun.gpu_tile > 1:
            launches = -(-n_diags // tun.gpu_tile)
            launch = launches * c.kernel_launch_us * 1e-6 * launch_scale
            sync = n_diags * c.workgroup_sync_us * 1e-6
            compute *= c.gpu_tiled_compute_factor
        else:
            launch = n_diags * c.kernel_launch_us * 1e-6 * launch_scale
            sync = 0.0

        # Halo swaps for dual GPUs: device -> host -> device per boundary
        # direction, each leg paying interconnect latency.
        halo_time = 0.0
        if gpu_count == 2 and n_diags > 1:
            n_swaps = count_halo_swaps(n_diags, halo)
            swap_bytes = halo_swap_nbytes(int(lengths.max()), gpu_count, halo, elem)
            per_swap = 2.0 * self.system.interconnect.transfer_time(swap_bytes / 2.0)
            halo_time = n_swaps * per_swap

        # Offload the band (plus boundary diagonals) in, and results out.
        offload_bytes = plan.offload_nbytes()
        transfer = 2.0 * (
            self.system.interconnect.transfer_time(offload_bytes)
            + (gpu_count - 1) * self.system.interconnect.latency_s
        )

        startup = c.gpu_startup_s * gpu_count
        return {
            "compute": compute + memory,
            "launch": launch,
            "sync": sync,
            "halo": halo_time,
            "transfer": transfer,
            "startup": startup,
        }

    # ------------------------------------------------------------------
    # Full hybrid prediction
    # ------------------------------------------------------------------
    def hybrid_breakdown(
        self, params: InputParams, tunables: TunableParams
    ) -> PhaseBreakdown:
        """Predict the per-component runtime of one configuration."""
        tunables = tunables.clipped(params.dim)
        if tunables.uses_gpu and not self.system.has_gpu:
            raise InvalidParameterError(
                f"configuration uses a GPU but system {self.system.name!r} has none"
            )
        plan = ThreePhasePlan(params, tunables)
        dim = params.dim

        pre_s = self.cpu_region_time(
            params, plan.pre.n_diagonals, plan.pre.cells(dim), tunables.cpu_tile
        )
        post_s = self.cpu_region_time(
            params, plan.post.n_diagonals, plan.post.cells(dim), tunables.cpu_tile
        )
        if plan.gpu.is_empty:
            return PhaseBreakdown(pre_s=pre_s, post_s=post_s)

        comp = self._gpu_band_components(params, plan, tunables)
        return PhaseBreakdown(
            pre_s=pre_s,
            post_s=post_s,
            gpu_compute_s=comp["compute"],
            gpu_launch_s=comp["launch"],
            gpu_sync_s=comp["sync"],
            halo_s=comp["halo"],
            transfer_s=comp["transfer"],
            startup_s=comp["startup"],
        )

    def predict(self, params: InputParams, tunables: TunableParams) -> float:
        """Predicted end-to-end runtime (seconds) of one configuration."""
        return self.hybrid_breakdown(params, tunables).total_s

    # ------------------------------------------------------------------
    # The three simple schemes of Figure 6
    # ------------------------------------------------------------------
    def baseline_serial(self, params: InputParams) -> float:
        """Scheme (a): everything serial on one CPU core."""
        return self.serial_time(params)

    def baseline_vectorized(self, params: InputParams) -> float:
        """The vectorized single-core engine (not part of Figure 6, but the
        baseline any modern reproduction should beat)."""
        return self.vectorized_time(params)

    def baseline_cpu_parallel(self, params: InputParams, cpu_tile: int = 8) -> float:
        """Scheme (b): tiled parallel across all CPU cores, no GPU phase."""
        return self.cpu_parallel_time(params, cpu_tile)

    def baseline_gpu_only(self, params: InputParams, gpu_count: int = 1) -> float:
        """Scheme (c): the whole grid computed in the GPU phase."""
        if not self.system.has_gpu:
            raise InvalidParameterError(
                f"system {self.system.name!r} has no GPU for the GPU-only baseline"
            )
        gpu_count = min(gpu_count, self.system.max_usable_gpus)
        halo = 0 if gpu_count == 2 else -1
        tunables = TunableParams.from_encoding(
            cpu_tile=1, band=params.dim - 1, halo=halo, gpu_tile=1
        )
        return self.predict(params, tunables)
