"""A heterogeneous system: one multicore CPU plus zero or more GPUs.

Besides the :class:`SystemSpec` dataclass this module can *introspect the
machine running this process* into a spec (:func:`detect_local_system`), which
is how the measured-profile autotuning pipeline
(:mod:`repro.autotuner.measured`) obtains the ``local`` system the CLI's
``repro profile`` / ``repro tune --system local`` verbs operate on.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.exceptions import InvalidParameterError
from repro.hardware.cpu import CPUSpec
from repro.hardware.gpu import GPUSpec


@dataclass(frozen=True)
class InterconnectSpec:
    """The host<->device interconnect (PCIe in the paper's systems)."""

    bandwidth_gbs: float = 5.0
    latency_us: float = 20.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise InvalidParameterError(
                f"bandwidth_gbs must be positive, got {self.bandwidth_gbs}"
            )
        if self.latency_us < 0:
            raise InvalidParameterError(
                f"latency_us must be >= 0, got {self.latency_us}"
            )

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Bandwidth in bytes per second."""
        return self.bandwidth_gbs * 1e9

    @property
    def latency_s(self) -> float:
        """Per-transfer latency in seconds."""
        return self.latency_us * 1e-6

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across the interconnect (one transfer)."""
        if nbytes < 0:
            raise InvalidParameterError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class SystemSpec:
    """A complete experimental system (one row of Table 4)."""

    name: str
    cpu: CPUSpec
    gpus: tuple[GPUSpec, ...] = ()
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("system name must not be empty")
        object.__setattr__(self, "gpus", tuple(self.gpus))

    @property
    def gpu_count(self) -> int:
        """Number of GPU devices installed in the system."""
        return len(self.gpus)

    @property
    def max_usable_gpus(self) -> int:
        """Maximum GPUs the tuner may select (the paper uses at most two)."""
        return min(2, self.gpu_count)

    def gpu(self, index: int = 0) -> GPUSpec:
        """The GPU at ``index``; raises if the system has no such device."""
        if index < 0 or index >= len(self.gpus):
            raise InvalidParameterError(
                f"system {self.name!r} has {len(self.gpus)} GPUs, "
                f"device {index} requested"
            )
        return self.gpus[index]

    @property
    def has_gpu(self) -> bool:
        """True when the system hosts at least one GPU device."""
        return bool(self.gpus)

    def describe(self) -> str:
        """Multi-line human readable description (used by the Table 4 bench)."""
        lines = [f"System {self.name}", f"  CPU: {self.cpu.describe()}"]
        for idx, gpu in enumerate(self.gpus):
            lines.append(f"  GPU[{idx}]: {gpu.describe()}")
        lines.append(
            f"  Interconnect: {self.interconnect.bandwidth_gbs:g} GB/s, "
            f"{self.interconnect.latency_us:g} us latency"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Local host introspection
# ----------------------------------------------------------------------
#: Name under which the introspected host registers (``--system local``).
LOCAL_SYSTEM_NAME = "local"

_DEFAULT_FREQ_MHZ = 2000.0
_DEFAULT_MEM_GB = 4.0


def _read_cpu_model_and_mhz(cpuinfo: str) -> tuple[str | None, float | None]:
    """Parse ``model name`` and ``cpu MHz`` out of a /proc/cpuinfo dump."""
    model = None
    mhz = None
    m = re.search(r"^model name\s*:\s*(.+)$", cpuinfo, flags=re.MULTILINE)
    if m:
        model = m.group(1).strip()
    m = re.search(r"^cpu MHz\s*:\s*([0-9.]+)$", cpuinfo, flags=re.MULTILINE)
    if m:
        mhz = float(m.group(1))
    return model, mhz


def _read_mem_gb(meminfo: str) -> float | None:
    """Parse ``MemTotal`` (kB) out of a /proc/meminfo dump, in GB."""
    m = re.search(r"^MemTotal:\s*([0-9]+)\s*kB$", meminfo, flags=re.MULTILINE)
    if m:
        return int(m.group(1)) / (1024.0 * 1024.0)
    return None


def detect_local_system(name: str = LOCAL_SYSTEM_NAME) -> SystemSpec:
    """Introspect the machine running this process into a :class:`SystemSpec`.

    The core count comes from :func:`os.cpu_count`; CPU model/clock and total
    memory are read from ``/proc`` when available (Linux) and fall back to
    conservative defaults elsewhere.  No GPU devices are attached: the
    reproduction's GPUs are simulated and cannot be timed for real, so the
    measured-profile pipeline (:mod:`repro.autotuner.measured`) only tunes
    the CPU backends on the local system.  Hyper-threading is not detected
    (``/proc`` does not expose it portably) and is assumed absent, so
    ``cpu.effective_cores == cpu.cores``.
    """
    cores = os.cpu_count() or 1
    model, mhz = None, None
    mem_gb = None
    try:
        model, mhz = _read_cpu_model_and_mhz(
            Path("/proc/cpuinfo").read_text(encoding="utf-8")
        )
    except OSError:
        pass
    try:
        mem_gb = _read_mem_gb(Path("/proc/meminfo").read_text(encoding="utf-8"))
    except OSError:
        pass
    cpu = CPUSpec(
        name=model or f"{name}-cpu",
        freq_mhz=mhz if mhz and mhz > 0 else _DEFAULT_FREQ_MHZ,
        cores=cores,
        mem_gb=mem_gb if mem_gb and mem_gb > 0 else _DEFAULT_MEM_GB,
        hyperthreaded=False,
    )
    return SystemSpec(name=name, cpu=cpu, gpus=())
