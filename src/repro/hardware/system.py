"""A heterogeneous system: one multicore CPU plus zero or more GPUs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import InvalidParameterError
from repro.hardware.cpu import CPUSpec
from repro.hardware.gpu import GPUSpec


@dataclass(frozen=True)
class InterconnectSpec:
    """The host<->device interconnect (PCIe in the paper's systems)."""

    bandwidth_gbs: float = 5.0
    latency_us: float = 20.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise InvalidParameterError(
                f"bandwidth_gbs must be positive, got {self.bandwidth_gbs}"
            )
        if self.latency_us < 0:
            raise InvalidParameterError(
                f"latency_us must be >= 0, got {self.latency_us}"
            )

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbs * 1e9

    @property
    def latency_s(self) -> float:
        return self.latency_us * 1e-6

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across the interconnect (one transfer)."""
        if nbytes < 0:
            raise InvalidParameterError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class SystemSpec:
    """A complete experimental system (one row of Table 4)."""

    name: str
    cpu: CPUSpec
    gpus: tuple[GPUSpec, ...] = ()
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("system name must not be empty")
        object.__setattr__(self, "gpus", tuple(self.gpus))

    @property
    def gpu_count(self) -> int:
        """Number of GPU devices installed in the system."""
        return len(self.gpus)

    @property
    def max_usable_gpus(self) -> int:
        """Maximum GPUs the tuner may select (the paper uses at most two)."""
        return min(2, self.gpu_count)

    def gpu(self, index: int = 0) -> GPUSpec:
        """The GPU at ``index``; raises if the system has no such device."""
        if index < 0 or index >= len(self.gpus):
            raise InvalidParameterError(
                f"system {self.name!r} has {len(self.gpus)} GPUs, "
                f"device {index} requested"
            )
        return self.gpus[index]

    @property
    def has_gpu(self) -> bool:
        return bool(self.gpus)

    def describe(self) -> str:
        """Multi-line human readable description (used by the Table 4 bench)."""
        lines = [f"System {self.name}", f"  CPU: {self.cpu.describe()}"]
        for idx, gpu in enumerate(self.gpus):
            lines.append(f"  GPU[{idx}]: {gpu.describe()}")
        lines.append(
            f"  Interconnect: {self.interconnect.bandwidth_gbs:g} GB/s, "
            f"{self.interconnect.latency_us:g} us latency"
        )
        return "\n".join(lines)
