"""Heterogeneous platform descriptions and the analytic cost model.

The paper evaluates on three physical systems (Table 4).  This reproduction
has no GPUs available, so :mod:`repro.hardware.platforms` describes the same
three systems as data, and :mod:`repro.hardware.costmodel` charges simulated
time for every operation the executors perform.  The cost model captures the
first-order effects the paper reasons about (Section 2.1): relative CPU/GPU
per-point speed, PCIe transfer cost, kernel-launch overhead, work-group
synchronisation, GPU start-up cost, halo-swap cost and redundant halo
computation.
"""

from repro.hardware.cpu import CPUSpec
from repro.hardware.gpu import GPUSpec
from repro.hardware.system import SystemSpec
from repro.hardware.costmodel import CostConstants, CostModel, PhaseBreakdown
from repro.hardware import platforms

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "SystemSpec",
    "CostConstants",
    "CostModel",
    "PhaseBreakdown",
    "platforms",
]
