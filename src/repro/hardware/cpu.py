"""CPU specification (the host side of Table 4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import InvalidParameterError


@dataclass(frozen=True)
class CPUSpec:
    """A multicore CPU as described in Table 4 of the paper.

    ``cores`` is the number of hardware threads reported in the table's
    "Cores (HT)" column; the executors and cost model use it directly as the
    worker count of the CPU phases.
    """

    name: str
    freq_mhz: float
    cores: int
    mem_gb: float
    hyperthreaded: bool = True

    def __post_init__(self) -> None:
        if self.freq_mhz <= 0:
            raise InvalidParameterError(f"freq_mhz must be positive, got {self.freq_mhz}")
        if self.cores < 1:
            raise InvalidParameterError(f"cores must be >= 1, got {self.cores}")
        if self.mem_gb <= 0:
            raise InvalidParameterError(f"mem_gb must be positive, got {self.mem_gb}")

    @property
    def freq_ghz(self) -> float:
        """Clock frequency in GHz."""
        return self.freq_mhz / 1000.0

    @property
    def workers(self) -> int:
        """Number of parallel workers the CPU phases may use."""
        return self.cores

    @property
    def effective_cores(self) -> float:
        """Cores discounted for hyper-threading (two HT threads ≈ 1.3 cores).

        Used only by the cost model's load-balance term; the scheduler still
        runs ``cores`` workers.
        """
        if not self.hyperthreaded:
            return float(self.cores)
        physical = self.cores / 2
        return physical * 1.3

    def describe(self) -> str:
        """One-line human readable description."""
        ht = "HT" if self.hyperthreaded else "no-HT"
        return f"{self.name} ({self.cores} cores {ht} @ {self.freq_mhz:.0f} MHz, {self.mem_gb:g} GB)"
