"""The three experimental systems of Table 4, plus helper constructors.

=========  ==========  =========  =======  ==================  =========  ====  ========
System     CPU MHz     Cores(HT)  Mem GB   GPU                 GPU MHz    CU    GPU GB
=========  ==========  =========  =======  ==================  =========  ====  ========
i3-540     1200        4          4        GeForce GTX 480     1401       15    1.6
i7-2600K   1600        8          8        4x GeForce GTX 590  1215       16    1.6
i7-3820    3601        8          16       Tesla C2070, C2075  1147       14    6.4
=========  ==========  =========  =======  ==================  =========  ====  ========

The i3-540 hosts a single GPU; the i7-2600K hosts four GTX 590 dies of which
the paper's tuner uses at most two; the i7-3820 hosts two Tesla boards.
"""

from __future__ import annotations

from repro.core.exceptions import UnknownSystemError
from repro.hardware.cpu import CPUSpec
from repro.hardware.gpu import GPUSpec
from repro.hardware.system import InterconnectSpec, SystemSpec

# ----------------------------------------------------------------------
# CPUs
# ----------------------------------------------------------------------
I3_540_CPU = CPUSpec(name="Intel Core i3-540", freq_mhz=1200, cores=4, mem_gb=4)
I7_2600K_CPU = CPUSpec(name="Intel Core i7-2600K", freq_mhz=1600, cores=8, mem_gb=8)
I7_3820_CPU = CPUSpec(name="Intel Core i7-3820", freq_mhz=3601, cores=8, mem_gb=16)

# ----------------------------------------------------------------------
# GPUs
# ----------------------------------------------------------------------
GTX_480 = GPUSpec(name="GeForce GTX 480", freq_mhz=1401, compute_units=15, mem_gb=1.6)
GTX_590 = GPUSpec(name="GeForce GTX 590", freq_mhz=1215, compute_units=16, mem_gb=1.6)
TESLA_C2070 = GPUSpec(name="Tesla C2070", freq_mhz=1147, compute_units=14, mem_gb=6.4)
TESLA_C2075 = GPUSpec(name="Tesla C2075", freq_mhz=1147, compute_units=14, mem_gb=6.4)

# ----------------------------------------------------------------------
# Systems (Table 4 rows)
# ----------------------------------------------------------------------
I3_540 = SystemSpec(
    name="i3-540",
    cpu=I3_540_CPU,
    gpus=(GTX_480,),
    interconnect=InterconnectSpec(bandwidth_gbs=4.0, latency_us=25.0),
)

I7_2600K = SystemSpec(
    name="i7-2600K",
    cpu=I7_2600K_CPU,
    gpus=(GTX_590, GTX_590, GTX_590, GTX_590),
    interconnect=InterconnectSpec(bandwidth_gbs=5.0, latency_us=20.0),
)

I7_3820 = SystemSpec(
    name="i7-3820",
    cpu=I7_3820_CPU,
    gpus=(TESLA_C2070, TESLA_C2075),
    interconnect=InterconnectSpec(bandwidth_gbs=6.0, latency_us=18.0),
)

#: The three paper systems in the order they appear in Table 4.
ALL_SYSTEMS: tuple[SystemSpec, ...] = (I3_540, I7_2600K, I7_3820)

#: Systems by name, for CLI / config lookup.
SYSTEMS_BY_NAME: dict[str, SystemSpec] = {s.name: s for s in ALL_SYSTEMS}


def get_system(name: str) -> SystemSpec:
    """Look up one of the paper's systems by its Table 4 name."""
    try:
        return SYSTEMS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(SYSTEMS_BY_NAME))
        raise UnknownSystemError(
            f"unknown system {name!r}; known systems: {known} (or 'local')"
        ) from None


def resolve_system(name: str) -> SystemSpec:
    """Resolve a system name, including the introspected ``local`` host.

    ``"local"`` introspects the machine running this process
    (:func:`repro.hardware.system.detect_local_system`); every other name is
    looked up in the Table 4 registry via :func:`get_system`.
    """
    from repro.hardware.system import LOCAL_SYSTEM_NAME, detect_local_system

    if name == LOCAL_SYSTEM_NAME:
        return detect_local_system()
    return get_system(name)


def cpu_only_variant(system: SystemSpec) -> SystemSpec:
    """Return a copy of ``system`` with its GPUs removed.

    Used by the baseline comparisons ("parallel CPU with no GPU phase").
    """
    return SystemSpec(
        name=f"{system.name} (CPU only)",
        cpu=system.cpu,
        gpus=(),
        interconnect=system.interconnect,
    )


def custom_system(
    name: str,
    cpu_freq_mhz: float,
    cores: int,
    gpu_count: int = 1,
    gpu_freq_mhz: float = 1200.0,
    compute_units: int = 16,
    mem_gb: float = 8.0,
    gpu_mem_gb: float = 2.0,
) -> SystemSpec:
    """Convenience constructor for user-defined systems (examples / tests)."""
    cpu = CPUSpec(name=f"{name}-cpu", freq_mhz=cpu_freq_mhz, cores=cores, mem_gb=mem_gb)
    gpus = tuple(
        GPUSpec(
            name=f"{name}-gpu{i}",
            freq_mhz=gpu_freq_mhz,
            compute_units=compute_units,
            mem_gb=gpu_mem_gb,
        )
        for i in range(gpu_count)
    )
    return SystemSpec(name=name, cpu=cpu, gpus=gpus)
