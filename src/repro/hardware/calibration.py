"""Calibration of the cost-model constants.

Two jobs live here:

1. :func:`constants_for_system` — per-platform adjustments of
   :class:`repro.hardware.costmodel.CostConstants`.  The paper's three
   systems differ not only in the raw numbers of Table 4 but in generation
   (the Teslas sustain wavefront kernels a little better than the consumer
   GTX boards; the i3's front-side bus is slower), and these adjustments are
   what make the qualitative thresholds land where Section 4.1.1 describes
   them.

2. :func:`measure_host_iter_ns` — a micro-benchmark of the *actual* machine
   running this reproduction.  The functional execution mode uses it to map
   one ``tsize`` unit onto real work, so that wall-clock measurements of the
   functional executors are self-consistent with the synthetic scale, even
   though absolute values obviously differ from the 2014 testbed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.hardware.costmodel import CostConstants
from repro.hardware.system import SystemSpec

#: Baseline constants shared by every platform before adjustment.
BASE_CONSTANTS = CostConstants()

#: Per-system overrides, keyed by the Table 4 system name.
_SYSTEM_OVERRIDES: dict[str, dict[str, float]] = {
    # Single consumer GPU on a slow dual-core+HT host: GPU relatively strong,
    # PCIe a little slower, GPU start-up slightly cheaper (lighter driver).
    "i3-540": {
        "gpu_iter_penalty": 9.0,
        "gpu_startup_s": 0.20,
    },
    # Four GTX 590 dies behind one PCIe switch: launches and transfers carry
    # a small extra cost when more than one die is driven.
    "i7-2600K": {
        "gpu_iter_penalty": 10.0,
        "multi_gpu_launch_factor": 0.4,
    },
    # Tesla boards: better sustained throughput on irregular kernels and more
    # device memory, but the fastest host CPU of the three.
    "i7-3820": {
        "gpu_iter_penalty": 8.5,
        "gpu_payload_ns_per_float": 20.0,
    },
}


def constants_for_system(system: SystemSpec | str) -> CostConstants:
    """Return the calibrated :class:`CostConstants` for one platform.

    Unknown systems (user-defined ones from
    :func:`repro.hardware.platforms.custom_system`) get the baseline
    constants unchanged.
    """
    name = system if isinstance(system, str) else system.name
    overrides = _SYSTEM_OVERRIDES.get(name, {})
    return BASE_CONSTANTS.scaled(**overrides)


def measure_host_iter_ns(samples: int = 3, iterations: int = 200_000) -> float:
    """Measure the cost of one synthetic-kernel iteration on this host (ns).

    The synthetic kernel's unit of work is a dependent multiply-add chain;
    the measurement below runs the same chain in NumPy batches so it finishes
    quickly while still being dominated by floating-point work.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    best = float("inf")
    x = np.linspace(0.1, 0.9, 1024)
    for _ in range(samples):
        t0 = time.perf_counter()
        acc = x.copy()
        rounds = max(1, iterations // x.size)
        for _ in range(rounds):
            acc = acc * 0.999 + 0.001
        elapsed = time.perf_counter() - t0
        per_iter = elapsed / (rounds * x.size)
        best = min(best, per_iter)
    return best * 1e9


def host_calibrated_constants(system: SystemSpec | str) -> CostConstants:
    """Platform constants with ``cpu_iter_ns`` replaced by a host measurement.

    This keeps relative platform behaviour intact while anchoring absolute
    simulated times to something measurable on the reproduction machine.
    Useful when comparing simulated ``rtime`` to the wall-clock time of the
    functional executors in the examples.
    """
    constants = constants_for_system(system)
    measured = measure_host_iter_ns()
    # Never let a wildly fast/slow host distort the platform ratios by more
    # than an order of magnitude in either direction.
    measured = float(np.clip(measured, constants.cpu_iter_ns / 10, constants.cpu_iter_ns * 10))
    return constants.scaled(cpu_iter_ns=measured)
