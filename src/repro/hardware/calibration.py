"""Calibration of the cost-model constants.

Three jobs live here:

1. :func:`constants_for_system` — per-platform adjustments of
   :class:`repro.hardware.costmodel.CostConstants`.  The paper's three
   systems differ not only in the raw numbers of Table 4 but in generation
   (the Teslas sustain wavefront kernels a little better than the consumer
   GTX boards; the i3's front-side bus is slower), and these adjustments are
   what make the qualitative thresholds land where Section 4.1.1 describes
   them.

2. :func:`measure_host_iter_ns` — a micro-benchmark of the *actual* machine
   running this reproduction.  The functional execution mode uses it to map
   one ``tsize`` unit onto real work, so that wall-clock measurements of the
   functional executors are self-consistent with the synthetic scale, even
   though absolute values obviously differ from the 2014 testbed.

3. :func:`constants_from_measurements` — the measured-profile path
   (:mod:`repro.autotuner.measured`): invert the cost model's serial and
   vectorized time formulas against *measured* wall-clocks of the functional
   executors, so that the model's predictions for the local host line up
   with reality instead of with the simulated 2014 testbed.
"""

from __future__ import annotations

import time
from typing import Mapping

import numpy as np

from repro.core.params import InputParams
from repro.hardware.costmodel import CostConstants
from repro.hardware.system import SystemSpec

#: Baseline constants shared by every platform before adjustment.
BASE_CONSTANTS = CostConstants()

#: Per-system overrides, keyed by the Table 4 system name.
_SYSTEM_OVERRIDES: dict[str, dict[str, float]] = {
    # Single consumer GPU on a slow dual-core+HT host: GPU relatively strong,
    # PCIe a little slower, GPU start-up slightly cheaper (lighter driver).
    "i3-540": {
        "gpu_iter_penalty": 9.0,
        "gpu_startup_s": 0.20,
    },
    # Four GTX 590 dies behind one PCIe switch: launches and transfers carry
    # a small extra cost when more than one die is driven.
    "i7-2600K": {
        "gpu_iter_penalty": 10.0,
        "multi_gpu_launch_factor": 0.4,
    },
    # Tesla boards: better sustained throughput on irregular kernels and more
    # device memory, but the fastest host CPU of the three.
    "i7-3820": {
        "gpu_iter_penalty": 8.5,
        "gpu_payload_ns_per_float": 20.0,
    },
}


def constants_for_system(system: SystemSpec | str) -> CostConstants:
    """Return the calibrated :class:`CostConstants` for one platform.

    Unknown systems (user-defined ones from
    :func:`repro.hardware.platforms.custom_system`) get the baseline
    constants unchanged.
    """
    name = system if isinstance(system, str) else system.name
    overrides = _SYSTEM_OVERRIDES.get(name, {})
    return BASE_CONSTANTS.scaled(**overrides)


def measure_host_iter_ns(samples: int = 3, iterations: int = 200_000) -> float:
    """Measure the cost of one synthetic-kernel iteration on this host (ns).

    The synthetic kernel's unit of work is a dependent multiply-add chain;
    the measurement below runs the same chain in NumPy batches so it finishes
    quickly while still being dominated by floating-point work.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    best = float("inf")
    x = np.linspace(0.1, 0.9, 1024)
    for _ in range(samples):
        t0 = time.perf_counter()
        acc = x.copy()
        rounds = max(1, iterations // x.size)
        for _ in range(rounds):
            acc = acc * 0.999 + 0.001
        elapsed = time.perf_counter() - t0
        per_iter = elapsed / (rounds * x.size)
        best = min(best, per_iter)
    return best * 1e9


def host_calibrated_constants(system: SystemSpec | str) -> CostConstants:
    """Platform constants with ``cpu_iter_ns`` replaced by a host measurement.

    This keeps relative platform behaviour intact while anchoring absolute
    simulated times to something measurable on the reproduction machine.
    Useful when comparing simulated ``rtime`` to the wall-clock time of the
    functional executors in the examples.
    """
    constants = constants_for_system(system)
    measured = measure_host_iter_ns()
    # Never let a wildly fast/slow host distort the platform ratios by more
    # than an order of magnitude in either direction.
    measured = float(np.clip(measured, constants.cpu_iter_ns / 10, constants.cpu_iter_ns * 10))
    return constants.scaled(cpu_iter_ns=measured)


def constants_from_measurements(
    system: SystemSpec,
    serial_walls: Mapping[InputParams, float],
    vectorized_walls: Mapping[InputParams, float] | None = None,
) -> CostConstants:
    """Fit :class:`CostConstants` to measured wall-clocks on ``system``.

    Inverts the cost model's closed forms against functional-executor
    measurements (:mod:`repro.autotuner.measured` collects them):

    * ``cpu_iter_ns`` from the serial walls — the model says
      ``serial = cells * (iter_ns * tsize + payload_ns * dsize) * clock``,
      so each instance yields one iter-ns estimate and the median is kept;
    * ``cpu_vector_speedup`` and ``vector_diag_overhead_us`` from the
      vectorized walls — ``vec = n_diag * overhead + serial / speedup`` is
      linear in ``(overhead, 1/speedup)`` and solved by least squares when
      at least two instances were measured.

    Values are clamped to sane ranges so a noisy profile cannot produce a
    degenerate model.  Constants not measurable on a CPU-only host (all the
    GPU terms) keep their :func:`constants_for_system` values.
    """
    if not serial_walls:
        raise ValueError("constants_from_measurements needs at least one serial wall")
    base = constants_for_system(system)
    clock_scale = base.ref_cpu_ghz / system.cpu.freq_ghz

    iter_estimates = []
    for params, wall in serial_walls.items():
        if wall <= 0:
            continue
        per_cell_ns = wall / (params.cells * clock_scale) * 1e9
        iter_ns = (per_cell_ns - base.cpu_payload_ns_per_float * params.dsize) / params.tsize
        if iter_ns > 0:
            iter_estimates.append(iter_ns)
    if not iter_estimates:
        raise ValueError("no usable serial measurements for calibration")
    cpu_iter_ns = float(np.clip(np.median(iter_estimates), 0.1, 10_000.0))
    fitted = base.scaled(cpu_iter_ns=cpu_iter_ns)

    if vectorized_walls and len(vectorized_walls) >= 2:
        # vec_wall = n_diagonals * overhead_s + serial_model / speedup:
        # least-squares for x = (overhead_s, 1/speedup).  With a single
        # instance the system is underdetermined (lstsq would split the wall
        # arbitrarily between the two constants), so the base values stay.
        rows, rhs = [], []
        for params, wall in vectorized_walls.items():
            serial_model = (
                params.cells
                * (cpu_iter_ns * params.tsize + base.cpu_payload_ns_per_float * params.dsize)
                * clock_scale
                * 1e-9
            )
            rows.append([float(params.n_diagonals), serial_model])
            rhs.append(float(wall))
        A = np.asarray(rows)
        b = np.asarray(rhs)
        solution, *_ = np.linalg.lstsq(A, b, rcond=None)
        overhead_s, inv_speedup = float(solution[0]), float(solution[1])
        speedup = 1.0 / inv_speedup if inv_speedup > 0 else base.cpu_vector_speedup
        fitted = fitted.scaled(
            cpu_vector_speedup=float(np.clip(speedup, 1.0, 64.0)),
            vector_diag_overhead_us=float(np.clip(overhead_s * 1e6, 0.0, 100.0)),
        )
    return fitted
