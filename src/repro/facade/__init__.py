"""Facade helpers behind :class:`repro.session.Session`.

The session module holds the user-facing object; the pieces it composes
live here so they can be reused (and tested) independently:

* :mod:`repro.facade.plan` — :class:`~repro.facade.plan.ResolvedPlan`, the
  inspectable, JSON-serialisable, replayable unit the session's
  plan/execute separation exchanges;
* :mod:`repro.facade.policy` — :class:`~repro.facade.policy.ExecutionPolicy`,
  the typed bundle of plan overrides (backend / engine / workers / dispatch /
  tunables) that replaces the scattered keyword arguments;
* :mod:`repro.facade.tuners` — :func:`~repro.facade.tuners.make_tuner`,
  the one place tuner strategy names (``"learned"``, ``"measured"``,
  ``"exhaustive"``) are resolved into
  :class:`repro.autotuner.protocol.Tuner` instances.
"""

from repro.facade.plan import PLAN_FORMAT_VERSION, ResolvedPlan, load_plan, save_plan
from repro.facade.policy import DISPATCH_MODES, ExecutionPolicy
from repro.facade.tuners import make_tuner

__all__ = [
    "ResolvedPlan",
    "PLAN_FORMAT_VERSION",
    "ExecutionPolicy",
    "DISPATCH_MODES",
    "save_plan",
    "load_plan",
    "make_tuner",
]
