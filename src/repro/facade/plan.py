"""The resolved execution plan the session's plan/execute split exchanges.

A :class:`ResolvedPlan` is everything needed to execute one application
instance, with every tuning decision already made: the application (by
registry name plus constructor overrides), the instance parameters, the
tunables, the backend/engine/worker selection and the strategy that produced
it.  Plans are

* **inspectable** — plain frozen dataclass fields plus :meth:`describe`;
* **JSON-serialisable** — :meth:`to_dict` / :meth:`from_dict` round-trip
  through the format-versioned layout :func:`save_plan` / :func:`load_plan`
  persist;
* **replayable** — :meth:`repro.session.Session.run` accepts a plan from
  any session (or a file written days earlier) as long as the application
  name is registered and the backend fits the session's system.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.autotuner.protocol import split_backend
from repro.core.exceptions import ArtifactError
from repro.core.params import InputParams, TunableParams
from repro.core.pattern import WavefrontProblem
from repro.utils.serialization import load_json, save_json

#: Format marker written into every persisted plan (bumped on layout changes).
PLAN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ResolvedPlan:
    """One fully-resolved, executable tuning decision for one instance.

    ``backend`` is an executor strategy name or a ``hybrid-<engine>`` alias;
    ``engine`` (when set) selects the hybrid executor's CPU engine and wins
    over the alias.  ``tuner`` records the strategy kind that produced the
    plan (``"learned"``, ``"measured"``, ``"exhaustive"``, ``"manual"``) and
    ``expected_s`` its runtime estimate, ``None`` when the strategy cannot
    estimate.  ``app_kwargs`` are the constructor overrides needed to
    rebuild the application from the registry (sorted name/value pairs, so
    plans hash and compare structurally).
    """

    app: str
    dim: int
    params: InputParams
    tunables: TunableParams
    backend: str
    system: str
    engine: str | None = None
    workers: int = 1
    #: Tile dispatch order of the multicore backends: ``"barrier"`` fans
    #: tile-diagonals with a barrier between them, ``"pipelined"`` drains the
    #: dependency graph with no barrier at all.  Single-core backends ignore
    #: it.  Plans persisted before the field existed load as ``"barrier"``.
    dispatch: str = "barrier"
    tuner: str = "manual"
    expected_s: float | None = None
    app_kwargs: tuple[tuple[str, object], ...] = ()
    #: The concrete problem the plan was resolved from, when the session had
    #: one in hand (always, for plans it resolved itself).  Excluded from
    #: equality and from the serialised layout: a plan loaded from JSON
    #: carries ``None`` here and is re-anchored through the application
    #: registry at :meth:`repro.session.Session.run` time.
    problem: WavefrontProblem | None = field(default=None, compare=False, repr=False)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def app_options(self) -> dict:
        """The application constructor overrides as a dictionary."""
        return dict(self.app_kwargs)

    def split(self) -> tuple[str, str | None]:
        """(executor strategy, CPU engine) with any backend alias decoded."""
        strategy, alias_engine = split_backend(self.backend)
        return strategy, self.engine if self.engine is not None else alias_engine

    def describe(self) -> str:
        """Human-readable one-line description of the whole plan."""
        strategy, engine = self.split()
        engine_txt = f", engine={engine}" if engine else ""
        workers_txt = f", workers={self.workers}" if self.workers > 1 else ""
        if self.dispatch != "barrier":
            workers_txt += f", dispatch={self.dispatch}"
        expected_txt = (
            f"  ~{self.expected_s * 1e3:.2f} ms expected"
            if self.expected_s is not None
            else ""
        )
        return (
            f"{self.app}[dim={self.dim}] -> {strategy}"
            f"({self.tunables.describe()}{engine_txt}{workers_txt}) "
            f"on {self.system} via {self.tuner}{expected_txt}"
        )

    def with_(self, **kwargs) -> "ResolvedPlan":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation (see :data:`PLAN_FORMAT_VERSION`)."""
        return {
            "format_version": PLAN_FORMAT_VERSION,
            "app": self.app,
            "dim": self.dim,
            "params": {
                "dim": self.params.dim,
                "tsize": self.params.tsize,
                "dsize": self.params.dsize,
            },
            "tunables": {
                k: int(v) for k, v in self.tunables.features().items()
            },
            "backend": self.backend,
            "engine": self.engine,
            "workers": self.workers,
            "dispatch": self.dispatch,
            "system": self.system,
            "tuner": self.tuner,
            "expected_s": self.expected_s,
            "app_kwargs": dict(self.app_kwargs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResolvedPlan":
        """Rebuild a plan serialised by :meth:`to_dict`.

        Raises :class:`repro.core.exceptions.ArtifactError` on a stale
        ``format_version`` or a payload that is not a plan.
        """
        if not isinstance(data, dict) or "backend" not in data or "app" not in data:
            raise ArtifactError("payload does not contain a resolved plan")
        version = data.get("format_version")
        if version != PLAN_FORMAT_VERSION:
            raise ArtifactError(
                f"unsupported plan format version {version!r} "
                f"(expected {PLAN_FORMAT_VERSION})"
            )
        p = data["params"]
        t = data["tunables"]
        return cls(
            app=str(data["app"]),
            dim=int(data["dim"]),
            params=InputParams(
                dim=int(p["dim"]), tsize=float(p["tsize"]), dsize=int(p["dsize"])
            ),
            tunables=TunableParams(
                cpu_tile=int(t["cpu_tile"]),
                band=int(t["band"]),
                gpu_count=int(t["gpu_count"]),
                gpu_tile=int(t["gpu_tile"]),
                halo=int(t["halo"]),
            ),
            backend=str(data["backend"]),
            engine=data.get("engine"),
            workers=int(data.get("workers", 1)),
            dispatch=str(data.get("dispatch", "barrier")),
            system=str(data["system"]),
            tuner=str(data.get("tuner", "manual")),
            expected_s=(
                float(data["expected_s"]) if data.get("expected_s") is not None else None
            ),
            app_kwargs=tuple(sorted(dict(data.get("app_kwargs", {})).items())),
        )


def save_plan(plan: ResolvedPlan, path: str | Path) -> Path:
    """Serialise a resolved plan to ``path`` (JSON)."""
    return save_json(plan.to_dict(), path)


def load_plan(path: str | Path) -> ResolvedPlan:
    """Restore a plan saved by :func:`save_plan`.

    Raises :class:`repro.core.exceptions.ArtifactError` when the file does
    not hold a plan or carries a stale ``format_version``.
    """
    try:
        payload = load_json(path)
    except FileNotFoundError as exc:
        raise ArtifactError(f"plan file not found: {exc.filename}") from None
    return ResolvedPlan.from_dict(payload)
