"""Typed execution policy: every plan override in one declarative object.

Planning overrides grew by accretion — ``backend=`` here, ``engine=`` and
``workers=`` there, ``dispatch`` nowhere at all — so
:class:`ExecutionPolicy` folds them into one frozen, validated value that
:meth:`repro.session.Session.plan` accepts as ``policy=``.  The legacy
keyword arguments keep working (they coerce into a policy and emit a
:class:`DeprecationWarning`), and a policy-built plan serialises exactly
like a kwargs-built one, so persisted plans are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import InvalidParameterError
from repro.core.params import TunableParams

#: Tile dispatch orders a policy may request.
DISPATCH_MODES: tuple[str, ...] = ("barrier", "pipelined")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a plan should execute: backend, engine, workers, dispatch, tunables.

    Every field is optional; ``None`` means "let the tuner decide".  Setting
    ``backend`` (or ``tunables``) makes the resulting plan *manual*, exactly
    as the legacy ``backend=`` keyword did.  ``dispatch`` selects the tile
    dispatch order of the multicore backends (``"barrier"`` or
    ``"pipelined"``); it is carried into the plan and honoured by the
    engine host when the plan runs.
    """

    backend: str | None = None
    engine: str | None = None
    workers: int | None = None
    dispatch: str | None = None
    tunables: TunableParams | None = None

    def __post_init__(self) -> None:
        """Validate the dispatch vocabulary and the worker count."""
        if self.dispatch is not None and self.dispatch not in DISPATCH_MODES:
            raise InvalidParameterError(
                f"unknown dispatch mode {self.dispatch!r}; expected one of: "
                f"{', '.join(DISPATCH_MODES)}"
            )
        if self.workers is not None and int(self.workers) < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {self.workers}"
            )

    @property
    def is_default(self) -> bool:
        """True when no field is set (the tuner decides everything)."""
        return (
            self.backend is None
            and self.engine is None
            and self.workers is None
            and self.dispatch is None
            and self.tunables is None
        )

    def overrides(self) -> dict:
        """The non-``None`` fields as a name -> value dict (cache keys, repr)."""
        fields = {
            "backend": self.backend,
            "engine": self.engine,
            "workers": self.workers,
            "dispatch": self.dispatch,
            "tunables": self.tunables,
        }
        return {name: value for name, value in fields.items() if value is not None}
