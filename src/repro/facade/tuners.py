"""Resolution of tuner strategy specifications into protocol instances.

The session accepts ``tuner="learned" | "measured" | "exhaustive"`` (or any
ready-made :class:`repro.autotuner.protocol.Tuner`); this module is the one
place those strings are interpreted, so the CLI, the session and the
examples cannot drift apart on what a strategy name means:

* ``"learned"`` — :class:`repro.autotuner.tuner.AutoTuner`, trained on the
  cost-model synthetic sweep at construction (or restored from a saved
  model file without retraining);
* ``"measured"`` — :class:`repro.autotuner.measured.MeasuredTuner`, loaded
  from the profile/model artifacts ``repro profile`` writes;
* ``"exhaustive"`` — :class:`repro.autotuner.protocol.ExhaustiveTuner`,
  the per-instance sweep needing no training.
"""

from __future__ import annotations

from pathlib import Path

from repro.autotuner.protocol import ExhaustiveTuner, Tuner
from repro.core.exceptions import ArtifactError, UsageError
from repro.core.parameter_space import ParameterSpace
from repro.hardware.costmodel import CostConstants
from repro.hardware.system import SystemSpec

#: Strategy names :func:`make_tuner` understands.
TUNER_KINDS = ("learned", "measured", "exhaustive")


def make_tuner(
    spec: str | Tuner,
    system: SystemSpec,
    space: ParameterSpace | None = None,
    constants: CostConstants | None = None,
    model_path: str | Path | None = None,
    profile_path: str | Path | None = None,
    plan_cache_size: int | None = None,
) -> Tuner:
    """Build (or pass through) the tuner behind one strategy specification.

    ``model_path`` restores a previously saved model: for ``"learned"`` it
    skips the training sweep, for ``"measured"`` it overrides the default
    model artifact location (``profile_path`` likewise for the profile).
    ``plan_cache_size`` bounds the measured tuner's internal plan cache.
    Raises :class:`~repro.core.exceptions.UsageError` for an unknown
    strategy name and :class:`~repro.core.exceptions.ArtifactError` when a
    required artifact is missing or unusable.
    """
    if isinstance(spec, Tuner):
        return spec
    if not isinstance(spec, str):
        raise UsageError(
            f"tuner must be a strategy name {TUNER_KINDS} or a Tuner instance, "
            f"got {type(spec).__name__}"
        )
    if spec == "learned":
        return _make_learned(system, space, constants, model_path)
    if spec == "measured":
        return _make_measured(model_path, profile_path, plan_cache_size)
    if spec == "exhaustive":
        return ExhaustiveTuner(system, space, constants)
    raise UsageError(
        f"unknown tuner strategy {spec!r}; choose from {', '.join(TUNER_KINDS)}"
    )


def _make_learned(
    system: SystemSpec,
    space: ParameterSpace | None,
    constants: CostConstants | None,
    model_path: str | Path | None,
):
    """The ``"learned"`` strategy: train (or restore) an AutoTuner."""
    from repro.autotuner.persistence import load_tuner
    from repro.autotuner.tuner import AutoTuner

    tuner = AutoTuner(system, space=space, constants=constants)
    if model_path is not None:
        try:
            tuner.model = load_tuner(model_path)
        except FileNotFoundError as exc:
            raise ArtifactError(f"saved tuner model not found: {exc.filename}") from None
    else:
        tuner.train()
    return tuner


def _make_measured(
    model_path: str | Path | None,
    profile_path: str | Path | None,
    plan_cache_size: int | None,
):
    """The ``"measured"`` strategy: load the profile/model artifact pair."""
    from repro.autotuner.measured import (
        DEFAULT_MODEL_PATH,
        DEFAULT_PLAN_CACHE_SIZE,
        DEFAULT_PROFILE_PATH,
        MeasuredTuner,
    )

    try:
        return MeasuredTuner.from_files(
            profile_path if profile_path is not None else DEFAULT_PROFILE_PATH,
            model_path if model_path is not None else DEFAULT_MODEL_PATH,
            plan_cache_size=(
                plan_cache_size if plan_cache_size is not None else DEFAULT_PLAN_CACHE_SIZE
            ),
        )
    except FileNotFoundError as exc:
        raise ArtifactError(
            f"missing measured artifact ({exc.filename}); "
            "run 'repro profile' first"
        ) from None
