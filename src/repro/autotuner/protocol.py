"""The common tuner protocol every tuning strategy speaks.

Before this module existed the package shipped three tuner classes with
three different deployment interfaces — :class:`repro.autotuner.tuner.AutoTuner`
(``tune()`` returning :class:`~repro.core.params.TunableParams` plus separate
engine/backend selectors), :class:`repro.autotuner.models.LearnedTuner`
(``predict()`` on raw feature dictionaries) and
:class:`repro.autotuner.measured.MeasuredTuner` (``tune()`` returning its own
``TunedPlan``) — and every caller had to know which one it was holding.

The protocol collapses the three into one question and one answer:

* :meth:`Tuner.resolve` takes an application name plus the instance's
  :class:`~repro.core.params.InputParams` and returns a
  :class:`PlanDecision` — backend, worker count, tunables and (when the
  strategy can estimate it) the expected runtime;
* :attr:`Tuner.kind` names the strategy for reports and serialized plans.

:class:`repro.session.Session` is the main consumer: it accepts any
``Tuner`` and never looks past this interface.  :class:`ExhaustiveTuner`
rounds out the built-in strategies with a per-instance exhaustive sweep
(slow, optimal under the cost model) so ``tuner="exhaustive"`` needs no
training step.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.exceptions import SearchError
from repro.core.params import InputParams, TunableParams

#: Hybrid backend aliases: ``hybrid-<engine>`` selects the three-phase
#: executor with that CPU engine.  :func:`split_backend` decodes them.
HYBRID_PREFIX = "hybrid-"


def split_backend(backend: str) -> tuple[str, str | None]:
    """Split a backend name into (executor strategy, hybrid CPU engine).

    ``"hybrid-vectorized"`` -> ``("hybrid", "vectorized")``; plain strategy
    names pass through with ``None`` for the engine.  ``"hybrid-mp"`` maps to
    the hybrid executor's ``cpu_engine="mp"``.
    """
    if backend.startswith(HYBRID_PREFIX):
        return "hybrid", backend[len(HYBRID_PREFIX) :]
    return backend, None


@dataclass(frozen=True)
class PlanDecision:
    """A tuning strategy's answer for one application instance.

    The decision is executor-ready but application-agnostic: the session
    combines it with the app/dim it asked about to form a full
    :class:`repro.facade.plan.ResolvedPlan`.  ``backend`` is an executor
    strategy name (``"hybrid"``, ``"mp-parallel"``, ...) or a hybrid alias
    (``"hybrid-vectorized"``); ``engine`` — when set — is the hybrid
    executor's CPU engine and wins over any engine encoded in ``backend``;
    ``expected_s`` is the strategy's runtime estimate (cost-model or
    measured), ``None`` when the strategy cannot estimate.
    """

    backend: str
    tunables: TunableParams
    workers: int = 1
    engine: str | None = None
    expected_s: float | None = None

    def split(self) -> tuple[str, str | None]:
        """(executor strategy, CPU engine) with the alias decoded."""
        strategy, alias_engine = split_backend(self.backend)
        return strategy, self.engine if self.engine is not None else alias_engine


class Tuner(abc.ABC):
    """Abstract base of every tuning strategy the session can deploy.

    Implementations: :class:`repro.autotuner.tuner.AutoTuner` (cost-model
    trained), :class:`repro.autotuner.models.LearnedTuner` (bare fitted
    models), :class:`repro.autotuner.measured.MeasuredTuner` (measured
    wall-clocks) and :class:`ExhaustiveTuner` (per-instance sweep).
    """

    #: Strategy name recorded in resolved plans ("learned", "measured", ...).
    kind: str = "tuner"

    @abc.abstractmethod
    def resolve(self, app: str, params: InputParams) -> PlanDecision:
        """Resolve tuned execution parameters for one application instance.

        ``app`` is the application name (used by strategies whose answers are
        application-aware, e.g. the measured tuner anchoring to its own
        measurements); ``params`` carries the (dim, tsize, dsize) features
        every strategy consumes.
        """

    def describe(self) -> str:
        """One-line human-readable identification of the strategy."""
        return f"{self.kind} tuner"


class ExhaustiveTuner(Tuner):
    """Per-instance exhaustive search presented through the tuner protocol.

    No training: every :meth:`resolve` call sweeps the full configuration
    space of that one instance under the cost model and returns the best
    point — the upper bound the learned tuners are measured against
    (the paper's "ber").  Slow per query, so the session's plan cache is
    what makes it usable for serving.
    """

    kind = "exhaustive"

    def __init__(self, system, space=None, constants=None) -> None:
        from repro.autotuner.exhaustive import ExhaustiveSearch

        self.system = system
        self.search = ExhaustiveSearch(system, space, constants)

    def resolve(self, app: str, params: InputParams) -> PlanDecision:
        """Sweep the instance's configurations and return the best point."""
        records = [
            r for r in self.search.sweep_instance(params) if not r.exceeded_threshold
        ]
        if not records:
            raise SearchError(
                f"every configuration of instance {params} exceeded the "
                f"{self.search.threshold_s:g}s threshold"
            )
        best = min(records, key=lambda r: r.rtime)
        engine = self.search.search_space.best_engine(params, self.search.cost_model)
        return PlanDecision(
            backend="hybrid",
            tunables=best.tunables,
            workers=1,
            engine=engine,
            expected_s=best.rtime,
        )

    def describe(self) -> str:
        """One-line description including the target system."""
        return f"exhaustive search on {self.system.name}"
