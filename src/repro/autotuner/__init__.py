"""Autotuning framework.

The workflow mirrors Figure 4 of the paper:

1. :class:`repro.autotuner.exhaustive.ExhaustiveSearch` sweeps the synthetic
   application over the Table 3 parameter space on one platform and records
   the runtime of every configuration (with the 90-second threshold);
2. :class:`repro.autotuner.training.TrainingSetBuilder` samples instances and
   keeps the best five configurations of each, producing the training set;
3. :class:`repro.autotuner.models.LearnedTuner` holds the fitted SVM gate and
   the per-parameter M5P / REP-tree models;
4. :class:`repro.autotuner.tuner.AutoTuner` ties it together: train once per
   system ("in the factory"), then hand it previously unseen applications and
   get tuned parameter settings back.

Every deployable strategy — :class:`~repro.autotuner.tuner.AutoTuner`,
:class:`~repro.autotuner.models.LearnedTuner`,
:class:`~repro.autotuner.measured.MeasuredTuner` and
:class:`~repro.autotuner.protocol.ExhaustiveTuner` — speaks the common
:class:`~repro.autotuner.protocol.Tuner` protocol
(``resolve(app, params) -> PlanDecision``), which is all
:class:`repro.session.Session` consumes.
"""

from repro.autotuner.protocol import ExhaustiveTuner, PlanDecision, Tuner
from repro.autotuner.search_space import SearchSpace
from repro.autotuner.exhaustive import ExhaustiveSearch, SearchRecord, SearchResults
from repro.autotuner.random_search import RandomSearch
from repro.autotuner.baselines import SimpleSchemes, simple_scheme_times
from repro.autotuner.training import TrainingSetBuilder, TrainingSet
from repro.autotuner.models import LearnedTuner
from repro.autotuner.tuner import AutoTuner, autotune_and_run
from repro.autotuner.persistence import save_tuner, load_tuner
from repro.autotuner.measured import (
    MeasuredProfile,
    MeasuredRecord,
    MeasuredTuner,
    ProfileConfig,
    TunedPlan,
    load_profile,
    profile_host,
    save_profile,
    train_measured_tuner,
)

__all__ = [
    "Tuner",
    "PlanDecision",
    "ExhaustiveTuner",
    "SearchSpace",
    "ExhaustiveSearch",
    "SearchRecord",
    "SearchResults",
    "RandomSearch",
    "SimpleSchemes",
    "simple_scheme_times",
    "TrainingSetBuilder",
    "TrainingSet",
    "LearnedTuner",
    "AutoTuner",
    "autotune_and_run",
    "save_tuner",
    "load_tuner",
    "MeasuredProfile",
    "MeasuredRecord",
    "MeasuredTuner",
    "ProfileConfig",
    "TunedPlan",
    "load_profile",
    "profile_host",
    "save_profile",
    "train_measured_tuner",
]
