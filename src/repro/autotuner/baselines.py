"""The three simple schemes the tuned points are compared against (Figure 6).

a) serial on one CPU core,
b) tiled parallel across all CPU cores with no GPU phase,
c) everything inside the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import InputParams
from repro.hardware.costmodel import CostConstants, CostModel
from repro.hardware.system import SystemSpec


@dataclass(frozen=True)
class SimpleSchemes:
    """Runtimes of the simple schemes for one instance (seconds).

    ``vectorized`` is not part of the paper's Figure 6 (the 2014 baseline is
    the scalar serial sweep) but is reported alongside: it is the single-core
    batched engine any tuned configuration should also beat.
    """

    serial: float
    cpu_parallel: float
    gpu_only: float
    vectorized: float = float("inf")

    def speedups_of(self, rtime: float) -> dict[str, float]:
        """Speedup of a given runtime over each scheme."""
        return {
            "vs_serial": self.serial / rtime,
            "vs_cpu_parallel": self.cpu_parallel / rtime,
            "vs_gpu_only": self.gpu_only / rtime,
            "vs_vectorized": self.vectorized / rtime,
        }


def simple_scheme_times(
    system: SystemSpec,
    params: InputParams,
    cpu_tile: int = 8,
    constants: CostConstants | None = None,
) -> SimpleSchemes:
    """Cost-model runtimes of the simple schemes on one system."""
    model = CostModel(system, constants)
    gpu_only = (
        model.baseline_gpu_only(params)
        if system.has_gpu
        else float("inf")
    )
    return SimpleSchemes(
        serial=model.baseline_serial(params),
        cpu_parallel=model.baseline_cpu_parallel(params, cpu_tile=cpu_tile),
        gpu_only=gpu_only,
        vectorized=model.baseline_vectorized(params),
    )
