"""Training-set generation from exhaustive-search results (Section 3.1.2).

"Training sets are created by subsetting the exhaustive search data as
follows: firstly a subset of the problem instances (i.e., by dim, tsize and
dsize) are selected by regular sampling; then the best five performance
points for these instances (by tunable parameter values) are added to the
training set."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import SearchError
from repro.core.params import InputParams
from repro.autotuner.exhaustive import SearchResults
from repro.ml.dataset import Dataset

#: Features the learned models receive (the instance characteristics).
INPUT_FEATURES = ("dim", "tsize", "dsize")
#: Tunable parameters the learned models predict.
TARGET_PARAMETERS = ("cpu_tile", "band", "gpu_count", "gpu_tile", "halo")


@dataclass
class TrainingSet:
    """Flat training records plus the instance split used to build them."""

    records: list[dict[str, float]] = field(default_factory=list)
    train_instances: list[InputParams] = field(default_factory=list)
    holdout_instances: list[InputParams] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    def dataset(self, target: str, features: tuple[str, ...] = INPUT_FEATURES) -> Dataset:
        """Dataset with the given feature columns and target column."""
        if not self.records:
            raise SearchError("training set is empty")
        return Dataset.from_records(self.records, features=list(features), target=target)

    def gate_dataset(self, features: tuple[str, ...] = INPUT_FEATURES) -> Dataset:
        """Dataset for the SVM gate: target 1 when parallelism pays off."""
        return self.dataset("use_parallel", features)

    def gpu_dataset(self, target: str, features: tuple[str, ...]) -> Dataset:
        """Dataset restricted to GPU-using records of GPU-favouring instances.

        Instances whose *best* configuration is CPU-only still contribute a
        couple of GPU configurations to the best-five list (the least bad
        ones); their band/halo values are noise for the regression models and
        are filtered out here.
        """
        gpu_records = [
            r
            for r in self.records
            if r["band"] >= 0 and r.get("best_uses_gpu", 1.0) > 0.5
        ]
        if not gpu_records:
            raise SearchError("no GPU-using records in the training set")
        return Dataset.from_records(gpu_records, features=list(features), target=target)

    def has_gpu_records(self) -> bool:
        """True when at least one GPU-favouring training record exists."""
        return any(
            r["band"] >= 0 and r.get("best_uses_gpu", 1.0) > 0.5 for r in self.records
        )

    def has_dual_gpu_records(self) -> bool:
        """True when at least one training record uses two GPUs."""
        return any(r["halo"] >= 0 for r in self.records)


class TrainingSetBuilder:
    """Builds a :class:`TrainingSet` out of :class:`SearchResults`."""

    def __init__(
        self,
        best_per_instance: int = 5,
        instance_stride: int = 2,
        parallel_margin: float = 0.95,
        seed: int | None = 13,
    ) -> None:
        if best_per_instance < 1:
            raise SearchError(
                f"best_per_instance must be >= 1, got {best_per_instance}"
            )
        if instance_stride < 1:
            raise SearchError(f"instance_stride must be >= 1, got {instance_stride}")
        if not 0.0 < parallel_margin <= 1.0:
            raise SearchError(
                f"parallel_margin must be in (0, 1], got {parallel_margin}"
            )
        self.best_per_instance = best_per_instance
        self.instance_stride = instance_stride
        self.parallel_margin = parallel_margin
        self.seed = seed

    # ------------------------------------------------------------------
    def split_instances(
        self, results: SearchResults
    ) -> tuple[list[InputParams], list[InputParams]]:
        """Sample instances for training; the rest become hold-outs.

        The sweep enumerates instances in a regular (dim, tsize, dsize) order,
        so a naive "every k-th instance" stride would alias with the innermost
        dimension (e.g. pick only dsize=1 instances and hold out every
        dsize=5 one).  The paper avoids such cyclic patterns by irregular
        spacing; here the instances are deterministically shuffled before the
        stride is applied, which achieves the same stratification.
        """
        instances = results.instances()
        if not instances:
            raise SearchError("search results contain no instances")
        from repro.utils.rng import make_rng

        shuffled = list(instances)
        make_rng(self.seed).shuffle(shuffled)
        train = shuffled[:: self.instance_stride]
        train_set = set(train)
        # Preserve sweep order in the reported lists for readability.
        train = [p for p in instances if p in train_set]
        holdout = [p for p in instances if p not in train_set]
        if not holdout:
            # Keep at least one instance aside for cross-validation whenever
            # there is more than one instance at all.
            if len(train) > 1:
                holdout = [train.pop()]
        return train, holdout

    def build(self, results: SearchResults) -> TrainingSet:
        """Assemble the training set from the best points of the sampled instances."""
        train_instances, holdout_instances = self.split_instances(results)
        records: list[dict[str, float]] = []
        for params in train_instances:
            serial = results.serial_time(params)
            best_points = results.best_n(params, self.best_per_instance)
            if not best_points:
                continue
            # Instance-level decisions are taken from the single best point:
            # they answer "what should be done for THIS instance", which is
            # what the gate / GPU-use classifiers must learn.  The regression
            # targets keep all five points, as in the paper.
            instance_best = best_points[0]
            best_uses_gpu = float(instance_best.tunables.band >= 0)
            use_parallel = float(instance_best.rtime < serial * self.parallel_margin)
            for record in best_points:
                flat = record.summary()
                flat["serial_rtime"] = serial
                flat["speedup"] = serial / record.rtime if record.rtime > 0 else 0.0
                flat["use_parallel"] = use_parallel
                flat["best_uses_gpu"] = best_uses_gpu
                records.append(flat)
        if not records:
            raise SearchError("no training records could be built from the results")
        return TrainingSet(
            records=records,
            train_instances=train_instances,
            holdout_instances=holdout_instances,
        )


def _serial_like(record) -> object:
    """The canonical serial configuration, for the gate label."""
    from repro.core.params import TunableParams

    return TunableParams(cpu_tile=1)


def summarise_training_set(training: TrainingSet) -> dict[str, float]:
    """Quick statistics used by reports and tests."""
    if not training.records:
        raise SearchError("training set is empty")
    bands = np.array([r["band"] for r in training.records])
    halos = np.array([r["halo"] for r in training.records])
    return {
        "n_records": float(len(training.records)),
        "n_train_instances": float(len(training.train_instances)),
        "n_holdout_instances": float(len(training.holdout_instances)),
        "fraction_gpu": float(np.mean(bands >= 0)),
        "fraction_dual_gpu": float(np.mean(halos >= 0)),
        "mean_speedup": float(np.mean([r["speedup"] for r in training.records])),
        "max_speedup": float(np.max([r["speedup"] for r in training.records])),
    }
