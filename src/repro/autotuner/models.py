"""The learned per-parameter models bundled into one tuner (Section 4.1.5).

The paper's model structure, reproduced here:

* a binary **SVM gate** decides whether to exploit parallelism at all;
* **cpu-tile** is predicted by an M5P model tree from the input parameters
  only (dropping the other tunables increased accuracy);
* whether a **GPU is employed** is a binary decision predicted by a REP tree
  (the paper folds this into the gpu-tile value being 0 or 1);
* **band** is predicted by an M5P tree from the input parameters plus the
  gpu-tile decision;
* **halo** is predicted by an M5P tree from the input parameters plus band
  and cpu-tile (Figure 9 shows exactly those dependencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.exceptions import ModelNotFittedError, SearchError
from repro.core.parameter_space import PAPER_CPU_TILES
from repro.core.params import InputParams, TunableParams
from repro.autotuner.protocol import PlanDecision, Tuner
from repro.autotuner.training import TrainingSet, INPUT_FEATURES
from repro.ml.svm import LinearSVM
from repro.ml.tree.m5p import M5ModelTree
from repro.ml.tree.reptree import REPTree

#: Feature columns of the band model (inputs + the GPU-use decision).
BAND_FEATURES = ("dim", "tsize", "dsize", "gpu_tile")
#: Feature columns of the halo model (inputs + band + cpu-tile, as in Figure 9).
HALO_FEATURES = ("dim", "tsize", "dsize", "cpu_tile", "band")


def _snap(value: float, allowed: tuple[int, ...]) -> int:
    """Round a real-valued prediction to the nearest allowed discrete value."""
    arr = np.asarray(allowed, dtype=float)
    return int(arr[np.argmin(np.abs(arr - value))])


@dataclass
class LearnedTuner(Tuner):
    """The fitted gate + per-parameter models for one system."""

    kind = "learned-model"

    system_name: str
    supports_gpu: bool = True
    supports_dual_gpu: bool = True
    #: Discrete cpu-tile values predictions snap to.  The paper's Table 3
    #: grid by default; the measured pipeline passes the tile grid it swept.
    cpu_tile_choices: tuple[int, ...] = PAPER_CPU_TILES
    gate: LinearSVM = field(default_factory=LinearSVM)
    cpu_tile_model: M5ModelTree = field(
        default_factory=lambda: M5ModelTree(min_leaf=3, smoothing_k=5.0)
    )
    gpu_use_model: REPTree = field(
        default_factory=lambda: REPTree(min_leaf=2, prune=False)
    )
    band_model: M5ModelTree = field(
        default_factory=lambda: M5ModelTree(min_leaf=3, smoothing_k=5.0)
    )
    halo_model: M5ModelTree | None = None
    #: Best observed runtime per training instance, keyed by
    #: ``(dim, tsize, dsize)``.  Filled by :meth:`fit`; lets :meth:`resolve`
    #: report an ``expected_s`` (nearest-anchor lookup) so serving-time
    #: drift detection has a prediction to compare live latencies against.
    runtime_anchors: dict[tuple[float, float, float], float] = field(
        default_factory=dict
    )
    fitted: bool = False

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, training: TrainingSet) -> "LearnedTuner":
        """Fit every component model from one training set."""
        if len(training) == 0:
            raise SearchError("cannot fit a tuner on an empty training set")

        self.gate.fit(training.gate_dataset())
        self.cpu_tile_model.fit(training.dataset("cpu_tile", INPUT_FEATURES))

        # GPU-use decision: the paper encodes "no GPU" as gpu-tile = 0.  The
        # label is the instance-level decision (does the best configuration
        # of this instance offload to the GPU?).
        gpu_use_records = [
            dict(r, gpu_use=float(r.get("best_uses_gpu", float(r["band"] >= 0))))
            for r in training.records
        ]
        from repro.ml.dataset import Dataset  # local import to avoid cycles

        self.gpu_use_model.fit(
            Dataset.from_records(gpu_use_records, features=list(INPUT_FEATURES), target="gpu_use")
        )

        if training.has_gpu_records():
            self.band_model.fit(training.gpu_dataset("band", BAND_FEATURES))
            if self.supports_dual_gpu:
                self.halo_model = M5ModelTree(min_leaf=3, smoothing_k=5.0)
                self.halo_model.fit(training.gpu_dataset("halo", HALO_FEATURES))
            else:
                self.halo_model = None
            self.supports_gpu = True
        else:
            self.supports_gpu = False
            self.halo_model = None

        # Runtime anchors: the best rtime seen per training instance.  The
        # training set only keeps each instance's best-n configurations, so
        # the per-instance minimum is the instance's tuned-runtime estimate.
        anchors: dict[tuple[float, float, float], float] = {}
        for record in training.records:
            key = (
                float(record["dim"]),
                float(record["tsize"]),
                float(record["dsize"]),
            )
            rtime = float(record["rtime"])
            if key not in anchors or rtime < anchors[key]:
                anchors[key] = rtime
        self.runtime_anchors = anchors
        self.fitted = True
        return self

    def _check_fitted(self) -> None:
        if not self.fitted:
            raise ModelNotFittedError("LearnedTuner used before fit()")

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, features: Mapping[str, float]) -> TunableParams:
        """Tuned parameter settings for one previously unseen instance."""
        self._check_fitted()
        dim = int(features["dim"])
        x_input = np.array([float(features[f]) for f in INPUT_FEATURES])

        # CPU tile size from the input parameters only (always needed: even a
        # "no parallelism worth it" verdict still runs the tiled CPU code path,
        # so a sensible tile size is part of the answer).
        cpu_tile = _snap(float(self.cpu_tile_model.predict(x_input)), self.cpu_tile_choices)

        # Step 1: is parallelism (in particular GPU offload) worth it at all?
        if not bool(self.gate.predict_bool(x_input)[0]):
            return TunableParams(cpu_tile=cpu_tile)

        # Step 3: binary GPU-use decision (the gpu-tile 0/1 encoding).
        use_gpu = (
            bool(np.atleast_1d(self.gpu_use_model.predict_binary(x_input))[0])
            and self.supports_gpu
        )
        if not use_gpu:
            return TunableParams(cpu_tile=cpu_tile)

        # Step 4: band from inputs + the gpu-tile decision (1 = untiled GPU).
        gpu_tile = 1
        x_band = np.array([*x_input, float(gpu_tile)])
        band = int(round(float(self.band_model.predict(x_band))))
        if band < 0:
            return TunableParams(cpu_tile=cpu_tile)
        band = min(band, dim - 1)

        # Step 5: halo from inputs + cpu-tile + band (dual-GPU systems only).
        halo = -1
        if self.supports_dual_gpu and self.halo_model is not None:
            x_halo = np.array([*x_input, float(cpu_tile), float(band)])
            halo = int(round(float(self.halo_model.predict(x_halo))))
            halo = max(-1, halo)

        return TunableParams.from_encoding(
            cpu_tile=cpu_tile, band=band, halo=halo, gpu_tile=gpu_tile
        ).clipped(dim)

    def expected_runtime(self, params: InputParams) -> float | None:
        """Runtime estimate from the nearest training anchor, or ``None``.

        Nearest in log-space on (dim, tsize) with a mismatch penalty on
        dsize — the same geometry-dominated distance the measured tuner uses
        for instance anchoring.  A bundle restored from a pre-anchor
        serialisation has no anchors and answers ``None``.
        """
        if not self.runtime_anchors:
            return None

        def distance(key: tuple[float, float, float]) -> float:
            dim, tsize, dsize = key
            d = abs(np.log(max(params.dim, 1)) - np.log(max(dim, 1.0)))
            d += abs(np.log(max(params.tsize, 1)) - np.log(max(tsize, 1.0)))
            d += 0.0 if float(params.dsize) == dsize else 0.5
            return float(d)

        nearest = min(self.runtime_anchors, key=distance)
        return float(self.runtime_anchors[nearest])

    def resolve(self, app: str, params: InputParams) -> PlanDecision:
        """The :class:`~repro.autotuner.protocol.Tuner` protocol entry point.

        A bare model bundle carries no cost model or profile, so the answer
        is the predicted tunables on the hybrid executor with the default
        engine selection left to the runtime; the runtime estimate comes
        from the nearest training anchor (:meth:`expected_runtime`).
        """
        tunables = self.predict(params.features())
        return PlanDecision(
            backend="hybrid",
            tunables=tunables.clipped(params.dim),
            workers=1,
            expected_s=self.expected_runtime(params),
        )

    def describe(self) -> str:
        """One-line description including origin system and fit state."""
        state = "fitted" if self.fitted else "unfitted"
        return f"learned model bundle from {self.system_name} ({state})"

    # ------------------------------------------------------------------
    # Persistence / reporting
    # ------------------------------------------------------------------
    def model_tree_text(self, parameter: str = "halo") -> str:
        """Text dump of one learned model tree (the Figure 9 artefact)."""
        self._check_fitted()
        trees = {
            "halo": self.halo_model,
            "band": self.band_model,
            "cpu_tile": self.cpu_tile_model,
        }
        tree = trees.get(parameter)
        if tree is None:
            raise SearchError(f"no model tree available for parameter {parameter!r}")
        return tree.to_text()

    def to_dict(self) -> dict:
        """JSON-serialisable representation of every fitted model."""
        self._check_fitted()
        return {
            "system_name": self.system_name,
            "supports_gpu": self.supports_gpu,
            "supports_dual_gpu": self.supports_dual_gpu,
            "cpu_tile_choices": list(self.cpu_tile_choices),
            "gate": self.gate.to_dict(),
            "cpu_tile_model": self.cpu_tile_model.to_dict(),
            "gpu_use_model": self.gpu_use_model.to_dict(),
            "band_model": self.band_model.to_dict() if self.supports_gpu else None,
            "halo_model": self.halo_model.to_dict() if self.halo_model is not None else None,
            "runtime_anchors": [
                [dim, tsize, dsize, rtime]
                for (dim, tsize, dsize), rtime in sorted(self.runtime_anchors.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LearnedTuner":
        """Rebuild a tuner serialised by :meth:`to_dict`."""
        tuner = cls(
            system_name=data["system_name"],
            supports_gpu=bool(data["supports_gpu"]),
            supports_dual_gpu=bool(data["supports_dual_gpu"]),
            cpu_tile_choices=tuple(
                int(t) for t in data.get("cpu_tile_choices", PAPER_CPU_TILES)
            ),
        )
        tuner.gate = LinearSVM.from_dict(data["gate"])
        tuner.cpu_tile_model = M5ModelTree.from_dict(data["cpu_tile_model"])
        tuner.gpu_use_model = REPTree.from_dict(data["gpu_use_model"])
        if data.get("band_model"):
            tuner.band_model = M5ModelTree.from_dict(data["band_model"])
        if data.get("halo_model"):
            tuner.halo_model = M5ModelTree.from_dict(data["halo_model"])
        tuner.runtime_anchors = {
            (float(dim), float(tsize), float(dsize)): float(rtime)
            for dim, tsize, dsize, rtime in data.get("runtime_anchors", [])
        }
        tuner.fitted = True
        return tuner
