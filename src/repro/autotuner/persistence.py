"""Saving and loading trained tuners.

The paper's deployment scenario trains the models "in the factory" and ships
them with the library; these helpers serialise a fitted
:class:`repro.autotuner.models.LearnedTuner` to JSON and restore it without
re-running the exhaustive search.
"""

from __future__ import annotations

from pathlib import Path

from repro.autotuner.models import LearnedTuner
from repro.core.exceptions import SearchError
from repro.utils.serialization import load_json, save_json

#: Format marker written into every tuner file.
FORMAT_VERSION = 1


def save_tuner(tuner: LearnedTuner, path: str | Path) -> Path:
    """Serialise a fitted tuner to ``path`` (JSON)."""
    payload = {
        "format_version": FORMAT_VERSION,
        "tuner": tuner.to_dict(),
    }
    return save_json(payload, path)


def load_tuner(path: str | Path) -> LearnedTuner:
    """Restore a tuner saved by :func:`save_tuner`."""
    payload = load_json(path)
    if not isinstance(payload, dict) or "tuner" not in payload:
        raise SearchError(f"{path} does not contain a serialised tuner")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise SearchError(
            f"unsupported tuner format version {version!r} (expected {FORMAT_VERSION})"
        )
    return LearnedTuner.from_dict(payload["tuner"])
