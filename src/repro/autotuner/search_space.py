"""The search space explored on one platform.

Couples a :class:`repro.core.parameter_space.ParameterSpace` (what the paper
sweeps, Table 3) with a :class:`repro.hardware.system.SystemSpec` (what the
platform can actually run — e.g. the i3-540 has one GPU, so the halo
dimension collapses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.parameter_space import ParameterSpace
from repro.core.params import InputParams, TunableParams
from repro.hardware.system import SystemSpec


@dataclass(frozen=True)
class SearchSpace:
    """Parameter space restricted to what ``system`` supports."""

    space: ParameterSpace
    system: SystemSpec

    @property
    def max_gpus(self) -> int:
        """GPUs the tuner may use on this system (the paper caps this at 2)."""
        return self.system.max_usable_gpus

    def instances(self) -> Iterator[InputParams]:
        """All (dim, tsize, dsize) instances of the space."""
        return self.space.instances()

    def configurations(self, instance: InputParams) -> list[TunableParams]:
        """Distinct tunable configurations explored for ``instance``."""
        seen: set[TunableParams] = set()
        out: list[TunableParams] = []
        for config in self.space.configurations(instance, max_gpus=self.max_gpus):
            if config not in seen:
                seen.add(config)
                out.append(config)
        return out

    def size_estimate(self) -> int:
        """Approximate number of (instance, configuration) points in the sweep."""
        total = 0
        for dim in self.space.dims:
            probe = InputParams(dim=dim, tsize=self.space.tsizes[0], dsize=self.space.dsizes[0])
            per_dim = len(self.configurations(probe))
            total += per_dim * len(self.space.tsizes) * len(self.space.dsizes)
        return total

    def describe(self) -> dict[str, object]:
        """Summary used by the Table 3 bench."""
        info = self.space.describe()
        info["system"] = self.system.name
        info["max_gpus"] = self.max_gpus
        info["size_estimate"] = self.size_estimate()
        return info
