"""The search space explored on one platform.

Couples a :class:`repro.core.parameter_space.ParameterSpace` (what the paper
sweeps, Table 3) with a :class:`repro.hardware.system.SystemSpec` (what the
platform can actually run — e.g. the i3-540 has one GPU, so the halo
dimension collapses).

Beyond the paper's five tunables the space carries an *engine* dimension:
which single-core backend (scalar ``serial`` or batched ``vectorized``) the
CPU phases run on.  Engine choice does not interact with band / halo — the
best engine is decided per instance by direct cost-model comparison
(:meth:`SearchSpace.best_engine`) instead of multiplying the swept grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.parameter_space import ParameterSpace
from repro.core.params import InputParams, TunableParams
from repro.hardware.costmodel import CostModel
from repro.hardware.system import SystemSpec


@dataclass(frozen=True)
class SearchSpace:
    """Parameter space restricted to what ``system`` supports."""

    space: ParameterSpace
    system: SystemSpec

    @property
    def max_gpus(self) -> int:
        """GPUs the tuner may use on this system (the paper caps this at 2)."""
        return self.system.max_usable_gpus

    @property
    def engines(self) -> tuple[str, ...]:
        """Serial-engine backends available for the CPU phases.

        ``("vectorized", "serial")`` when NumPy is importable, otherwise just
        ``("serial",)`` — the engine dimension of the search space.
        """
        from repro.runtime.registry import available_serial_engines

        return tuple(available_serial_engines())

    def best_engine(self, instance: InputParams, cost_model: CostModel | None = None) -> str:
        """Cheapest available engine for ``instance`` under the cost model."""
        model = cost_model if cost_model is not None else CostModel(self.system)
        return min(self.engines, key=lambda e: model.engine_time(e, instance))

    def instances(self) -> Iterator[InputParams]:
        """All (dim, tsize, dsize) instances of the space."""
        return self.space.instances()

    def configurations(self, instance: InputParams) -> list[TunableParams]:
        """Distinct tunable configurations explored for ``instance``."""
        seen: set[TunableParams] = set()
        out: list[TunableParams] = []
        for config in self.space.configurations(instance, max_gpus=self.max_gpus):
            if config not in seen:
                seen.add(config)
                out.append(config)
        return out

    def size_estimate(self) -> int:
        """Approximate number of (instance, configuration) points in the sweep."""
        total = 0
        for dim in self.space.dims:
            probe = InputParams(dim=dim, tsize=self.space.tsizes[0], dsize=self.space.dsizes[0])
            per_dim = len(self.configurations(probe))
            total += per_dim * len(self.space.tsizes) * len(self.space.dsizes)
        return total

    def describe(self) -> dict[str, object]:
        """Summary used by the Table 3 bench."""
        info = self.space.describe()
        info["system"] = self.system.name
        info["max_gpus"] = self.max_gpus
        info["engines"] = list(self.engines)
        info["size_estimate"] = self.size_estimate()
        return info
