"""The search space explored on one platform.

Couples a :class:`repro.core.parameter_space.ParameterSpace` (what the paper
sweeps, Table 3) with a :class:`repro.hardware.system.SystemSpec` (what the
platform can actually run — e.g. the i3-540 has one GPU, so the halo
dimension collapses).

Beyond the paper's five tunables the space carries an *engine* dimension —
which single-core backend (scalar ``serial`` or batched ``vectorized``) the
CPU phases run on — plus a *CPU backend* and a *worker-count* dimension for
the shared-memory multicore backend (``mp-parallel``).  None of these
interact with band / halo, so instead of multiplying the swept grid they
are decided per instance by direct cost-model comparison
(:meth:`SearchSpace.best_engine`, :meth:`SearchSpace.best_cpu_backend`,
:meth:`SearchSpace.best_workers` — the latter two through the cost model's
parallel-efficiency term).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.parameter_space import ParameterSpace
from repro.core.params import InputParams, TunableParams
from repro.hardware.costmodel import CostModel
from repro.hardware.system import SystemSpec


@dataclass(frozen=True)
class SearchSpace:
    """Parameter space restricted to what ``system`` supports."""

    space: ParameterSpace
    system: SystemSpec

    @property
    def max_gpus(self) -> int:
        """GPUs the tuner may use on this system (the paper caps this at 2)."""
        return self.system.max_usable_gpus

    @property
    def engines(self) -> tuple[str, ...]:
        """Serial-engine backends available for the CPU phases.

        ``("vectorized", "serial")`` when NumPy is importable, otherwise just
        ``("serial",)`` — the engine dimension of the search space.
        """
        from repro.runtime.registry import available_serial_engines

        return tuple(available_serial_engines())

    def best_engine(self, instance: InputParams, cost_model: CostModel | None = None) -> str:
        """Cheapest available engine for ``instance`` under the cost model."""
        model = cost_model if cost_model is not None else CostModel(self.system)
        return min(self.engines, key=lambda e: model.engine_time(e, instance))

    @property
    def worker_counts(self) -> tuple[int, ...]:
        """Candidate worker counts for the multicore backend.

        Powers of two up to the platform's worker budget, always including
        the budget itself — the worker-count dimension of the search space.
        Like the engine dimension it is not swept against band/halo: the
        best count is resolved per instance by direct cost-model comparison
        (:meth:`best_workers`).
        """
        budget = self.system.cpu.workers
        counts: list[int] = []
        w = 1
        while w < budget:
            counts.append(w)
            w *= 2
        counts.append(budget)
        return tuple(dict.fromkeys(counts))

    @property
    def cpu_backends(self) -> tuple[str, ...]:
        """CPU backend dimension: serial engines, multicore pools, compiled tier.

        ``mp-parallel`` and its barrier-free sibling ``pipelined`` share the
        vectorized engine's NumPy gate (their tile sweeps are the same
        batched evaluation), so they are offered exactly when ``vectorized``
        is.  The ``compiled`` tier enters the dimension only when its
        availability probe passes (Numba importable) — resolved through the
        registry's capability index, so the tuner never hard-codes the gate.
        """
        from repro.runtime.registry import engines_with

        engines = self.engines
        if "vectorized" in engines:
            engines = engines + ("mp-parallel", "pipelined")
        return engines + tuple(engines_with("compiled"))

    def mp_tile_candidates(self, instance: InputParams) -> tuple[int, ...]:
        """Candidate tile sides for the multicore backend on ``instance``.

        The backend's sweet spot is much coarser than the paper's cache
        tiles (the pool dispatch must be amortised), so the candidates span
        8 .. 256 clipped to the grid.
        """
        return tuple(t for t in (8, 16, 32, 64, 128, 256) if t <= instance.dim) or (
            instance.dim,
        )

    def _mp_time(
        self,
        model: CostModel,
        instance: InputParams,
        cpu_tile: int | None,
        workers: int,
    ) -> float:
        """mp-parallel runtime at ``workers``, tile fixed or co-optimised."""
        tiles = (cpu_tile,) if cpu_tile is not None else self.mp_tile_candidates(instance)
        return min(model.mp_parallel_time(instance, tile, workers) for tile in tiles)

    def _pipelined_time(
        self,
        model: CostModel,
        instance: InputParams,
        cpu_tile: int | None,
        workers: int,
    ) -> float:
        """Pipelined-dispatch runtime at ``workers`` (tile fixed or co-optimised)."""
        tiles = (cpu_tile,) if cpu_tile is not None else self.mp_tile_candidates(instance)
        return min(model.pipelined_time(instance, tile, workers) for tile in tiles)

    def best_workers(
        self,
        instance: InputParams,
        cpu_tile: int | None = None,
        cost_model: CostModel | None = None,
    ) -> int:
        """Worker count minimising the multicore backend's predicted runtime.

        Resolved through :meth:`repro.hardware.costmodel.CostModel.mp_parallel_time`,
        whose parallel-efficiency term penalises worker counts the tile
        wavefront cannot keep busy.  With ``cpu_tile=None`` (the default)
        the tile side is co-optimised over :meth:`mp_tile_candidates` —
        the backend deploys with its own coarse tile, not the cache tile
        the learned models pick for the scalar phases.
        """
        model = cost_model if cost_model is not None else CostModel(self.system)
        return min(
            self.worker_counts,
            key=lambda w: self._mp_time(model, instance, cpu_tile, w),
        )

    def best_cpu_backend(
        self,
        instance: InputParams,
        cpu_tile: int | None = None,
        cost_model: CostModel | None = None,
    ) -> tuple[str, int]:
        """Cheapest CPU backend for ``instance`` and its worker count.

        Returns ``(backend, workers)``; ``workers`` is 1 for the single-core
        engines (and the compiled tier) and :meth:`best_workers` for the
        multicore backends (``mp-parallel`` and ``pipelined``).  As in
        :meth:`best_workers`, ``cpu_tile=None`` co-optimises the multicore
        backend's tile side.
        """
        model = cost_model if cost_model is not None else CostModel(self.system)
        workers = self.best_workers(instance, cpu_tile, model)

        def runtime(backend: str) -> float:
            if backend == "mp-parallel":
                return self._mp_time(model, instance, cpu_tile, workers)
            if backend == "pipelined":
                return self._pipelined_time(model, instance, cpu_tile, workers)
            return model.engine_time(backend, instance)

        best = min(self.cpu_backends, key=runtime)
        return best, (workers if best in ("mp-parallel", "pipelined") else 1)

    def instances(self) -> Iterator[InputParams]:
        """All (dim, tsize, dsize) instances of the space."""
        return self.space.instances()

    def configurations(self, instance: InputParams) -> list[TunableParams]:
        """Distinct tunable configurations explored for ``instance``."""
        seen: set[TunableParams] = set()
        out: list[TunableParams] = []
        for config in self.space.configurations(instance, max_gpus=self.max_gpus):
            if config not in seen:
                seen.add(config)
                out.append(config)
        return out

    def size_estimate(self) -> int:
        """Approximate number of (instance, configuration) points in the sweep."""
        total = 0
        for dim in self.space.dims:
            probe = InputParams(dim=dim, tsize=self.space.tsizes[0], dsize=self.space.dsizes[0])
            per_dim = len(self.configurations(probe))
            total += per_dim * len(self.space.tsizes) * len(self.space.dsizes)
        return total

    def describe(self) -> dict[str, object]:
        """Summary used by the Table 3 bench."""
        info = self.space.describe()
        info["system"] = self.system.name
        info["max_gpus"] = self.max_gpus
        info["engines"] = list(self.engines)
        info["cpu_backends"] = list(self.cpu_backends)
        info["worker_counts"] = list(self.worker_counts)
        info["size_estimate"] = self.size_estimate()
        return info
