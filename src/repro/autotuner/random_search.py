"""Random search baseline over the tuning space.

Section 4.1.4 of the paper asks whether "simple random methods might
suffice" given the sensitivity of the best points; this class makes that
comparison concrete: sample ``n`` random configurations of an instance and
keep the best.  The sensitivity-analysis bench compares its result against
the exhaustive optimum and the learned tuner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import SearchError
from repro.core.parameter_space import ParameterSpace
from repro.core.params import InputParams, TunableParams
from repro.hardware.costmodel import CostConstants, CostModel
from repro.hardware.system import SystemSpec
from repro.autotuner.search_space import SearchSpace
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class RandomSearchResult:
    """Best configuration found by one random-search run."""

    tunables: TunableParams
    rtime: float
    evaluations: int


class RandomSearch:
    """Uniform random sampling of the configuration space of one instance."""

    def __init__(
        self,
        system: SystemSpec,
        space: ParameterSpace | None = None,
        constants: CostConstants | None = None,
        seed: int | None = None,
    ) -> None:
        self.system = system
        self.space = space if space is not None else ParameterSpace.reduced()
        self.search_space = SearchSpace(self.space, system)
        self.cost_model = CostModel(system, constants)
        self.seed = seed

    def run(self, params: InputParams, budget: int = 20) -> RandomSearchResult:
        """Evaluate ``budget`` random configurations and return the best."""
        if budget < 1:
            raise SearchError(f"budget must be >= 1, got {budget}")
        configurations = self.search_space.configurations(params)
        if not configurations:
            raise SearchError(f"no configurations available for instance {params}")
        rng = make_rng(self.seed)
        picks = rng.choice(len(configurations), size=min(budget, len(configurations)), replace=False)
        best_tunables: TunableParams | None = None
        best_rtime = float("inf")
        for index in picks:
            tunables = configurations[int(index)]
            rtime = self.cost_model.predict(params, tunables)
            if rtime < best_rtime:
                best_rtime = rtime
                best_tunables = tunables
        assert best_tunables is not None
        return RandomSearchResult(
            tunables=best_tunables, rtime=best_rtime, evaluations=len(picks)
        )
