"""The autotuner facade: train once per system, deploy on unseen applications.

This module ties the whole Figure 4 workflow together:

* :meth:`AutoTuner.train` runs the exhaustive sweep of the synthetic
  application (simulate mode), builds the training set and fits the
  :class:`repro.autotuner.models.LearnedTuner`;
* :meth:`AutoTuner.tune` maps a previously unseen problem's (dim, tsize,
  dsize) features to tuned parameter settings;
* :meth:`AutoTuner.efficiency` measures the fraction of the exhaustive-search
  optimum the tuned configuration achieves (the paper reports 98% on
  average, Figure 10);
* :func:`autotune_and_run` is the one-call convenience used by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import ModelNotFittedError, SearchError
from repro.core.parameter_space import ParameterSpace
from repro.core.params import InputParams, TunableParams
from repro.core.pattern import WavefrontProblem
from repro.apps.base import WavefrontApplication
from repro.autotuner.exhaustive import ExhaustiveSearch, SearchResults
from repro.autotuner.models import LearnedTuner
from repro.autotuner.protocol import PlanDecision, Tuner
from repro.autotuner.training import TrainingSetBuilder, TrainingSet
from repro.hardware.costmodel import CostConstants, CostModel
from repro.hardware.system import SystemSpec
from repro.runtime.executor_base import ExecutionMode
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.result import ExecutionResult


@dataclass
class ValidationSummary:
    """Cross-validation of the tuner on held-out synthetic instances."""

    instances: int = 0
    mean_efficiency: float = 0.0
    min_efficiency: float = 0.0
    per_instance: dict[InputParams, float] = field(default_factory=dict)


class AutoTuner(Tuner):
    """Machine-learning autotuner for one target system."""

    kind = "learned"

    def __init__(
        self,
        system: SystemSpec,
        space: ParameterSpace | None = None,
        constants: CostConstants | None = None,
        builder: TrainingSetBuilder | None = None,
        seed: int | None = None,
    ) -> None:
        self.system = system
        self.space = space if space is not None else ParameterSpace.reduced()
        self.constants = constants
        self.builder = builder if builder is not None else TrainingSetBuilder()
        self.seed = seed
        self.cost_model = CostModel(system, constants)
        self.search = ExhaustiveSearch(system, self.space, constants)
        self.results: SearchResults | None = None
        self.training: TrainingSet | None = None
        self.model: LearnedTuner | None = None
        self.validation: ValidationSummary | None = None

    # ------------------------------------------------------------------
    # Training ("in the factory")
    # ------------------------------------------------------------------
    def train(self, instances=None) -> "AutoTuner":
        """Sweep the synthetic application, build the training set, fit models."""
        self.results = self.search.sweep(instances)
        self.training = self.builder.build(self.results)
        self.model = LearnedTuner(
            system_name=self.system.name,
            supports_gpu=self.system.has_gpu,
            supports_dual_gpu=self.system.max_usable_gpus >= 2,
        ).fit(self.training)
        self.validation = self._cross_validate()
        return self

    def _cross_validate(self) -> ValidationSummary:
        """Tuned-vs-optimal efficiency on the held-out synthetic instances."""
        assert self.results is not None and self.training is not None and self.model is not None
        holdout = self.training.holdout_instances or self.training.train_instances
        per_instance: dict[InputParams, float] = {}
        for params in holdout:
            per_instance[params] = self.efficiency(params)
        values = np.array(list(per_instance.values())) if per_instance else np.array([0.0])
        return ValidationSummary(
            instances=len(per_instance),
            mean_efficiency=float(values.mean()),
            min_efficiency=float(values.min()),
            per_instance=per_instance,
        )

    @property
    def trained(self) -> bool:
        """True once the learned models have been fitted."""
        return self.model is not None and self.model.fitted

    def _check_trained(self) -> None:
        if not self.trained:
            raise ModelNotFittedError("AutoTuner.tune() called before train()")

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def tune(self, target: WavefrontProblem | InputParams | WavefrontApplication) -> TunableParams:
        """Predict tuned parameter settings for an unseen problem."""
        self._check_trained()
        params = self._as_input_params(target)
        return self.model.predict(params.features())

    def select_engine(self, target) -> str:
        """Pick the CPU-phase backend (the search space's engine dimension).

        Unlike band / halo this is not learned: the scalar-vs-vectorized
        trade-off is a direct cost-model comparison per instance, so the
        tuner resolves it analytically (``vectorized`` wins whenever its
        per-diagonal batch overhead is amortised, i.e. on all but degenerate
        instances — and it is only offered when NumPy is available).
        """
        params = self._as_input_params(target)
        return self.search.search_space.best_engine(params, self.cost_model)

    def tune_with_engine(self, target) -> tuple[TunableParams, str]:
        """Tuned parameters plus the selected CPU-phase engine backend."""
        return self.tune(target), self.select_engine(target)

    def resolve(self, app: str, params: InputParams) -> PlanDecision:
        """The :class:`~repro.autotuner.protocol.Tuner` protocol entry point.

        Answers with the hybrid three-phase executor under the learned
        tunables and the cost-model-selected CPU engine — exactly the
        configuration the historical :func:`autotune_and_run` helper built
        by hand.  ``app`` is accepted for protocol compatibility; the
        cost-model tuner is application-blind by design (an instance *is*
        its (dim, tsize, dsize) signature).
        """
        tunables, engine = self.tune_with_engine(params)
        return PlanDecision(
            backend="hybrid",
            tunables=tunables.clipped(params.dim),
            workers=1,
            engine=engine,
            expected_s=self.predicted_rtime(params, tunables),
        )

    def describe(self) -> str:
        """One-line description including system and training state."""
        state = "trained" if self.trained else "untrained"
        return f"learned cost-model tuner for {self.system.name} ({state})"

    def select_cpu_backend(self, target) -> tuple[str, int]:
        """Pick the CPU backend and its worker count for an instance.

        Extends :meth:`select_engine` with the multicore dimension: the
        shared-memory ``mp-parallel`` backend competes with the single-core
        engines under the cost model's parallel-efficiency term, and its
        worker count is resolved per instance
        (:meth:`repro.autotuner.search_space.SearchSpace.best_cpu_backend`).
        Returns ``(backend_name, workers)`` — ``workers`` is 1 for the
        single-core engines.
        """
        params = self._as_input_params(target)
        return self.search.search_space.best_cpu_backend(params, cost_model=self.cost_model)

    def select_workers(self, target) -> int:
        """Worker count minimising the multicore backend's predicted runtime."""
        params = self._as_input_params(target)
        return self.search.search_space.best_workers(params, cost_model=self.cost_model)

    def predicted_rtime(self, target, tunables: TunableParams | None = None) -> float:
        """Cost-model runtime of the tuned (or given) configuration."""
        params = self._as_input_params(target)
        tunables = tunables if tunables is not None else self.tune(params)
        return self.cost_model.predict(params, tunables)

    def efficiency(self, target) -> float:
        """Fraction of the exhaustive-search optimum achieved by the tuner.

        Values slightly above 1.0 are possible (and observed in the paper for
        the i3-540): the regression models may pick parameter values between
        the grid points the finite search explored.
        """
        self._check_trained()
        params = self._as_input_params(target)
        tuned_rtime = self.predicted_rtime(params)
        if self.results is not None and params in set(self.results.instances()):
            best_rtime = self.results.best(params).rtime
        else:
            best_rtime = min(
                (r.rtime for r in self.search.sweep_instance(params) if not r.exceeded_threshold),
                default=tuned_rtime,
            )
        if tuned_rtime <= 0:
            raise SearchError("tuned configuration has non-positive runtime")
        return best_rtime / tuned_rtime

    def speedup_over_serial(self, target) -> float:
        """Speedup of the tuned configuration over the serial baseline."""
        params = self._as_input_params(target)
        return self.cost_model.baseline_serial(params) / self.predicted_rtime(params)

    # ------------------------------------------------------------------
    @staticmethod
    def _as_input_params(target) -> InputParams:
        if isinstance(target, InputParams):
            return target
        if isinstance(target, WavefrontProblem):
            return target.input_params()
        if isinstance(target, WavefrontApplication):
            return target.input_params()
        raise SearchError(
            f"cannot derive input parameters from object of type {type(target).__name__}"
        )

    # ------------------------------------------------------------------
    @classmethod
    def quick(cls, system: SystemSpec, seed: int | None = None) -> "AutoTuner":
        """A small, fast tuner (reduced space) — used by examples and tests."""
        return cls(system, space=ParameterSpace.reduced(), seed=seed).train()


# ----------------------------------------------------------------------
# Deprecated convenience entry point (kept as a Session shim)
# ----------------------------------------------------------------------
#: Sessions reused across calls, keyed by (system name, tuner identity).
_SESSION_CACHE: dict = {}


def autotune_and_run(
    app: WavefrontApplication | WavefrontProblem,
    system: SystemSpec,
    mode: ExecutionMode | str = ExecutionMode.SIMULATE,
    tuner: AutoTuner | None = None,
    use_cache: bool = True,
) -> ExecutionResult:
    """Deprecated: tune ``app`` for ``system`` and execute it in one call.

    Thin shim over :class:`repro.session.Session` — equivalent to
    ``Session(system=system, tuner=tuner or "learned").solve(app,
    mode=mode)`` — kept so pre-session code and the paper-era examples keep
    running.  New code should hold a session (plan reuse, persistent pools,
    bounded caches) instead of paying a fresh lookup per call.

    ``mode`` defaults to ``simulate`` because the functional mode really
    computes every cell and is only sensible for small grids; the quickstart
    example shows both.
    """
    import warnings

    warnings.warn(
        "autotune_and_run() is deprecated; use repro.Session "
        "(session.solve(app, dim)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.session import Session

    target = app.problem() if isinstance(app, WavefrontApplication) else app
    if not use_cache:
        # Ephemeral session: close it so worker pools and shared-memory
        # segments never outlive the call (the old helper's behaviour).
        with Session(
            system=system, tuner=tuner if tuner is not None else "learned"
        ) as session:
            return session.solve(target, mode=mode)
    key = (system.name, id(tuner) if tuner is not None else None)
    session = _SESSION_CACHE.get(key)
    if session is None:
        session = Session(system=system, tuner=tuner if tuner is not None else "learned")
        _SESSION_CACHE[key] = session
    return session.solve(target, mode=mode)
