"""Measured-profile autotuning of the live runtime backends.

The paper trains its tuner "in the factory" on *measured* runs and ships the
fitted models with the library.  The rest of this reproduction stands the
2014 testbed in with an analytic cost model; this module closes the loop for
the machine actually running the code:

1. **Profile** — :func:`profile_host` introspects the local host
   (:func:`repro.hardware.system.detect_local_system`), runs timed
   functional sweeps of the registered CPU backends (``serial``,
   ``vectorized``, ``cpu-parallel``, ``mp-parallel`` and the hybrid
   executor's CPU engines) over an instance grid, and collects the
   wall-clocks into a :class:`MeasuredProfile`.
2. **Train** — :meth:`MeasuredTuner.train` converts the profile into
   :class:`repro.autotuner.exhaustive.SearchResults`-compatible records and
   feeds them through the existing
   :class:`repro.autotuner.training.TrainingSetBuilder` →
   :class:`repro.autotuner.models.LearnedTuner` path, so the model trees are
   fitted on real wall-clock instead of cost-model synthetic data.  The
   fitted tuner persists via :func:`repro.autotuner.persistence.save_tuner`,
   the profile via :func:`save_profile` (both JSON, both format-versioned).
3. **Tune** — :meth:`MeasuredTuner.tune` answers deployment queries: the
   backend is resolved from the measured per-backend bests (the measured
   analogue of the cost-model engine dimension), the tile from the learned
   model snapped onto the measured tile grid, and the expected runtime is
   the measured wall of the nearest profiled record.  Tuned plans are
   cached by ``(app, dim, system, backend)`` so repeated calls are O(1).

The CLI exposes the pipeline as ``repro profile`` (steps 1+2, plus the
predicted-vs-measured report of :mod:`repro.analysis.measured`) and
``repro tune --system local`` (step 3).
"""

from __future__ import annotations

import math
import platform as _platform
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

from repro.core.exceptions import SearchError
from repro.core.params import InputParams, TunableParams
from repro.apps.registry import available_applications, get_application
from repro.autotuner.exhaustive import SearchRecord, SearchResults
from repro.autotuner.models import LearnedTuner
from repro.autotuner.protocol import PlanDecision, Tuner
from repro.autotuner.training import TrainingSetBuilder
from repro.hardware.calibration import constants_from_measurements
from repro.hardware.costmodel import CostConstants
from repro.hardware.system import SystemSpec, detect_local_system
from repro.utils.lru import LRUCache
from repro.utils.serialization import load_json, save_json

#: Format marker written into every profile file (bumped on layout changes).
PROFILE_FORMAT_VERSION = 1

#: Default artifact locations, relative to the working directory
#: (see ``docs/artifacts.md`` for the naming scheme).
DEFAULT_PROFILE_PATH = Path("benchmarks") / "results" / "local_profile.json"
DEFAULT_MODEL_PATH = Path("benchmarks") / "results" / "local_tuner.json"
DEFAULT_REPORT_PATH = Path("benchmarks") / "results" / "local_profile_report.txt"

#: CPU backends the profiler can time.  ``hybrid-vectorized`` / ``hybrid-mp``
#: are the hybrid executor with the corresponding ``cpu_engine`` — on the
#: GPU-less local system they exercise exactly the dispatch overhead the
#: hybrid path adds around the CPU engines.
PROFILED_BACKENDS = (
    "serial",
    "vectorized",
    "cpu-parallel",
    "mp-parallel",
    "pipelined",
    "compiled",
    "hybrid-vectorized",
    "hybrid-mp",
)

#: The backend every profile must contain: it is the speedup reference and
#: the source of the training set's serial baselines.
REFERENCE_BACKEND = "serial"


# ----------------------------------------------------------------------
# Profile data model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MeasuredRecord:
    """One timed (application, backend, configuration) point."""

    app: str
    backend: str
    workers: int
    params: InputParams
    tunables: TunableParams
    wall_s: float
    repeats: int = 1

    def to_search_record(self) -> SearchRecord:
        """The :class:`SearchRecord` view used by the training pipeline."""
        return SearchRecord(
            params=self.params,
            tunables=self.tunables,
            rtime=self.wall_s,
            exceeded_threshold=False,
        )

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "app": self.app,
            "backend": self.backend,
            "workers": self.workers,
            "dim": self.params.dim,
            "tsize": self.params.tsize,
            "dsize": self.params.dsize,
            "cpu_tile": self.tunables.cpu_tile,
            "wall_s": self.wall_s,
            "repeats": self.repeats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MeasuredRecord":
        """Rebuild a record serialised by :meth:`to_dict`."""
        return cls(
            app=str(data["app"]),
            backend=str(data["backend"]),
            workers=int(data["workers"]),
            params=InputParams(
                dim=int(data["dim"]), tsize=float(data["tsize"]), dsize=int(data["dsize"])
            ),
            tunables=TunableParams(cpu_tile=int(data["cpu_tile"])),
            wall_s=float(data["wall_s"]),
            repeats=int(data.get("repeats", 1)),
        )


@dataclass
class MeasuredProfile:
    """All measured records of one profiling run on one host."""

    system: str
    host: dict = field(default_factory=dict)
    records: list[MeasuredRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def add(self, record: MeasuredRecord) -> None:
        """Append one measured record."""
        self.records.append(record)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def instances(self) -> list[InputParams]:
        """Distinct profiled instances, in measurement order."""
        seen: dict[InputParams, None] = {}
        for record in self.records:
            seen.setdefault(record.params, None)
        return list(seen)

    def apps(self) -> list[str]:
        """Distinct application names, in measurement order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.app, None)
        return list(seen)

    def backends(self) -> list[str]:
        """Distinct backend names, in measurement order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.backend, None)
        return list(seen)

    def records_for(
        self,
        params: InputParams | None = None,
        backend: str | None = None,
        app: str | None = None,
    ) -> list[MeasuredRecord]:
        """Records filtered by instance, backend and/or application."""
        return [
            r
            for r in self.records
            if (params is None or r.params == params)
            and (backend is None or r.backend == backend)
            and (app is None or r.app == app)
        ]

    def _app_filter(self, params: InputParams, app: str | None) -> str | None:
        """``app`` when that application was measured at ``params``, else None.

        Two applications can share an input signature — lcs and
        edit-distance are both (tsize=0.5, dsize=0) — so queries prefer the
        asking app's own measurements and only fall back to same-signature
        records of other apps (the paper's premise: instances with the same
        (dim, tsize, dsize) behave the same).
        """
        if app is not None and any(
            r.app == app for r in self.records if r.params == params
        ):
            return app
        return None

    def best(self, params: InputParams, app: str | None = None) -> MeasuredRecord:
        """The fastest measured record of one instance, across all backends."""
        candidates = self.records_for(params, app=self._app_filter(params, app))
        if not candidates:
            raise SearchError(f"no measured records for instance {params}")
        return min(candidates, key=lambda r: r.wall_s)

    def best_for_backend(
        self, params: InputParams, backend: str, app: str | None = None
    ) -> MeasuredRecord:
        """The fastest measured record of one instance on one backend."""
        candidates = self.records_for(
            params, backend=backend, app=self._app_filter(params, app)
        )
        if not candidates:
            raise SearchError(
                f"no measured records for instance {params} on backend {backend!r}"
            )
        return min(candidates, key=lambda r: r.wall_s)

    def serial_time(self, params: InputParams, app: str | None = None) -> float:
        """The measured serial-reference wall of one instance."""
        return self.best_for_backend(params, REFERENCE_BACKEND, app=app).wall_s

    # ------------------------------------------------------------------
    # Bridges into the existing training pipeline
    # ------------------------------------------------------------------
    def to_search_results(self) -> SearchResults:
        """:class:`SearchResults`-compatible view of the measured records.

        For every (instance, tunables) point the *fastest backend's* wall is
        kept — the backend is a separately-resolved dimension, exactly like
        the cost-model tuner's engine dimension, so the learned models see
        one runtime per configuration.  Serial baselines come from the
        measured :data:`REFERENCE_BACKEND` walls.  Applications sharing an
        input signature (same dim/tsize/dsize) pool their measurements —
        for the learned models an instance *is* its signature.  No
        90-second threshold applies: every measured point really ran.
        """
        results = SearchResults(system=self.system, threshold_s=math.inf)
        for params in self.instances():
            results.serial_times[params] = self.serial_time(params)
            best_by_config: dict[TunableParams, MeasuredRecord] = {}
            for record in self.records_for(params):
                current = best_by_config.get(record.tunables)
                if current is None or record.wall_s < current.wall_s:
                    best_by_config[record.tunables] = record
            for record in best_by_config.values():
                results.add(record.to_search_record())
        return results

    def calibrated_constants(self, system: SystemSpec) -> CostConstants:
        """Cost constants fitted to this profile's serial/vectorized walls."""
        serial_walls = {
            p: self.best_for_backend(p, REFERENCE_BACKEND).wall_s
            for p in self.instances()
            if self.records_for(p, backend=REFERENCE_BACKEND)
        }
        vectorized_walls = {
            p: self.best_for_backend(p, "vectorized").wall_s
            for p in self.instances()
            if self.records_for(p, backend="vectorized")
        }
        return constants_from_measurements(system, serial_walls, vectorized_walls or None)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation of the whole profile."""
        return {
            "format_version": PROFILE_FORMAT_VERSION,
            "system": self.system,
            "host": dict(self.host),
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MeasuredProfile":
        """Rebuild a profile serialised by :meth:`to_dict`."""
        version = data.get("format_version")
        if version != PROFILE_FORMAT_VERSION:
            raise SearchError(
                f"unsupported profile format version {version!r} "
                f"(expected {PROFILE_FORMAT_VERSION})"
            )
        return cls(
            system=str(data["system"]),
            host=dict(data.get("host", {})),
            records=[MeasuredRecord.from_dict(r) for r in data["records"]],
        )


def save_profile(profile: MeasuredProfile, path: str | Path) -> Path:
    """Serialise a measured profile to ``path`` (JSON)."""
    return save_json(profile.to_dict(), path)


def load_profile(path: str | Path) -> MeasuredProfile:
    """Restore a profile saved by :func:`save_profile`.

    Raises :class:`repro.core.exceptions.SearchError` when the file is not a
    profile or carries a stale ``format_version``.
    """
    payload = load_json(path)
    if not isinstance(payload, dict) or "records" not in payload:
        raise SearchError(f"{path} does not contain a measured profile")
    return MeasuredProfile.from_dict(payload)


# ----------------------------------------------------------------------
# The profiler
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProfileConfig:
    """What :func:`profile_host` measures: the instance/configuration grid.

    ``tiles`` are the candidate ``cpu_tile`` sides for the tiled backends
    (the whole-grid engines ignore the tile and are measured once at
    ``cpu_tile=1``); ``budget_s`` truncates the sweep when the wall-clock
    budget is exhausted, so quick runs stay quick even on slow hosts.

    The default app grid spans the arithmetic-intensity classes the
    registry offers: the fine-grained comparison kernels, the probabilistic
    max-product recurrence (``viterbi``, ``tsize`` 0.75) and the
    transcendental-heavy log-space sum (``stochastic-path``, ``tsize`` 2.0)
    — so learned records cover the new probabilistic workload class too.
    """

    apps: tuple[str, ...] = (
        "lcs",
        "synthetic",
        "edit-distance",
        "viterbi",
        "stochastic-path",
    )
    dims: tuple[int, ...] = (128, 256, 512, 768)
    backends: tuple[str, ...] = PROFILED_BACKENDS
    tiles: tuple[int, ...] = (8, 16, 32, 64, 128)
    workers: tuple[int, ...] | None = None
    repeats: int = 3
    budget_s: float = 300.0

    @classmethod
    def quick(cls) -> "ProfileConfig":
        """The CI / 1-core budget: a grid that finishes well inside 60 s."""
        return cls(
            apps=("lcs", "synthetic", "viterbi"),
            dims=(128, 256, 512),
            backends=("serial", "vectorized", "mp-parallel", "hybrid-vectorized", "hybrid-mp"),
            tiles=(32, 128),
            repeats=2,
            budget_s=50.0,
        )

    def validate(self) -> None:
        """Raise :class:`SearchError` on an unusable grid."""
        if not self.apps or not self.dims or not self.backends:
            raise SearchError("profile grid needs at least one app, dim and backend")
        if REFERENCE_BACKEND not in self.backends:
            raise SearchError(
                f"profile grid must include the {REFERENCE_BACKEND!r} reference backend"
            )
        unknown = set(self.apps) - set(available_applications())
        if unknown:
            raise SearchError(f"unknown applications in profile grid: {sorted(unknown)}")
        unknown = set(self.backends) - set(PROFILED_BACKENDS)
        if unknown:
            raise SearchError(f"unknown backends in profile grid: {sorted(unknown)}")
        if self.repeats < 1:
            raise SearchError(f"repeats must be >= 1, got {self.repeats}")
        if self.budget_s <= 0:
            raise SearchError(f"budget_s must be positive, got {self.budget_s}")


def _worker_candidates(system: SystemSpec) -> tuple[int, ...]:
    """Powers of two up to the host's core count, always including the count."""
    budget = max(1, system.cpu.cores)
    counts: list[int] = []
    w = 1
    while w < budget:
        counts.append(w)
        w *= 2
    counts.append(budget)
    return tuple(dict.fromkeys(counts))


def _backend_available(name: str) -> bool:
    """Whether one profiled backend can run in this environment.

    Consults the registry's availability probes (the compiled tier without
    :mod:`numba`, the vectorized engine without NumPy); the hybrid aliases
    are always constructible.
    """
    from repro.runtime.registry import ENGINE_SPECS

    spec = ENGINE_SPECS.get(name)
    return True if spec is None else spec.is_available()


def _backend_executor(name: str, system: SystemSpec, workers: int):
    """Construct the functional executor behind one profiled backend name."""
    from repro.runtime.registry import get_executor

    if name == "hybrid-vectorized":
        return get_executor("hybrid", system, cpu_engine="vectorized")
    if name == "hybrid-mp":
        return get_executor("hybrid", system, cpu_engine="mp", workers=workers)
    if name in ("mp-parallel", "pipelined"):
        return get_executor(name, system, workers=workers)
    return get_executor(name, system)


def _backend_configs(
    name: str, dim: int, config: ProfileConfig, worker_candidates: tuple[int, ...]
) -> list[tuple[TunableParams, int]]:
    """(tunables, workers) points measured for one backend at one ``dim``.

    The single-core whole-grid engines ignore the tile, so they contribute
    exactly one point; the tiled backends sweep the tile grid (clipped to
    the instance), and the multicore ones additionally sweep worker counts.
    """
    tiles = tuple(dict.fromkeys(min(t, dim) for t in config.tiles))
    if name in ("serial", "vectorized", "compiled"):
        return [(TunableParams(cpu_tile=1), 1)]
    if name == "hybrid-vectorized":
        return [(TunableParams(cpu_tile=tiles[0]), 1)]
    if name in ("mp-parallel", "pipelined", "hybrid-mp"):
        return [
            (TunableParams(cpu_tile=t), w)
            for t in tiles
            for w in worker_candidates
        ]
    # cpu-parallel: tiled, in-process (worker threads are GIL-bound).
    return [(TunableParams(cpu_tile=t), 1) for t in tiles]


def profile_host(
    system: SystemSpec | None = None,
    config: ProfileConfig | None = None,
    progress: Callable[[str], None] | None = None,
) -> MeasuredProfile:
    """Run the timed sweep and return the :class:`MeasuredProfile`.

    Every (app, dim, backend, configuration) point is executed functionally
    ``config.repeats`` times and the best wall is recorded, mirroring the
    ``bench`` CLI.  The sweep visits instances in order and stops early when
    ``config.budget_s`` is exhausted (recorded as ``host["truncated"]``), so
    the reference backend of each visited instance is always measured first
    and partially-profiled instances never lack their serial baseline.
    """
    system = system if system is not None else detect_local_system()
    config = config if config is not None else ProfileConfig()
    config.validate()
    worker_candidates = (
        tuple(config.workers) if config.workers else _worker_candidates(system)
    )
    say = progress if progress is not None else (lambda _msg: None)

    profile = MeasuredProfile(
        system=system.name,
        host={
            "cpu": system.cpu.name,
            "cores": system.cpu.cores,
            "freq_mhz": system.cpu.freq_mhz,
            "mem_gb": round(system.cpu.mem_gb, 2),
            "python": sys.version.split()[0],
            "platform": _platform.platform(),
            "repeats": config.repeats,
            "budget_s": config.budget_s,
            "truncated": False,
        },
    )
    # Reference backend first within every instance (serial baselines), then
    # the cheap whole-grid engines, then the tiled/multicore sweeps.  Backends
    # whose availability probe fails here (e.g. the compiled tier without
    # numba) are skipped, so one profile grid works across environments.
    ordered_backends = [REFERENCE_BACKEND] + [
        b
        for b in config.backends
        if b != REFERENCE_BACKEND and _backend_available(b)
    ]
    t_start = time.perf_counter()
    truncated = False
    for app_name in config.apps:
        for dim in config.dims:
            app = get_application(app_name, dim=dim)
            problem = app.problem(dim)
            params = problem.input_params()
            for backend in ordered_backends:
                for tunables, workers in _backend_configs(
                    backend, dim, config, worker_candidates
                ):
                    if (
                        backend != REFERENCE_BACKEND
                        and time.perf_counter() - t_start > config.budget_s
                    ):
                        truncated = True
                        break
                    executor = _backend_executor(backend, system, workers)
                    best = math.inf
                    for _ in range(config.repeats):
                        t0 = time.perf_counter()
                        executor.execute(problem, tunables, mode="functional")
                        best = min(best, time.perf_counter() - t0)
                    profile.add(
                        MeasuredRecord(
                            app=app_name,
                            backend=backend,
                            workers=workers,
                            params=params,
                            tunables=tunables.clipped(dim),
                            wall_s=best,
                            repeats=config.repeats,
                        )
                    )
                if truncated:
                    break
            say(
                f"profiled {app_name} dim={dim}: "
                f"{len(profile.records_for(params, app=app_name))} points"
            )
            if truncated:
                break
        if truncated:
            break
    profile.host["truncated"] = truncated
    profile.host["elapsed_s"] = round(time.perf_counter() - t_start, 3)
    if truncated:
        say(f"budget of {config.budget_s:g}s exhausted — profile truncated")
    return profile


# ----------------------------------------------------------------------
# The measured tuner
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TunedPlan:
    """A deployment answer of the measured tuner for one (app, dim) query."""

    app: str
    dim: int
    system: str
    backend: str
    workers: int
    tunables: TunableParams
    expected_s: float
    best_measured_s: float

    @property
    def efficiency(self) -> float:
        """Best-measured over expected runtime (1.0 = measured optimum)."""
        if self.expected_s <= 0:
            return 0.0
        return self.best_measured_s / self.expected_s

    def describe(self) -> str:
        """Human-readable one-line description."""
        return (
            f"{self.backend}(cpu_tile={self.tunables.cpu_tile}, workers={self.workers}) "
            f"expected {self.expected_s * 1e3:.2f} ms "
            f"({self.efficiency:.0%} of measured best)"
        )


#: Default bound of the measured tuner's per-query plan cache.  Plans are a
#: few hundred bytes each, so the default is generous; serving sessions pass
#: their own bound through ``plan_cache_size``.
DEFAULT_PLAN_CACHE_SIZE = 256


class MeasuredTuner(Tuner):
    """A tuner trained on measured wall-clocks of the local host.

    Wraps the measured profile (ground truth for profiled instances) and the
    :class:`LearnedTuner` fitted on it (generalisation to unseen instances).
    Construct via :meth:`train` or, when model and profile were persisted,
    via :meth:`from_files`.
    """

    kind = "measured"

    def __init__(
        self,
        profile: MeasuredProfile,
        model: LearnedTuner,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
    ) -> None:
        self.profile = profile
        self.model = model
        #: Tuned plans by (app, dim, tsize, dsize, system) query; the
        #: resolved backend — the remaining component of a plan's identity —
        #: is carried inside the cached :class:`TunedPlan`, so a repeated
        #: :meth:`tune` call is one cache hit.  LRU-bounded so a long-lived
        #: serving session querying many distinct instances cannot grow the
        #: tuner without limit.
        self._plan_cache: LRUCache = LRUCache(plan_cache_size)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls, profile: MeasuredProfile, builder: TrainingSetBuilder | None = None
    ) -> "MeasuredTuner":
        """Fit the learned models on the measured records.

        The profile's instance grid is small compared to the synthetic Table 3
        sweep, so the default builder keeps every instance in the training
        split (``instance_stride=1``) instead of holding half out.
        """
        if not profile.records:
            raise SearchError("cannot train a measured tuner on an empty profile")
        builder = builder if builder is not None else TrainingSetBuilder(instance_stride=1)
        results = profile.to_search_results()
        training = builder.build(results)
        tile_grid = tuple(sorted({r.tunables.cpu_tile for r in profile.records}))
        model = LearnedTuner(
            system_name=profile.system,
            supports_gpu=False,
            supports_dual_gpu=False,
            cpu_tile_choices=tile_grid,
        ).fit(training)
        return cls(profile, model)

    @classmethod
    def from_files(
        cls,
        profile_path: str | Path = DEFAULT_PROFILE_PATH,
        model_path: str | Path = DEFAULT_MODEL_PATH,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
    ) -> "MeasuredTuner":
        """Load a persisted profile + trained model pair."""
        from repro.autotuner.persistence import load_tuner

        return cls(
            load_profile(profile_path),
            load_tuner(model_path),
            plan_cache_size=plan_cache_size,
        )

    # ------------------------------------------------------------------
    # Deployment queries
    # ------------------------------------------------------------------
    def nearest_instance(self, params: InputParams, app: str | None = None) -> InputParams:
        """The profiled instance closest to ``params`` in feature space.

        Distance is Euclidean in (log dim, log tsize, dsize) — the scales
        the learned models split on.  With ``app`` given and present in the
        profile, only that application's instances are candidates, so two
        apps sharing an input signature anchor to their own measurements.
        """
        if app is not None and app in self.profile.apps():
            instances = list(
                dict.fromkeys(r.params for r in self.profile.records if r.app == app)
            )
        else:
            instances = self.profile.instances()
        if not instances:
            raise SearchError("measured profile contains no instances")

        def distance(candidate: InputParams) -> float:
            return (
                (math.log(candidate.dim) - math.log(params.dim)) ** 2
                + (math.log(candidate.tsize) - math.log(params.tsize)) ** 2
                + float(candidate.dsize != params.dsize)
            )

        return min(instances, key=distance)

    def select_backend(self, params: InputParams, app: str | None = None) -> tuple[str, int]:
        """Measured-best backend (and worker count) for an instance.

        The measured analogue of the cost-model tuner's engine dimension:
        the best backend at the nearest profiled instance, by measured wall.
        """
        anchor = self.nearest_instance(params, app)
        best = self.profile.best(anchor, app=app)
        return best.backend, best.workers

    def _snap_tile(
        self, backend: str, anchor: InputParams, tile: int, app: str | None = None
    ) -> tuple[TunableParams, int, float]:
        """Snap a learned tile onto the measured grid of one backend.

        Returns ``(tunables, workers, wall)`` of the measured record whose
        tile is closest to the prediction (best workers for that tile).
        """
        candidates = self.profile.records_for(
            anchor, backend=backend, app=self.profile._app_filter(anchor, app)
        )
        if not candidates:
            raise SearchError(
                f"no measured records for backend {backend!r} at instance {anchor}"
            )
        nearest = min(candidates, key=lambda r: (abs(r.tunables.cpu_tile - tile), r.wall_s))
        best_at_tile = min(
            (r for r in candidates if r.tunables.cpu_tile == nearest.tunables.cpu_tile),
            key=lambda r: r.wall_s,
        )
        return best_at_tile.tunables, best_at_tile.workers, best_at_tile.wall_s

    def tune(
        self,
        app: str,
        dim: int,
        tsize: float | None = None,
        dsize: int | None = None,
    ) -> TunedPlan:
        """Tuned (backend, workers, tile) plan for one application instance.

        ``tsize``/``dsize`` override the application's own granularity
        (meaningful for ``synthetic``, whose constructor accepts them).
        Plans are cached per (app, dim, tsize, dsize, system) query — the
        resolved backend completes the plan's identity and is carried in
        the cached :class:`TunedPlan` — so repeated queries, e.g. a driver
        tuning the same kernel in a loop, are O(1) dictionary hits after
        the first call.
        """
        query = (app, int(dim), tsize, dsize, self.profile.system)
        cached = self._plan_cache.get(query)
        if cached is not None:
            return cached

        app_kwargs: dict[str, object] = {"dim": dim}
        if tsize is not None:
            app_kwargs["tsize"] = tsize
        if dsize is not None:
            app_kwargs["dsize"] = dsize
        params = get_application(app, **app_kwargs).input_params(dim)
        plan = self._plan_from_params(app, params)
        self._plan_cache.put(query, plan)
        return plan

    def _plan_from_params(self, app: str, params: InputParams) -> TunedPlan:
        """Resolve a :class:`TunedPlan` for explicit instance parameters."""
        anchor = self.nearest_instance(params, app)
        best = self.profile.best(anchor, app=app)
        predicted = self.model.predict(params.features())
        tunables, workers, expected = self._snap_tile(
            best.backend, anchor, predicted.cpu_tile, app
        )
        return TunedPlan(
            app=app,
            dim=params.dim,
            system=self.profile.system,
            backend=best.backend,
            workers=workers,
            tunables=replace(tunables, cpu_tile=min(tunables.cpu_tile, params.dim)),
            expected_s=expected,
            best_measured_s=best.wall_s,
        )

    def resolve(self, app: str, params: InputParams) -> PlanDecision:
        """The :class:`~repro.autotuner.protocol.Tuner` protocol entry point.

        Same resolution as :meth:`tune` — measured-best backend at the
        nearest profiled instance, learned tile snapped onto the measured
        grid — but keyed directly on the caller's
        :class:`~repro.core.params.InputParams`, so the session can resolve
        app instances it built itself without another registry round-trip.
        """
        query = (app, params, self.profile.system)
        plan = self._plan_cache.get(query)
        if plan is None:
            plan = self._plan_from_params(app, params)
            self._plan_cache.put(query, plan)
        return PlanDecision(
            backend=plan.backend,
            tunables=plan.tunables,
            workers=plan.workers,
            expected_s=plan.expected_s,
        )

    def describe(self) -> str:
        """One-line description including profile provenance."""
        return (
            f"measured tuner for {self.profile.system} "
            f"({len(self.profile)} profiled records)"
        )

    def cache_info(self) -> dict[str, int]:
        """Size and hit statistics of the tuned-plan cache."""
        return {"plans": len(self._plan_cache), **self._plan_cache.info()}


def train_measured_tuner(
    profile: MeasuredProfile, builder: TrainingSetBuilder | None = None
) -> MeasuredTuner:
    """Convenience wrapper around :meth:`MeasuredTuner.train`."""
    return MeasuredTuner.train(profile, builder)
