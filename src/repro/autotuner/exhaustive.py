"""Exhaustive exploration of the tuning space (Section 3.1.1 / 4.1).

Every (instance, configuration) point is evaluated with the analytic cost
model (the reproduction's stand-in for running on the testbed); runs whose
predicted runtime exceeds the 90-second threshold are recorded as such and
excluded from averages and training, exactly as in the paper.  The serial
baseline is collected separately without the threshold so speedups are
computed correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.exceptions import SearchError
from repro.core.parameter_space import ParameterSpace
from repro.core.params import InputParams, TunableParams
from repro.hardware.costmodel import CostConstants, CostModel
from repro.hardware.system import SystemSpec
from repro.autotuner.search_space import SearchSpace

#: The paper's runtime threshold for exhaustive-search points (seconds).
RUNTIME_THRESHOLD_S = 90.0


@dataclass(frozen=True)
class SearchRecord:
    """One evaluated (instance, configuration) point."""

    params: InputParams
    tunables: TunableParams
    rtime: float
    exceeded_threshold: bool = False

    def summary(self) -> dict[str, float]:
        """Flat record used to build ML datasets and CSV reports."""
        return {
            "dim": float(self.params.dim),
            "tsize": float(self.params.tsize),
            "dsize": float(self.params.dsize),
            "cpu_tile": float(self.tunables.cpu_tile),
            "band": float(self.tunables.band),
            "gpu_count": float(self.tunables.gpu_count),
            "gpu_tile": float(self.tunables.gpu_tile),
            "halo": float(self.tunables.halo),
            "rtime": float(self.rtime),
            "exceeded_threshold": float(self.exceeded_threshold),
        }


@dataclass
class SearchResults:
    """All records of one exhaustive sweep on one system."""

    system: str
    records: list[SearchRecord] = field(default_factory=list)
    serial_times: dict[InputParams, float] = field(default_factory=dict)
    threshold_s: float = RUNTIME_THRESHOLD_S

    # ------------------------------------------------------------------
    def add(self, record: SearchRecord) -> None:
        """Append one evaluated configuration point."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def instances(self) -> list[InputParams]:
        """Distinct instances present in the results, in sweep order."""
        seen: dict[InputParams, None] = {}
        for record in self.records:
            seen.setdefault(record.params, None)
        return list(seen)

    def records_for(self, params: InputParams, include_threshold: bool = False) -> list[SearchRecord]:
        """Records of one instance (excluding over-threshold points by default)."""
        return [
            r
            for r in self.records
            if r.params == params and (include_threshold or not r.exceeded_threshold)
        ]

    # ------------------------------------------------------------------
    # Aggregations used by the figures
    # ------------------------------------------------------------------
    def best(self, params: InputParams) -> SearchRecord:
        """The best exhaustive point ("ber" in the paper) for one instance."""
        candidates = self.records_for(params) or self.records_for(params, include_threshold=True)
        if not candidates:
            raise SearchError(f"no records for instance {params}")
        return min(candidates, key=lambda r: r.rtime)

    def best_n(self, params: InputParams, n: int) -> list[SearchRecord]:
        """The ``n`` best configurations of one instance (training-set source)."""
        candidates = sorted(self.records_for(params), key=lambda r: r.rtime)
        return candidates[: max(0, n)]

    def average_rtime(self, params: InputParams) -> float:
        """Average runtime across all below-threshold configurations."""
        rtimes = [r.rtime for r in self.records_for(params)]
        if not rtimes:
            raise SearchError(f"no below-threshold records for instance {params}")
        return float(np.mean(rtimes))

    def std_rtime(self, params: InputParams) -> float:
        """Standard deviation of runtime across below-threshold configurations."""
        rtimes = [r.rtime for r in self.records_for(params)]
        if not rtimes:
            raise SearchError(f"no below-threshold records for instance {params}")
        return float(np.std(rtimes))

    def serial_time(self, params: InputParams) -> float:
        """The serial baseline of one instance (collected without threshold)."""
        try:
            return self.serial_times[params]
        except KeyError:
            raise SearchError(f"no serial baseline recorded for instance {params}") from None

    def best_speedup(self, params: InputParams) -> float:
        """Speedup of the best exhaustive point over the serial baseline."""
        return self.serial_time(params) / self.best(params).rtime

    # ------------------------------------------------------------------
    def to_records(self, include_threshold: bool = False) -> list[dict[str, float]]:
        """Flat dictionaries of every point (for datasets / CSV output)."""
        return [
            r.summary()
            for r in self.records
            if include_threshold or not r.exceeded_threshold
        ]


class ExhaustiveSearch:
    """Sweep the synthetic application's tuning space on one system."""

    def __init__(
        self,
        system: SystemSpec,
        space: ParameterSpace | None = None,
        constants: CostConstants | None = None,
        threshold_s: float = RUNTIME_THRESHOLD_S,
    ) -> None:
        if threshold_s <= 0:
            raise SearchError(f"threshold must be positive, got {threshold_s}")
        self.system = system
        self.space = space if space is not None else ParameterSpace.paper()
        self.search_space = SearchSpace(self.space, system)
        self.cost_model = CostModel(system, constants)
        self.threshold_s = threshold_s

    # ------------------------------------------------------------------
    def evaluate(self, params: InputParams, tunables: TunableParams) -> SearchRecord:
        """Evaluate a single configuration point."""
        rtime = self.cost_model.predict(params, tunables)
        return SearchRecord(
            params=params,
            tunables=tunables.clipped(params.dim),
            rtime=rtime,
            exceeded_threshold=rtime > self.threshold_s,
        )

    def sweep_instance(self, params: InputParams) -> list[SearchRecord]:
        """Evaluate every configuration of one instance."""
        return [
            self.evaluate(params, tunables)
            for tunables in self.search_space.configurations(params)
        ]

    def sweep(
        self, instances: Iterable[InputParams] | None = None
    ) -> SearchResults:
        """Run the full sweep; also collects the serial baselines."""
        results = SearchResults(system=self.system.name, threshold_s=self.threshold_s)
        instance_list: Sequence[InputParams] = (
            list(instances) if instances is not None else list(self.search_space.instances())
        )
        if not instance_list:
            raise SearchError("no instances to sweep")
        for params in instance_list:
            results.serial_times[params] = self.cost_model.baseline_serial(params)
            for record in self.sweep_instance(params):
                results.add(record)
        return results
