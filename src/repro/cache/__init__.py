"""``repro.cache`` — the content-addressed persistent result cache.

Every answer the framework serves is a pure function of its request —
``(app, dim, instance params, plan-relevant overrides)`` — so identical
requests across time, threads and (future) shards should cost one solve,
not N.  This package delivers that as three composable layers:

* :mod:`repro.cache.keys` — the canonical request-key codec:
  :func:`request_key` reduces a request to a stable JSON payload (dict
  ordering, tuple/list flavour and NumPy scalar types all normalise away)
  and hashes it to a SHA-256 :class:`CacheKey`;
* :mod:`repro.cache.store` — :class:`DiskCacheStore`, the bounded on-disk
  tier: one atomic ``.npz`` per entry (JSON header + raw grid arrays,
  bit-exact), LRU eviction under entry/byte caps, corruption treated as a
  counted, self-repairing miss;
* :mod:`repro.cache.tier` — :class:`ResultCache`, the lookup path the
  session actually calls: memory LRU → disk → solve, with per-key
  stampede protection (concurrent misses elect one leader) and per-tier
  hit counters.

Wired in behind ``Session(cache_dir=...)`` / the ``--cache-dir`` CLI knob;
see ``docs/caching.md`` for the key scheme, on-disk layout, eviction
policy, metrics schema and knobs.
"""

from repro.cache.keys import KEY_CODEC_VERSION, CacheKey, canonicalize, request_key
from repro.cache.store import (
    CACHE_FORMAT_VERSION,
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    DiskCacheStore,
    decode_result,
    encode_result,
)
from repro.cache.tier import DEFAULT_MEMORY_ENTRIES, ResultCache

__all__ = [
    "CacheKey",
    "request_key",
    "canonicalize",
    "KEY_CODEC_VERSION",
    "DiskCacheStore",
    "encode_result",
    "decode_result",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MEMORY_ENTRIES",
    "ResultCache",
]
