"""The tiered result cache: memory LRU → disk store → solve.

:class:`ResultCache` is what the session consults on every cacheable
:meth:`repro.session.Session.solve`:

1. **memory** — a bounded :class:`repro.utils.lru.LRUCache` of live
   :class:`~repro.runtime.result.ExecutionResult` objects (shared,
   read-only — the same contract the serving layer's coalesced batches
   already impose);
2. **disk** — the persistent :class:`~repro.cache.store.DiskCacheStore`,
   surviving restarts and shared across processes pointing at one
   ``cache_dir``; disk hits are promoted into the memory tier;
3. **solve** — the caller's closure, executed exactly once per in-flight
   digest (*stampede protection*): concurrent misses on one key elect a
   leader, every follower blocks on the leader's outcome instead of
   re-solving, and a failing solve propagates its error to the whole group.

Counters distinguish the tiers (``memory_hits`` / ``disk_hits`` /
``coalesced`` / ``misses``) so the ``/metrics`` page can show *where*
answers come from, and ``hit_rate`` condenses them into the number the CI
cache gate replays a committed trace against.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable

from repro.cache.keys import CacheKey
from repro.cache.store import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    DiskCacheStore,
)
from repro.runtime.result import ExecutionResult
from repro.utils.lru import LRUCache

#: Default bound of the in-memory result tier (entries, not bytes).
DEFAULT_MEMORY_ENTRIES = 64

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISS = object()


class _InFlight:
    """The rendezvous of one in-progress solve (leader + followers)."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: ExecutionResult | None = None
        self.error: BaseException | None = None


class ResultCache:
    """Content-addressed result cache layered memory → disk → solve.

    ``directory`` roots the persistent tier (created when missing);
    ``max_entries`` / ``max_bytes`` bound it, ``memory_entries`` bounds the
    in-process tier.  All methods are thread-safe; opening a directory with
    an incompatible format version raises
    :class:`repro.core.exceptions.CacheError` at construction.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        self.store = DiskCacheStore(directory, max_entries, max_bytes)
        self._memory: LRUCache = LRUCache(memory_entries)
        self._lock = threading.Lock()
        self._inflight: dict[str, _InFlight] = {}
        self.lookups = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.coalesced = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get_or_solve(
        self, key: CacheKey, solve: Callable[[], ExecutionResult]
    ) -> ExecutionResult:
        """Answer one request from the nearest tier, solving at most once.

        Memory hits return immediately; disk hits are decoded and promoted;
        a miss runs ``solve()`` under this key's in-flight slot, so
        concurrent misses on the same digest wait for the one leader
        instead of duplicating the computation (the leader's exception, if
        any, is re-raised in every waiter).
        """
        digest = key.digest
        while True:
            with self._lock:
                self.lookups += 1
                cached = self._memory.get(digest, _MISS)
                if cached is not _MISS:
                    self.memory_hits += 1
                    return cached
                flight = self._inflight.get(digest)
                if flight is None:
                    flight = self._inflight[digest] = _InFlight()
                    leader = True
                else:
                    leader = False
            if not leader:
                flight.done.wait()
                with self._lock:
                    if flight.error is None:
                        self.coalesced += 1
                if flight.error is not None:
                    raise flight.error
                if flight.result is not None:
                    return flight.result
                # The leader's entry was already retired without a result
                # (shouldn't happen, but looping is always correct).
                continue
            try:
                result = self._load_or_solve(digest, key, solve)
            except BaseException as error:
                flight.error = error
                raise
            else:
                flight.result = result
                return result
            finally:
                with self._lock:
                    self._inflight.pop(digest, None)
                flight.done.set()

    def _load_or_solve(
        self, digest: str, key: CacheKey, solve: Callable[[], ExecutionResult]
    ) -> ExecutionResult:
        """The leader's path: disk lookup, then the real computation."""
        from_disk = self.store.get(digest)
        if from_disk is not None:
            with self._lock:
                self.disk_hits += 1
                self._memory.put(digest, from_disk)
            return from_disk
        result = solve()
        with self._lock:
            self.misses += 1
        if result.grid is not None:
            # Grid-less (simulate-mode) answers are never persisted: they
            # carry no bit-exact payload worth addressing by content.
            self.store.put(digest, result, request=key.payload)
            with self._lock:
                self._memory.put(digest, result)
        return result

    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the in-process tier (the disk tier is untouched)."""
        self._memory.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered without a fresh solve."""
        with self._lock:
            served = self.memory_hits + self.disk_hits + self.coalesced
            return served / self.lookups if self.lookups else 0.0

    def info(self) -> dict:
        """JSON-safe counters of every tier (the ``/metrics`` cache section)."""
        with self._lock:
            served = self.memory_hits + self.disk_hits + self.coalesced
            out = {
                "lookups": self.lookups,
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "coalesced": self.coalesced,
                "misses": self.misses,
                "hit_rate": served / self.lookups if self.lookups else 0.0,
                "memory": self._memory.info(),
            }
        out["disk"] = self.store.info()
        return out
