"""Disk-backed bounded store of execution results, one ``.npz`` per entry.

On-disk layout (documented in ``docs/caching.md``)::

    <cache_dir>/
        cache_format.json       # {"format_version": 1} — whole-directory marker
        <sha256-digest>.npz     # one entry: JSON header + raw grid arrays

Each entry is a single NumPy ``.npz`` archive holding a JSON header (the
result's scalar fields plus the request payload that produced it) and the
grid's raw arrays (``values``, optional ``payload``, ``meta``, optional
``witness``) — bit-exact, no float round-tripping through text.

Durability contract:

* **atomic writes** — entries are written to a temporary file in the same
  directory and ``os.replace``-d into place, so a reader can never observe
  a half-written (torn) entry, and a crash mid-write leaves at most a
  ``*.tmp`` file the next open sweeps away;
* **corruption-tolerant reads** — a truncated, garbage or vanished entry is
  a *miss*: it is counted (``corrupt_dropped``), deleted (repaired) and the
  caller re-solves; only a deliberately incompatible ``format_version``
  raises :class:`repro.core.exceptions.CacheError`;
* **bounded** — ``max_entries`` / ``max_bytes`` caps; overflow evicts the
  least-recently-used entries (``evictions`` counter).
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.core.exceptions import CacheError, InvalidParameterError
from repro.core.grid import WavefrontGrid
from repro.core.params import InputParams, TunableParams
from repro.hardware.costmodel import PhaseBreakdown
from repro.runtime.result import ExecutionResult

#: Layout version of the on-disk cache (directory marker and every entry).
CACHE_FORMAT_VERSION = 1

#: Name of the whole-directory format marker file.
FORMAT_MARKER = "cache_format.json"

#: Default bound on the number of persisted entries.
DEFAULT_MAX_ENTRIES = 1024

#: Default bound on the total persisted bytes (256 MiB).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def encode_result(result: ExecutionResult, request: dict | None = None) -> dict:
    """Split one result into a JSON-safe header and raw arrays.

    Returns the ``np.savez`` keyword mapping: a ``header`` JSON string plus
    the grid arrays.  ``request`` (the canonical key payload) is embedded so
    every entry names the request it answers.
    """
    header = {
        "format_version": CACHE_FORMAT_VERSION,
        "request": request,
        "params": {
            "dim": result.params.dim,
            "tsize": float(result.params.tsize),
            "dsize": result.params.dsize,
        },
        "tunables": {k: int(v) for k, v in result.tunables.features().items()},
        "system": result.system,
        "mode": result.mode,
        "rtime": result.rtime,
        "wall_time": result.wall_time,
        "stats": result.stats,
        "breakdown": {
            f.name: getattr(result.breakdown, f.name)
            for f in dataclasses.fields(PhaseBreakdown)
        },
        "grid": None,
        "witness": None,
    }
    arrays: dict[str, np.ndarray] = {}
    if result.grid is not None:
        header["grid"] = {
            "dim": result.grid.dim,
            "dsize": result.grid.dsize,
            "dtype": str(result.grid.values.dtype),
        }
        arrays["values"] = result.grid.values
        arrays["meta"] = result.grid.meta
        if result.grid.payload is not None:
            arrays["payload"] = result.grid.payload
    if result.witness is not None:
        # Witness arrays are raw npz members like the grid — bit-exact, no
        # text round-tripping.  Absence stays representable (old entries and
        # witness-free kernels decode to None), so the format version holds.
        header["witness"] = {"dtype": str(result.witness.dtype)}
        arrays["witness"] = result.witness
    arrays["header"] = np.frombuffer(
        json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    return arrays


def decode_result(archive) -> ExecutionResult:
    """Rebuild the :class:`ExecutionResult` of one loaded ``.npz`` archive.

    Raises :class:`CacheError` on an incompatible entry ``format_version``;
    any other malformation (missing arrays, undecodable header) raises the
    underlying exception for the store to classify as corruption.
    """
    header = json.loads(bytes(archive["header"]).decode("utf-8"))
    version = header.get("format_version")
    if version != CACHE_FORMAT_VERSION:
        raise CacheError(
            f"cache entry has unsupported format version {version!r} "
            f"(expected {CACHE_FORMAT_VERSION}); clear the cache directory "
            "or point --cache-dir somewhere else"
        )
    p = header["params"]
    grid = None
    if header["grid"] is not None:
        g = header["grid"]
        grid = WavefrontGrid(int(g["dim"]), int(g["dsize"]), dtype=np.dtype(g["dtype"]))
        grid.values[...] = archive["values"]
        grid.meta[...] = archive["meta"]
        if grid.payload is not None:
            grid.payload[...] = archive["payload"]
    witness = None
    if header.get("witness") is not None:
        witness = np.asarray(
            archive["witness"], dtype=np.dtype(header["witness"]["dtype"])
        )
    return ExecutionResult(
        params=InputParams(dim=int(p["dim"]), tsize=float(p["tsize"]), dsize=int(p["dsize"])),
        tunables=TunableParams(**{k: int(v) for k, v in header["tunables"].items()}),
        system=str(header["system"]),
        mode=str(header["mode"]),
        rtime=float(header["rtime"]),
        breakdown=PhaseBreakdown(**header["breakdown"]),
        grid=grid,
        wall_time=float(header["wall_time"]),
        stats=dict(header["stats"]),
        witness=witness,
    )


class DiskCacheStore:
    """Bounded, atomic, corruption-tolerant directory of result entries.

    One store owns one directory.  ``get``/``put`` are thread-safe (one
    lock); eviction is LRU over this process's accesses, seeded oldest-first
    from file modification times at open.  Opening a directory written under
    a different :data:`CACHE_FORMAT_VERSION` raises :class:`CacheError`
    immediately — before any request is served from incompatible bytes.
    """

    def __init__(
        self,
        directory: str | Path,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_entries < 1:
            raise InvalidParameterError(
                f"cache max_entries must be >= 1, got {max_entries}"
            )
        if max_bytes < 1:
            raise InvalidParameterError(
                f"cache max_bytes must be >= 1, got {max_bytes}"
            )
        self.directory = Path(directory)
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        #: digest -> size in bytes, in LRU order (oldest first).
        self._index: OrderedDict[str, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt_dropped = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        self._check_format_marker()
        self._scan()

    # ------------------------------------------------------------------
    # Open-time bookkeeping
    # ------------------------------------------------------------------
    def _check_format_marker(self) -> None:
        """Validate (or write) the directory's ``cache_format.json``."""
        marker = self.directory / FORMAT_MARKER
        if marker.exists():
            try:
                recorded = json.loads(marker.read_text(encoding="utf-8"))
                version = recorded.get("format_version")
            except (ValueError, OSError):
                raise CacheError(
                    f"cache directory {self.directory} has an unreadable "
                    f"{FORMAT_MARKER}; clear the directory to rebuild it"
                ) from None
            if version != CACHE_FORMAT_VERSION:
                raise CacheError(
                    f"cache directory {self.directory} was written with "
                    f"format version {version!r} (this build expects "
                    f"{CACHE_FORMAT_VERSION}); clear it or use a fresh "
                    "--cache-dir"
                )
            return
        marker.write_text(
            json.dumps({"format_version": CACHE_FORMAT_VERSION}) + "\n",
            encoding="utf-8",
        )

    def _scan(self) -> None:
        """Adopt pre-existing entries (oldest first) and sweep ``*.tmp``."""
        entries = []
        for path in self.directory.glob("*.npz"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path.stem, stat.st_size))
        for _, digest, size in sorted(entries):
            self._index[digest] = size
        for tmp in self.directory.glob("*.tmp"):
            # A crash mid-write leaves a temp file; it was never visible to
            # readers, so deleting it is always safe.
            tmp.unlink(missing_ok=True)
        self._enforce_bounds()

    # ------------------------------------------------------------------
    # Entry access
    # ------------------------------------------------------------------
    def _entry_path(self, digest: str) -> Path:
        return self.directory / f"{digest}.npz"

    def get(self, digest: str) -> ExecutionResult | None:
        """Load one entry, or ``None`` on a miss (including corruption).

        A corrupt entry (truncated/garbage bytes, missing arrays) is counted
        in ``corrupt_dropped``, deleted, and reported as a miss so the
        caller re-solves and re-stores — the cache self-repairs.  A stale
        per-entry ``format_version`` raises :class:`CacheError`.
        """
        path = self._entry_path(digest)
        try:
            with np.load(path, allow_pickle=False) as archive:
                result = decode_result(archive)
        except CacheError:
            raise
        except FileNotFoundError:
            with self._lock:
                self._index.pop(digest, None)
                self.misses += 1
            return None
        except Exception:  # noqa: BLE001 - any undecodable entry is corruption
            with self._lock:
                self.corrupt_dropped += 1
                self.misses += 1
                self._index.pop(digest, None)
            path.unlink(missing_ok=True)
            return None
        with self._lock:
            if digest in self._index:
                self._index.move_to_end(digest)
            else:
                # Entry appeared behind our back (another process); adopt it.
                try:
                    self._index[digest] = path.stat().st_size
                except OSError:
                    self._index[digest] = 0
            self.hits += 1
        return result

    def put(self, digest: str, result: ExecutionResult, request: dict | None = None) -> None:
        """Persist one entry atomically, then evict down to the bounds."""
        path = self._entry_path(digest)
        tmp = path.with_suffix(".tmp")
        arrays = encode_result(result, request)
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        size = path.stat().st_size
        with self._lock:
            self._index.pop(digest, None)
            self._index[digest] = size
            self.stores += 1
            self._enforce_bounds()

    def _enforce_bounds(self) -> None:
        """Evict LRU entries until both caps hold (callers hold the lock)."""
        while self._index and (
            len(self._index) > self.max_entries
            or sum(self._index.values()) > self.max_bytes
        ):
            digest, _ = self._index.popitem(last=False)
            self._entry_path(digest).unlink(missing_ok=True)
            self.evictions += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._index

    @property
    def total_bytes(self) -> int:
        """Bytes currently accounted to persisted entries."""
        with self._lock:
            return sum(self._index.values())

    def info(self) -> dict[str, int]:
        """Counters and occupancy of the disk tier (JSON-safe)."""
        with self._lock:
            return {
                "entries": len(self._index),
                "max_entries": self.max_entries,
                "bytes": sum(self._index.values()),
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "corrupt_dropped": self.corrupt_dropped,
            }
