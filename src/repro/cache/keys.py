"""Canonical request-key codec of the persistent result cache.

A served answer is a pure function of the request — ``(app, dim, instance
params, plan-relevant overrides, execution mode)`` — so the cache addresses
results by *content*: the request is reduced to a canonical, stable JSON
payload and hashed with SHA-256.  Two requests share a digest **iff** they
describe the same computation, independent of

* dictionary ordering (``{"a": 1, "b": 2}`` vs ``{"b": 2, "a": 1}``),
* container flavour (tuples vs lists of override pairs),
* numeric flavour (``numpy.int64(48)`` vs ``48``, ``numpy.float64`` vs
  ``float`` — the codec normalises NumPy scalars to their Python values).

Unsupported value types raise :class:`repro.core.exceptions.CacheError`
instead of silently falling back to ``repr`` — an unstable key is worse
than no key, because it would turn deterministic replay hit-rates into
machine-dependent noise.
"""

from __future__ import annotations

import hashlib
import json
import math
import numbers
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.exceptions import CacheError
from repro.core.params import InputParams, TunableParams

#: Version of the canonicalisation scheme; folded into every digest so a
#: codec change can never alias entries written under the previous scheme.
KEY_CODEC_VERSION = 1


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to a canonical JSON-safe form.

    Mappings become sorted-key dictionaries, sequences become lists, NumPy
    scalars become Python scalars, and the parameter dataclasses
    (:class:`InputParams` / :class:`TunableParams`) become their feature
    dictionaries.  Raises :class:`CacheError` for anything else — the codec
    must never guess.
    """
    if value is None or isinstance(value, (bool, np.bool_)):
        return bool(value) if value is not None else None
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        out = float(value)
        if not math.isfinite(out):
            # NaN is not equal to itself and infinities are not valid JSON;
            # neither can be a stable content address.
            raise CacheError(f"non-finite float {out!r} cannot participate in a cache key")
        return out
    if isinstance(value, str):
        return value
    if isinstance(value, InputParams):
        return {"dim": value.dim, "tsize": float(value.tsize), "dsize": value.dsize}
    if isinstance(value, TunableParams):
        return {k: int(v) for k, v in value.features().items()}
    if isinstance(value, Mapping):
        out = {}
        for key in sorted(value, key=str):
            if not isinstance(key, str):
                raise CacheError(
                    f"cache keys require string mapping keys, got {key!r}"
                )
            out[key] = canonicalize(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, numbers.Number):
        return float(value)
    raise CacheError(
        f"value of type {type(value).__name__!r} cannot participate in a "
        f"cache key: {value!r}"
    )


@dataclass(frozen=True)
class CacheKey:
    """One content address: the canonical payload and its SHA-256 digest.

    ``digest`` is the on-disk/LRU lookup key; ``payload`` is kept for
    introspection and is written into every disk entry so a cache directory
    is self-describing (``repro``'s answer to "what is this file?").
    """

    digest: str
    payload: dict

    def describe(self) -> str:
        """Human-readable one-liner (app, dim and the digest prefix)."""
        return (
            f"{self.payload.get('app')}[dim={self.payload.get('dim')}] "
            f"-> {self.digest[:12]}"
        )


def request_key(
    app: str,
    dim: int | None,
    *,
    params: InputParams | None = None,
    app_kwargs: Any = (),
    overrides: Mapping[str, Any] | None = None,
    mode: str = "functional",
) -> CacheKey:
    """The content address of one solve request.

    ``app``/``dim`` identify the registered application instance, ``params``
    its resolved :class:`InputParams` (when the caller already planned),
    ``app_kwargs`` the constructor overrides and ``overrides`` the
    plan-relevant keyword overrides (backend, engine, workers, tunables —
    anything that pins the execution away from the tuner's default).
    ``mode`` is folded in so a simulate answer can never shadow a
    functional one.
    """
    payload = {
        "codec": KEY_CODEC_VERSION,
        "app": str(app),
        "dim": canonicalize(dim),
        "params": canonicalize(params) if params is not None else None,
        "app_kwargs": canonicalize(dict(app_kwargs)),
        "overrides": canonicalize(dict(overrides or {})),
        "mode": str(mode),
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(encoded.encode("utf-8")).hexdigest()
    return CacheKey(digest=digest, payload=payload)
