"""``repro.server`` — the concurrent serving subsystem over the session.

The session facade (:class:`repro.session.Session`) made the tuned runtime
callable; this package makes it **servable**: a thread-safe bounded request
queue with explicit backpressure, a coalescing scheduler that collapses
same-signature requests into single
:meth:`~repro.session.Session.solve_many` executions (every ticket in a
batch shares the one deterministic result), JSON metrics (latency
percentiles, throughput, queue depth, batch sizes, cache hit rates), a
stdlib HTTP/JSON endpoint and a load generator — the pieces behind the
``repro serve`` and ``repro loadgen`` CLI verbs.

Layering, bottom up:

* :mod:`repro.server.queue` — :class:`RequestQueue` (admission control,
  signature-aware batch drains) and :class:`ServeRequest` (the ticket);
* :mod:`repro.server.metrics` — :class:`ServerMetrics` and the shared
  latency summary helper;
* :mod:`repro.server.faults` — :class:`FaultPlan` / :class:`FaultSpec` /
  :class:`FaultInjector`, the deterministic chaos-injection layer behind
  ``repro serve --chaos`` and the chaos-smoke gate
  (``scripts/check_chaos.py``);
* :mod:`repro.server.supervisor` — :class:`ShardSupervisor`,
  :class:`SupervisorConfig`, :class:`Shard` and :class:`ShardTask`: worker
  shards with heartbeat health checks, crash detection, jittered-backoff
  restarts, a restart-budget circuit breaker and bounded re-dispatch;
* :mod:`repro.server.service` — :class:`ReproServer` + :class:`ServerConfig`,
  the scheduler workers (dispatching through the supervisor), per-request
  deadlines and graceful drain/shutdown;
* :mod:`repro.server.http` — :class:`ServingEndpoint`, the bound HTTP
  endpoint (``POST /solve``, ``GET /metrics``, ``GET /healthz``,
  ``GET /readyz``, ``POST /shutdown``);
* :mod:`repro.server.loadgen` — :class:`LoadgenConfig`, targets and
  :func:`run_loadgen`, writing the artifact ``scripts/check_serve.py``
  gates;
* :mod:`repro.server.trace` — :class:`RequestTrace` and the seeded
  Zipf/bursty workload generator behind ``loadgen --trace/--trace-out``,
  the record/replay substrate of the cache-efficacy gate
  (``scripts/check_cache.py``).

Typical embedding::

    from repro import Session
    from repro.server import ReproServer, ServerConfig

    with Session(system="local", tuner="measured") as session:
        with ReproServer(session, ServerConfig(max_batch=16)) as server:
            result = server.solve("lcs", 512, timeout=30)

See ``docs/serving.md`` for the architecture, endpoint and metrics-schema
reference.
"""

from repro.server.loadgen import (
    DEFAULT_MIX,
    HTTPTarget,
    InProcessTarget,
    LoadgenConfig,
    ReferenceAnswers,
    build_reference,
    build_schedule,
    parse_mix,
    run_loadgen,
)
from repro.server.faults import FaultInjector, FaultPlan, FaultSpec
from repro.server.http import (
    ServingEndpoint,
    grid_digest,
    result_payload,
    witness_digest,
)
from repro.server.metrics import ServerMetrics, summarise_latencies
from repro.server.queue import RequestQueue, ServeRequest, request_signature
from repro.server.service import ReproServer, ServerConfig
from repro.server.supervisor import (
    Shard,
    ShardSupervisor,
    ShardTask,
    SupervisorConfig,
)
from repro.server.trace import (
    TRACE_FORMAT_VERSION,
    RequestTrace,
    generate_trace,
    load_trace,
    save_trace,
    zipf_weights,
)

__all__ = [
    "ReproServer",
    "ServerConfig",
    "ServerMetrics",
    "ServingEndpoint",
    "RequestQueue",
    "ServeRequest",
    "ShardSupervisor",
    "SupervisorConfig",
    "Shard",
    "ShardTask",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "LoadgenConfig",
    "HTTPTarget",
    "InProcessTarget",
    "ReferenceAnswers",
    "DEFAULT_MIX",
    "build_reference",
    "build_schedule",
    "parse_mix",
    "run_loadgen",
    "RequestTrace",
    "TRACE_FORMAT_VERSION",
    "generate_trace",
    "load_trace",
    "save_trace",
    "zipf_weights",
    "request_signature",
    "result_payload",
    "witness_digest",
    "grid_digest",
    "summarise_latencies",
]
