"""Stdlib HTTP/JSON endpoint over :class:`repro.server.ReproServer`.

``repro serve`` binds a :class:`ThreadingHTTPServer` whose handler threads
submit into the server's bounded queue and block until the scheduler
completes their ticket — so HTTP concurrency is naturally capped by
admission control, and overload answers ``429`` instead of stalling.

Routes (all JSON):

* ``POST /solve`` — body ``{"app": ..., "dim": ..., "mode": ...,
  "backend": ..., "workers": ..., ...}`` (everything beyond app/dim/mode
  forwards to :meth:`repro.session.Session.plan`); answers the result
  payload of :func:`result_payload`.
* ``GET /metrics`` — the server's metrics snapshot
  (:meth:`repro.server.ReproServer.metrics`).
* ``GET /healthz`` — liveness: ``{"status": "ok", "uptime_s": ...}``.
  Answers 200 while the process serves HTTP at all — restarting shards do
  not flip liveness, only readiness.
* ``GET /readyz`` — readiness: per-shard state (``healthy`` / ``restarting``
  / ``dead``), restart counts and degraded mode
  (:meth:`repro.server.ReproServer.readiness`); answers ``503`` when no
  shard can take traffic so external probes route around the instance.
* ``POST /shutdown`` — begins a graceful drain + stop; answers ``202``.

Error mapping: deadline expiry → 504, backpressure → 429 (with a
``Retry-After`` header), usage/unknown-name errors → 400, missing
artifacts → 409, any other framework error → 500; every error body is
``{"error": {"type": ..., "message": ...}}``.  ``POST /solve`` accepts an
optional ``deadline_s`` body key bounding the request end-to-end (default:
the server's ``default_deadline_s``).
"""

from __future__ import annotations

import hashlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

import numpy as np

from repro.core.exceptions import (
    ArtifactError,
    BackpressureError,
    DeadlineError,
    RegistryError,
    ServerError,
    UsageError,
)
from repro.runtime.result import ExecutionResult
from repro.server.service import ReproServer

#: Default solve timeout an HTTP handler waits before answering 503
#: (the timeout surfaces as a ``ServerError``).
DEFAULT_REQUEST_TIMEOUT_S = 120.0


def grid_digest(result: ExecutionResult) -> str | None:
    """SHA-256 of the result grid's raw bytes (functional mode only).

    A compact, bit-exact fingerprint: two grids share a digest iff their
    float values are byte-identical, which is how the load generator proves
    HTTP answers equal in-process :meth:`repro.session.Session.solve` grids
    without shipping whole grids over the wire.
    """
    if result.grid is None:
        return None
    return hashlib.sha256(
        np.ascontiguousarray(result.grid.values).tobytes()
    ).hexdigest()


def witness_digest(result: ExecutionResult) -> str | None:
    """SHA-256 of the result's witness array bytes, or ``None`` without one.

    The witness (a traceback certificate, see
    :meth:`repro.core.pattern.WavefrontKernel.reconstruct_witness`) is
    digested separately from the grid: a traceback bug then fails
    verification on its own digest even when the value grid is perfect.
    """
    if result.witness is None:
        return None
    return hashlib.sha256(
        np.ascontiguousarray(result.witness).tobytes()
    ).hexdigest()


def result_payload(app: str, dim: int | None, result: ExecutionResult) -> dict:
    """The JSON body answering one successful ``POST /solve``.

    Witness-bearing results additionally answer ``witness`` (the full
    certificate as a list of ints — witnesses are short, one path per
    solve) and ``witness_sha256``; witness-free results answer neither key
    as ``null`` values would be indistinguishable from a dropped witness.
    """
    payload = {
        "app": app,
        "dim": result.params.dim if dim is None else dim,
        "system": result.system,
        "mode": result.mode,
        "rtime_s": result.rtime,
        "wall_time_s": result.wall_time,
        "tunables": {k: int(v) for k, v in result.tunables.features().items()},
        "grid_sha256": grid_digest(result),
    }
    if result.grid is not None:
        payload["value"] = result.value
        payload["checksum"] = result.checksum
    if result.witness is not None:
        payload["witness"] = [int(x) for x in result.witness]
        payload["witness_sha256"] = witness_digest(result)
    return payload


#: ``Retry-After`` seconds suggested to backpressured (429) clients.
RETRY_AFTER_S = 1


def error_status(error: BaseException) -> int:
    """Map one framework error to its HTTP status code.

    Order matters: :class:`DeadlineError` subclasses :class:`ServerError`
    (504 before 503) and :class:`~repro.core.exceptions.\
ShardUnavailableError` subclasses :class:`BackpressureError` (both shed
    load as 429).
    """
    if isinstance(error, DeadlineError):
        return 504
    if isinstance(error, BackpressureError):
        return 429
    if isinstance(error, (UsageError, RegistryError)):
        return 400
    if isinstance(error, ArtifactError):
        return 409
    if isinstance(error, ServerError):
        return 503
    return 500


class _ServeHandler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`ServingEndpoint` instance."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer subclass below carries the endpoint.
    @property
    def endpoint(self) -> "ServingEndpoint":
        """The serving endpoint that owns this handler's HTTP server."""
        return self.server.endpoint  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve the observability routes."""
        if self.path == "/metrics":
            self._reply(200, self.endpoint.repro_server.metrics())
        elif self.path == "/healthz":
            self._reply(
                200,
                {
                    "status": "ok",
                    "uptime_s": self.endpoint.repro_server.metrics_store.uptime_s,
                },
            )
        elif self.path == "/readyz":
            readiness = self.endpoint.repro_server.readiness()
            self._reply(200 if readiness["ready"] else 503, readiness)
        else:
            self._reply(404, _error_body(ServerError(f"no route {self.path!r}"), 404))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Serve the solve and shutdown routes."""
        if self.path == "/solve":
            self._solve()
        elif self.path == "/shutdown":
            self._reply(202, {"status": "draining"})
            self.endpoint.begin_shutdown()
        else:
            self._reply(404, _error_body(ServerError(f"no route {self.path!r}"), 404))

    # ------------------------------------------------------------------
    def _solve(self) -> None:
        """Decode one solve request, run it through the queue, answer JSON."""
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(body, dict) or "app" not in body:
                raise UsageError('POST /solve body must be JSON with an "app" key')
        except (ValueError, UsageError) as error:
            self._reply(400, _error_body(error, 400))
            return
        app = body.pop("app")
        dim = body.pop("dim", None)
        mode = body.pop("mode", None)
        deadline_s = body.pop("deadline_s", None)
        if deadline_s is not None:
            try:
                deadline_s = float(deadline_s)
            except (TypeError, ValueError):
                error = UsageError(f"deadline_s must be a number, got {deadline_s!r}")
                self._reply(400, _error_body(error, 400))
                return
        ticket = None
        try:
            ticket = self.endpoint.repro_server.submit(
                app, dim, mode=mode, deadline_s=deadline_s, **body
            )
            # The ticket's own deadline bounds the wait (result() with no
            # timeout); the endpoint timeout is only the backstop for
            # deadline-less requests.
            if ticket.deadline_at is not None:
                result = ticket.result()
            else:
                result = ticket.result(timeout=self.endpoint.request_timeout_s)
        except Exception as error:  # noqa: BLE001 - every failure answers JSON
            # ReproErrors map to their documented statuses; anything else
            # (e.g. a TypeError from bad constructor kwargs) answers 500
            # instead of dropping the connection without a response.  A
            # still-pending ticket (result timeout) is cancelled so the
            # scheduler never does ghost work for this gone client.
            if ticket is not None:
                ticket.cancel()
            status = error_status(error)
            self._reply(status, _error_body(error, status))
            return
        self._reply(200, result_payload(app, dim, result))

    def _reply(self, status: int, payload: dict) -> None:
        """Send one JSON response."""
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if status == 429:
            # Explicit backpressure: tell well-behaved clients when to come
            # back instead of letting them hammer the full queue.
            self.send_header("Retry-After", str(RETRY_AFTER_S))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route per-request logging through the endpoint's logger hook."""
        self.endpoint.log(format % args)


def _error_body(error: BaseException, status: int) -> dict:
    """The JSON body of one error response."""
    return {
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "status": status,
        }
    }


class _EndpointHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows the endpoint it serves."""

    daemon_threads = True
    endpoint: "ServingEndpoint"


class ServingEndpoint:
    """One bound HTTP endpoint over one :class:`ReproServer`.

    Owns the listening socket (``port=0`` binds an ephemeral port — read the
    real one from :attr:`address`) and the shutdown choreography: a
    ``POST /shutdown`` (or :meth:`begin_shutdown`) stops the accept loop,
    after which :meth:`serve_forever` returns and the caller closes the
    repro server behind it.
    """

    def __init__(
        self,
        repro_server: ReproServer,
        host: str = "127.0.0.1",
        port: int = 8077,
        *,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self.repro_server = repro_server
        self.request_timeout_s = float(request_timeout_s)
        self._log = log
        self._httpd = _EndpointHTTPServer((host, port), _ServeHandler)
        self._httpd.endpoint = self
        self._shutdown_requested = threading.Event()

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The actually bound ``(host, port)`` (resolves ``port=0``)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL of the bound endpoint."""
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def shutdown_requested(self) -> bool:
        """True once a shutdown was requested (route or method)."""
        return self._shutdown_requested.is_set()

    def log(self, message: str) -> None:
        """Forward one access-log line to the configured hook (or drop it)."""
        if self._log is not None:
            self._log(message)

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the accept loop until :meth:`begin_shutdown` (blocking)."""
        self.repro_server.start()
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._httpd.server_close()

    def begin_shutdown(self) -> None:
        """Stop the accept loop from any thread; idempotent.

        ``serve_forever`` returns soon after; the in-flight handler that
        called this still gets its response out because the HTTP server's
        shutdown only stops *accepting*, it does not kill handler threads.
        """
        if self._shutdown_requested.is_set():
            return
        self._shutdown_requested.set()
        threading.Thread(
            target=self._httpd.shutdown, name="repro-serve-shutdown", daemon=True
        ).start()

    def close(self) -> None:
        """Stop accepting and gracefully close the repro server behind."""
        self.begin_shutdown()
        self.repro_server.close()
