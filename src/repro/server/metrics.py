"""Request/aggregate metrics of the serving layer, exposed as plain JSON.

One :class:`ServerMetrics` instance per server collects, under a single
lock:

* request counters — accepted, rejected (backpressure), completed, failed,
  and the number currently in flight;
* a bounded latency reservoir (most recent ``reservoir_size`` end-to-end
  service latencies) from which the percentiles are computed;
* a batch-size histogram, the direct evidence of how well the coalescing
  scheduler is amortising plan resolution;
* a bounded per-signature latency breakdown (one
  :class:`repro.adaptive.observations.SignatureStats` per traffic class,
  LRU over at most ``signature_limit`` signatures) — what the drift
  detector reasons about and what operators need to see per workload.

:meth:`ServerMetrics.snapshot` renders everything as a JSON-safe dictionary
— the payload of the HTTP endpoint's ``GET /metrics`` and of the
``--metrics-out`` artifact the CLI writes at shutdown.  The schema is
documented in ``docs/serving.md``.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict, deque
from typing import Hashable

from repro.adaptive.observations import SignatureStats, signature_label

#: Default number of most-recent latency samples kept for percentiles.
DEFAULT_RESERVOIR_SIZE = 4096

#: Default bound on distinct signatures in the per-signature breakdown.
DEFAULT_SIGNATURE_LIMIT = 64

#: Percentile points reported in every snapshot.
PERCENTILES = (50, 90, 95, 99)


def summarise_latencies(latencies_s: list[float]) -> dict[str, float | int]:
    """Percentile/mean/max summary (in milliseconds) of latency samples.

    Shared by the server metrics and the load generator so both artifacts
    speak the same schema.  Returns zeroed fields for an empty sample set.
    """
    if not latencies_s:
        return {f"p{p}": 0.0 for p in PERCENTILES} | {
            "mean": 0.0,
            "max": 0.0,
            "samples": 0,
        }
    ordered = sorted(latencies_s)
    out: dict[str, float | int] = {}
    for p in PERCENTILES:
        rank = min(len(ordered) - 1, max(0, round(p / 100 * (len(ordered) - 1))))
        out[f"p{p}"] = ordered[rank] * 1e3
    out["mean"] = sum(ordered) / len(ordered) * 1e3
    out["max"] = ordered[-1] * 1e3
    out["samples"] = len(ordered)
    return out


class ServerMetrics:
    """Thread-safe counters, latency reservoir and batch histogram.

    All ``record_*`` methods are safe to call from any thread (HTTP handler
    threads, scheduler workers, the admission path); :meth:`snapshot` can be
    taken at any time, including after shutdown.
    """

    def __init__(
        self,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
        signature_limit: int = DEFAULT_SIGNATURE_LIMIT,
    ) -> None:
        self._lock = threading.Lock()
        self._started_at = time.perf_counter()
        self._latencies_s: deque[float] = deque(maxlen=max(1, int(reservoir_size)))
        self._batch_sizes: Counter[int] = Counter()
        self._signature_limit = max(1, int(signature_limit))
        self._signatures: OrderedDict[Hashable, SignatureStats] = OrderedDict()
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.in_flight = 0
        self.deadline_expired = 0

    # ------------------------------------------------------------------
    def record_accepted(self) -> None:
        """One request passed admission control."""
        with self._lock:
            self.accepted += 1
            self.in_flight += 1

    def record_rejected(self, rollback_accept: bool = False) -> None:
        """One request was refused with backpressure.

        ``rollback_accept`` undoes a prior :meth:`record_accepted` in the
        same lock acquisition — for callers that count acceptance *before*
        publishing the request, so completion can never be observed ahead
        of acceptance.
        """
        with self._lock:
            self.rejected += 1
            if rollback_accept:
                self.accepted -= 1
                self.in_flight -= 1

    def record_completed(
        self, latency_s: float, signature: Hashable = None
    ) -> None:
        """One request finished successfully after ``latency_s`` seconds.

        With ``signature`` given, the latency also feeds that traffic
        class's per-signature breakdown (bounded: the least-recently
        updated signature is dropped past ``signature_limit``).
        """
        with self._lock:
            self.completed += 1
            self.in_flight -= 1
            self._latencies_s.append(latency_s)
            if signature is not None:
                stats = self._signatures.get(signature)
                if stats is None:
                    stats = SignatureStats()
                    self._signatures[signature] = stats
                else:
                    self._signatures.move_to_end(signature)
                while len(self._signatures) > self._signature_limit:
                    self._signatures.popitem(last=False)
        if signature is not None:
            stats.record(latency_s)

    def record_failed(self, latency_s: float | None) -> None:
        """One admitted request failed after ``latency_s`` seconds.

        Pass ``None`` for requests that never executed (e.g. stranded in
        the queue at shutdown): they count as failed but contribute no
        latency sample, for the same reason as :meth:`record_cancelled`.
        """
        with self._lock:
            self.failed += 1
            self.in_flight -= 1
            if latency_s is not None:
                self._latencies_s.append(latency_s)

    def record_deadline_expired(self, latency_s: float | None) -> None:
        """One admitted request missed its deadline (typed 504 failure).

        Counts as a failure *and* increments the dedicated
        ``deadline_expired`` counter in the same lock acquisition, so the
        ``accepted == completed + failed + cancelled + in_flight`` invariant
        is preserved while the chaos gate can still see deadline misses
        separately.
        """
        with self._lock:
            self.failed += 1
            self.deadline_expired += 1
            self.in_flight -= 1
            if latency_s is not None:
                self._latencies_s.append(latency_s)

    def record_cancelled(self) -> None:
        """One admitted request was abandoned by its waiter and skipped.

        No latency sample: the request never executed, so its queue time
        would only distort the service-latency percentiles.
        """
        with self._lock:
            self.cancelled += 1
            self.in_flight -= 1

    def rollback_accepted(self) -> None:
        """Undo one :meth:`record_accepted` for a never-admitted request.

        Used when the queue is closed (shutdown): unlike backpressure this
        is not load shedding, so it must not inflate the rejected counter.
        """
        with self._lock:
            self.accepted -= 1
            self.in_flight -= 1

    def record_batch(self, size: int) -> None:
        """The scheduler drained one batch of ``size`` coalesced requests."""
        with self._lock:
            self._batch_sizes[int(size)] += 1

    # ------------------------------------------------------------------
    @property
    def uptime_s(self) -> float:
        """Seconds since the metrics (i.e. the server) were created."""
        return time.perf_counter() - self._started_at

    def snapshot(
        self,
        queue_depth: int | None = None,
        queue_capacity: int | None = None,
        queue_high_water: int | None = None,
        caches: dict | None = None,
        cache: dict | None = None,
        supervisor: dict | None = None,
        adaptive: dict | None = None,
    ) -> dict:
        """JSON-safe view of everything collected so far.

        ``queue_*`` are sampled by the caller (the queue owns its own lock)
        and ``caches`` is the session's ``cache_info()`` — both optional so
        the metrics object stays reusable outside a full server.  ``cache``
        is the persistent result cache's tier counters
        (:meth:`repro.cache.ResultCache.info`); it is always present in the
        snapshot — ``None`` when no ``--cache-dir`` is configured — so
        artifact consumers can distinguish "cache off" from "old schema".
        ``adaptive`` (the adaptive controller's
        :meth:`~repro.adaptive.AdaptiveController.snapshot`) follows the
        same always-present convention: ``None`` means ``--adaptive off``.
        ``supervisor`` is the shard supervisor's :meth:`info` (shard states,
        restarts, re-dispatches, faults survived); included when provided.
        """
        with self._lock:
            uptime = self.uptime_s
            batches = sum(self._batch_sizes.values())
            batched_requests = sum(s * n for s, n in self._batch_sizes.items())
            snapshot = {
                "uptime_s": uptime,
                "requests": {
                    "accepted": self.accepted,
                    "rejected": self.rejected,
                    "completed": self.completed,
                    "failed": self.failed,
                    "cancelled": self.cancelled,
                    "in_flight": self.in_flight,
                    "deadline_expired": self.deadline_expired,
                },
                "queue": {
                    "depth": queue_depth,
                    "capacity": queue_capacity,
                    "high_water": queue_high_water,
                },
                "batches": {
                    "count": batches,
                    "mean_size": (batched_requests / batches) if batches else 0.0,
                    "max_size": max(self._batch_sizes, default=0),
                    "histogram": {
                        str(size): count
                        for size, count in sorted(self._batch_sizes.items())
                    },
                },
                "latency_ms": summarise_latencies(list(self._latencies_s)),
                "throughput_rps": (self.completed / uptime) if uptime > 0 else 0.0,
            }
            per_signature = list(self._signatures.items())[::-1]
        snapshot["signatures"] = {
            (
                signature_label(sig)
                if isinstance(sig, tuple) and len(sig) == 4
                else repr(sig)
            ): stats.snapshot()
            for sig, stats in per_signature
        }
        snapshot["cache"] = cache
        snapshot["adaptive"] = adaptive
        if caches is not None:
            snapshot["caches"] = caches
        if supervisor is not None:
            snapshot["supervisor"] = supervisor
        return snapshot
