"""Closed/open-loop load generator for the serving layer (``repro loadgen``).

Drives a target — an HTTP endpoint started by ``repro serve`` or an
in-process :class:`repro.server.ReproServer` — with a deterministic mixed
workload, verifies every answer bit-exactly against an in-process reference
:class:`repro.session.Session`, and writes a throughput/latency JSON
artifact (by default under ``benchmarks/results/``) that
``scripts/check_serve.py`` gates in CI.

* **closed loop** (default): ``clients`` threads issue requests
  back-to-back; offered load adapts to service rate, so this measures
  capacity.
* **open loop** (``rate_rps``): requests fire on a fixed arrival schedule
  regardless of completions, so queueing delay (and eventually
  backpressure) becomes visible.

Verification keys off the *(grid, witness)* fingerprint pair: the reference
session solves each distinct ``(app, dim)`` of the mix once, and every
served answer must match its SHA-256 grid digest (HTTP) or its full grid
bit-for-bit (in-process) — *and*, for witness-bearing apps, the witness
digest / array exactly — the "grids identical to in-process solving"
acceptance criterion, enforced on every request.  Digesting the witness
separately means a traceback bug cannot pass verification on a perfect
value grid.
"""

from __future__ import annotations

import json
import random
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import (
    BackpressureError,
    DeadlineError,
    ServerError,
    UsageError,
)
from repro.server.http import grid_digest, witness_digest
from repro.server.service import ReproServer
from repro.session import Session
from repro.server.metrics import summarise_latencies

#: Schema marker of the loadgen artifact (bumped on layout changes).
#: v2: ``results.skipped_verification`` (completed-but-unverified requests
#: are now counted, never silent), a ``cache`` section (per-run delta of the
#: server's persistent result-cache counters) and ``meta.trace``.
#: v3: ``results.deadline_expired`` (504s are a distinct outcome, not
#: generic failures) and ``results.retries`` (backpressured attempts retried
#: with jittered exponential backoff are counted, not hidden).
#: v4: verification digests the ``(grid, witness)`` pair instead of the grid
#: alone, and ``results.witness_verified`` counts requests whose full pair
#: matched the reference (gated against ``completed`` in CI).
#: v5: an ``adaptive`` section (per-run delta of the server's adaptive-tuning
#: counters — observations, drift events, shadow evaluations, swaps),
#: mirroring the ``cache`` section's cold/warm accounting.
LOADGEN_FORMAT_VERSION = 5

#: Cap of the jittered exponential retry backoff (seconds).
RETRY_CAP_S = 1.0

#: Default request mix: three small DP apps, distinct signatures.
DEFAULT_MIX = "lcs:48,edit-distance:40,matrix-chain:32"


def parse_mix(spec: str) -> tuple[tuple[str, int], ...]:
    """Parse a ``"app:dim,app:dim,..."`` mix specification.

    Raises :class:`~repro.core.exceptions.UsageError` on malformed entries;
    application names are validated later by the session/registry.
    """
    mix: list[tuple[str, int]] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        app, sep, dim_text = entry.partition(":")
        if not sep or not app:
            raise UsageError(
                f"bad mix entry {entry!r}: expected app:dim (e.g. lcs:48)"
            )
        try:
            dim = int(dim_text)
        except ValueError:
            raise UsageError(f"bad mix dim {dim_text!r} in {entry!r}") from None
        mix.append((app, dim))
    if not mix:
        raise UsageError(f"mix {spec!r} contains no app:dim entries")
    return tuple(mix)


@dataclass(frozen=True)
class LoadgenConfig:
    """Workload shape of one load-generation run.

    ``mix`` is the request cycle (request *i* targets ``mix[i % len]``,
    making the workload deterministic); ``requests`` is the total issued;
    ``clients`` the number of concurrent issuing threads; ``rate_rps``
    switches to open-loop arrivals at that aggregate rate; ``mode`` is the
    execution mode forwarded with every request; ``timeout_s`` bounds each
    individual request attempt.

    ``retries`` bounds how many times a backpressured (429) request is
    retried — with jittered exponential backoff from ``retry_base_s``,
    capped at :data:`RETRY_CAP_S` — before it is recorded as rejected;
    every retried attempt is counted in the artifact's ``retries`` field.
    ``deadline_s`` is an optional per-request deadline sent with every
    request; a 504 (:class:`~repro.core.exceptions.DeadlineError`) is
    recorded as the distinct ``deadline_expired`` outcome, never retried
    (the deadline already passed — more attempts cannot help).
    """

    mix: tuple[tuple[str, int], ...]
    requests: int = 60
    clients: int = 4
    rate_rps: float | None = None
    mode: str = "functional"
    timeout_s: float = 120.0
    retries: int = 3
    retry_base_s: float = 0.05
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        """Validate the workload shape once."""
        if self.requests < 1:
            raise UsageError(f"requests must be >= 1, got {self.requests}")
        if self.clients < 1:
            raise UsageError(f"clients must be >= 1, got {self.clients}")
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise UsageError(f"rate must be > 0, got {self.rate_rps}")
        if self.retries < 0:
            raise UsageError(f"retries must be >= 0, got {self.retries}")
        if self.retry_base_s <= 0:
            raise UsageError(
                f"retry_base_s must be > 0, got {self.retry_base_s}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise UsageError(f"deadline must be > 0, got {self.deadline_s}")


# ----------------------------------------------------------------------
# Targets
# ----------------------------------------------------------------------
class HTTPTarget:
    """A remote ``repro serve`` endpoint driven over HTTP/JSON."""

    kind = "http"

    def __init__(self, url: str) -> None:
        self.url = url.rstrip("/")

    def describe(self) -> str:
        """The target identifier recorded in the artifact."""
        return self.url

    def solve(
        self,
        app: str,
        dim: int,
        mode: str,
        timeout_s: float,
        deadline_s: float | None = None,
    ) -> dict:
        """POST one solve; return the response payload.

        Raises :class:`~repro.core.exceptions.ServerError` carrying the
        endpoint's HTTP status on the error's ``status`` attribute for
        non-200 answers, so callers can branch on 429 (backpressure) and
        504 (deadline) without string matching.
        """
        request_body: dict = {"app": app, "dim": dim, "mode": mode}
        if deadline_s is not None:
            request_body["deadline_s"] = deadline_s
        body = json.dumps(request_body).encode("utf-8")
        request = urllib.request.Request(
            f"{self.url}/solve",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout_s) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as http_error:
            payload = _safe_json(http_error)
            error = ServerError(
                f"{app}[dim={dim}] -> HTTP {http_error.code}: "
                f"{payload.get('error', {}).get('message', http_error.reason)}"
            )
            error.status = http_error.code  # type: ignore[attr-defined]
            raise error from None

    def metrics(self, timeout_s: float = 10.0) -> dict:
        """Fetch the endpoint's ``GET /metrics`` snapshot."""
        with urllib.request.urlopen(
            f"{self.url}/metrics", timeout=timeout_s
        ) as response:
            return json.loads(response.read())

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Request a graceful remote shutdown (``POST /shutdown``)."""
        request = urllib.request.Request(f"{self.url}/shutdown", method="POST")
        with urllib.request.urlopen(request, timeout=timeout_s):
            pass


class InProcessTarget:
    """An in-process :class:`ReproServer` driven directly (no sockets).

    The test-friendly mode: same queue, scheduler and metrics as the HTTP
    path, but answers carry the full grid so verification can compare
    bit-for-bit instead of by digest.
    """

    kind = "in-process"

    def __init__(self, server: ReproServer) -> None:
        self.server = server

    def describe(self) -> str:
        """The target identifier recorded in the artifact."""
        return f"in-process:{self.server.session.system.name}"

    def solve(
        self,
        app: str,
        dim: int,
        mode: str,
        timeout_s: float,
        deadline_s: float | None = None,
    ) -> dict:
        """Submit through the server's queue; normalise to the HTTP payload."""
        result = self.server.solve(
            app,
            dim,
            mode=mode,
            timeout=None if deadline_s is not None else timeout_s,
            deadline_s=deadline_s,
        )
        return {"app": app, "dim": dim, **_answer_payload(result)}

    def metrics(self, timeout_s: float = 10.0) -> dict:
        """The server's metrics snapshot."""
        return self.server.metrics()


def _safe_json(http_error: urllib.error.HTTPError) -> dict:
    """Best-effort decode of an error response body."""
    try:
        return json.loads(http_error.read())
    except Exception:  # noqa: BLE001 - any undecodable body is just empty
        return {}


def _answer_payload(result) -> dict:
    """The verification fields of one execution result.

    The single source of the fields :func:`_verify` compares — both the
    in-process target's answers and the reference's expectations build on
    it, so they can never drift apart field-by-field.
    """
    return {
        "value": result.value if result.grid is not None else None,
        "checksum": result.checksum if result.grid is not None else None,
        "grid_sha256": grid_digest(result),
        "witness_sha256": witness_digest(result),
        "_grid": result.grid,
        "_witness": result.witness,
    }


# ----------------------------------------------------------------------
# Reference answers
# ----------------------------------------------------------------------
@dataclass
class ReferenceAnswers:
    """Per-(app, dim) expected results from one in-process reference session.

    ``solve_ms`` records the best direct in-process solve wall-clock per mix
    entry — the machine-neutral denominator ``scripts/check_serve.py`` uses
    to turn absolute serving latency into an overhead ratio.
    """

    expected: dict[tuple[str, int], dict] = field(default_factory=dict)
    solve_ms: dict[str, float] = field(default_factory=dict)

    @property
    def mean_solve_ms(self) -> float:
        """Mean direct-solve time over the mix entries."""
        if not self.solve_ms:
            return 0.0
        return sum(self.solve_ms.values()) / len(self.solve_ms)


def build_reference(
    session: Session,
    mix: tuple[tuple[str, int], ...],
    mode: str,
    repeats: int = 3,
) -> ReferenceAnswers:
    """Solve each distinct mix entry in-process; record answers and timings.

    The first (warming) solve resolves the plan and is discarded from the
    timing; the best of ``repeats`` warm solves is kept, matching the bench
    verb's best-of-N convention.
    """
    reference = ReferenceAnswers()
    for app, dim in dict.fromkeys(mix):
        result = session.solve(app, dim, mode=mode)
        walls = []
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            result = session.solve(app, dim, mode=mode)
            walls.append(time.perf_counter() - t0)
        reference.expected[(app, dim)] = _answer_payload(result)
        reference.solve_ms[f"{app}:{dim}"] = min(walls) * 1e3
    return reference


def _verify(answer: dict, expected: dict) -> bool | None:
    """Tri-state verdict of one served answer against the reference.

    ``True``/``False`` — the *(grid, witness)* pair (or its digests) was
    compared and matched / did not match.  ``None`` — *nothing was
    comparable*: both sides are grid-less (simulate mode), so the request
    completed without any verification.  Callers must count ``None`` as
    ``skipped_verification``, never fold it into either pass or mismatch —
    an answer missing a grid the reference *does* have stays a mismatch,
    and so does a missing (or extra, or different) witness.
    """
    if answer.get("_grid") is not None and expected.get("_grid") is not None:
        if not np.array_equal(answer["_grid"].values, expected["_grid"].values):
            return False
        answer_witness = answer.get("_witness")
        expected_witness = expected.get("_witness")
        if answer_witness is None or expected_witness is None:
            return answer_witness is None and expected_witness is None
        return bool(np.array_equal(answer_witness, expected_witness))
    answer_digest = answer.get("grid_sha256")
    expected_digest = expected.get("grid_sha256")
    if answer_digest is None and expected_digest is None:
        return None
    if answer_digest is None or expected_digest is None:
        return False
    if answer_digest != expected_digest or answer.get("checksum") != expected.get(
        "checksum"
    ):
        return False
    # HTTP answers carry the witness digest only when a witness exists, so
    # None == None verifies witness-free apps and any asymmetry fails.
    return answer.get("witness_sha256") == expected.get("witness_sha256")


def _cache_delta(before: dict | None, after: dict | None) -> dict | None:
    """This run's share of the server's result-cache counters.

    The server's cache counters are cumulative since start-up; subtracting
    the pre-run snapshot isolates what *this* workload did, so a warm
    replay reports its own hit rate, not the lifetime average.  ``None``
    when the target exposes no cache section (cache off or old server).
    """
    if not isinstance(after, dict):
        return None
    before = before if isinstance(before, dict) else {}
    delta = {
        key: int(after.get(key, 0)) - int(before.get(key, 0))
        for key in ("lookups", "memory_hits", "disk_hits", "coalesced", "misses")
    }
    served = delta["memory_hits"] + delta["disk_hits"] + delta["coalesced"]
    delta["hit_rate"] = served / delta["lookups"] if delta["lookups"] else 0.0
    return delta


def _adaptive_delta(before: dict | None, after: dict | None) -> dict | None:
    """This run's share of the server's adaptive-tuning counters.

    Same accounting as :func:`_cache_delta`: the adaptive controller's
    counters are cumulative since server start-up, so subtracting the
    pre-run snapshot isolates what this workload triggered (a stable replay
    should show zero drift events of its own even against a server that
    drifted earlier).  ``None`` when the target exposes no adaptive section
    (``--adaptive off`` or an old server).
    """
    if not isinstance(after, dict):
        return None
    before = before if isinstance(before, dict) else {}

    def counter(snapshot: dict, *path: str) -> int:
        value: object = snapshot
        for key in path:
            value = value.get(key, 0) if isinstance(value, dict) else 0
        return int(value) if isinstance(value, (int, float)) else 0

    paths = {
        "observations": ("observations",),
        "drift_events": ("drift", "events"),
        "shadow_evaluations": ("shadow", "evaluations"),
        "would_swap": ("shadow", "would_swap"),
        "swaps_applied": ("swaps", "applied"),
        "swaps_rolled_back": ("swaps", "rolled_back"),
        "errors": ("errors",),
    }
    delta = {
        name: counter(after, *path) - counter(before, *path)
        for name, path in paths.items()
    }
    delta["mode"] = after.get("mode")
    return delta


# ----------------------------------------------------------------------
# The run loop
# ----------------------------------------------------------------------
def build_schedule(
    config: LoadgenConfig, trace=None
) -> list[tuple[str, int, float | None]]:
    """The issue plan of one run: ``(app, dim, arrival offset)`` per request.

    With a :class:`repro.server.trace.RequestTrace` the trace *is* the
    schedule (bit-exact replay); otherwise the config's round-robin mix is
    unrolled, with evenly spaced offsets when ``rate_rps`` sets an open
    loop.
    """
    if trace is not None:
        return trace.schedule()
    return [
        (
            config.mix[index % len(config.mix)][0],
            config.mix[index % len(config.mix)][1],
            index / config.rate_rps if config.rate_rps is not None else None,
        )
        for index in range(config.requests)
    ]


def run_loadgen(
    target: HTTPTarget | InProcessTarget,
    config: LoadgenConfig,
    reference: ReferenceAnswers | None = None,
    progress=None,
    trace=None,
) -> dict:
    """Drive ``target`` with the configured workload; return the artifact.

    ``reference`` enables per-request bit-exact verification (mismatches are
    counted, never raised — the artifact reports them and the CLI turns
    them into a non-zero exit); every completed request *not* verified (no
    reference, or nothing comparable in simulate mode) is counted in
    ``skipped_verification`` instead of passing silently.  ``trace``
    replays a recorded :class:`~repro.server.trace.RequestTrace` instead of
    the config's round-robin mix.  ``progress`` is an optional one-line
    callback.
    """
    schedule = build_schedule(config, trace)
    total = len(schedule)
    counter = iter(range(total))
    counter_lock = threading.Lock()
    stats_lock = threading.Lock()
    latencies: list[float] = []
    outcomes = {
        "completed": 0,
        "rejected": 0,
        "failed": 0,
        "deadline_expired": 0,
        "retries": 0,
        "mismatches": 0,
        "skipped_verification": 0,
        "witness_verified": 0,
    }
    errors: list[str] = []
    try:
        metrics_before = target.metrics()
        cache_before = metrics_before.get("cache")
        adaptive_before = metrics_before.get("adaptive")
    except Exception:  # noqa: BLE001 - the pre-run snapshot is best-effort
        cache_before = None
        adaptive_before = None

    def next_index() -> int | None:
        """Claim the next global request index (None when exhausted)."""
        with counter_lock:
            return next(counter, None)

    schedule_start = time.perf_counter()

    def attempt_request(app: str, dim: int) -> tuple[dict | None, float]:
        """Fire one request with bounded backpressure retries.

        Returns ``(answer, latency_s)`` on success and ``(None, 0.0)``
        after recording the terminal outcome.  Only 429/backpressure is
        retried — with jittered exponential backoff so synchronised clients
        de-synchronise — because shed load is explicitly transient; a 504
        (deadline) is terminal by definition and anything else is a real
        failure.
        """
        attempt = 0
        while True:
            t0 = time.perf_counter()
            try:
                answer = target.solve(
                    app,
                    dim,
                    config.mode,
                    config.timeout_s,
                    deadline_s=config.deadline_s,
                )
                return answer, time.perf_counter() - t0
            except Exception as error:  # noqa: BLE001 - recorded, not raised
                status = getattr(error, "status", None)
                deadline = status == 504 or isinstance(error, DeadlineError)
                backpressure = not deadline and (
                    status == 429 or isinstance(error, BackpressureError)
                )
                if backpressure and attempt < config.retries:
                    attempt += 1
                    with stats_lock:
                        outcomes["retries"] += 1
                    delay = min(
                        RETRY_CAP_S, config.retry_base_s * (2 ** (attempt - 1))
                    )
                    time.sleep(delay * (1.0 + 0.5 * random.random()))
                    continue
                with stats_lock:
                    if deadline:
                        outcomes["deadline_expired"] += 1
                        if len(errors) < 10:
                            errors.append(str(error))
                    elif backpressure:
                        outcomes["rejected"] += 1
                    else:
                        outcomes["failed"] += 1
                        if len(errors) < 10:
                            errors.append(str(error))
                return None, 0.0

    def client_loop() -> None:
        """One client thread: claim, pace (open loop), fire, verify."""
        while True:
            index = next_index()
            if index is None:
                return
            app, dim, offset_s = schedule[index]
            if offset_s is not None:
                delay = schedule_start + offset_s - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            answer, latency = attempt_request(app, dim)
            if answer is None:
                continue
            with stats_lock:
                latencies.append(latency)
                outcomes["completed"] += 1
                if reference is None:
                    outcomes["skipped_verification"] += 1
                    continue
                expected = reference.expected.get((app, dim))
                verdict = _verify(answer, expected) if expected is not None else False
                if verdict is None:
                    outcomes["skipped_verification"] += 1
                elif not verdict:
                    outcomes["mismatches"] += 1
                    if len(errors) < 10:
                        errors.append(
                            f"{app}:{dim} answer does not match the "
                            "in-process reference"
                        )
                else:
                    # The full (grid, witness) pair matched — witness-free
                    # apps verify as (digest, None) == (digest, None).
                    outcomes["witness_verified"] += 1

    threads = [
        threading.Thread(target=client_loop, name=f"loadgen-client-{i}")
        for i in range(config.clients)
    ]
    t_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - t_start

    if progress is not None:
        progress(
            f"loadgen: {outcomes['completed']}/{total} completed in "
            f"{wall_s:.2f}s ({outcomes['completed'] / wall_s:.1f} req/s), "
            f"{outcomes['rejected']} rejected, {outcomes['failed']} failed, "
            f"{outcomes['deadline_expired']} deadline-expired, "
            f"{outcomes['retries']} retries, "
            f"{outcomes['mismatches']} mismatches, "
            f"{outcomes['witness_verified']} witness-verified, "
            f"{outcomes['skipped_verification']} unverified"
        )

    try:
        server_metrics = target.metrics()
    except Exception as error:  # noqa: BLE001 - metrics are best-effort here
        server_metrics = {"error": str(error)}

    open_loop = trace is not None and any(
        offset is not None for _, _, offset in schedule
    ) or (trace is None and config.rate_rps is not None)
    return {
        "format_version": LOADGEN_FORMAT_VERSION,
        "meta": {
            "target": target.describe(),
            "target_kind": target.kind,
            "mix": [f"{app}:{dim}" for app, dim in config.mix],
            "requests": total,
            "clients": config.clients,
            "rate_rps": config.rate_rps,
            "mode": config.mode,
            "deadline_s": config.deadline_s,
            "retry_limit": config.retries,
            "loop": "open" if open_loop else "closed",
            "trace": dict(trace.meta) if trace is not None else None,
            "python": sys.version.split()[0],
        },
        "results": {
            **outcomes,
            "wall_s": wall_s,
            "throughput_rps": outcomes["completed"] / wall_s if wall_s > 0 else 0.0,
            "latency_ms": summarise_latencies(latencies),
            "errors": errors,
        },
        "cache": _cache_delta(
            cache_before,
            server_metrics.get("cache") if isinstance(server_metrics, dict) else None,
        ),
        "adaptive": _adaptive_delta(
            adaptive_before,
            server_metrics.get("adaptive")
            if isinstance(server_metrics, dict)
            else None,
        ),
        "reference": (
            {
                "solve_ms": dict(reference.solve_ms),
                "mean_solve_ms": reference.mean_solve_ms,
            }
            if reference is not None
            else None
        ),
        "server_metrics": server_metrics,
    }
