"""The concurrent serving core: :class:`ReproServer` over one session.

Architecture (one box per thread role)::

    clients (any threads)          scheduler workers            session
    ---------------------          ------------------           -------
    submit() --admission--> [RequestQueue] --next_batch--> solve_many()
        ^   BackpressureError        |   same-signature            |
        |                            v   coalescing                v
    ticket.result() <-------- complete()/fail() <-------- ExecutionResult

    ``start()`` spawns the workers; ``close()`` drains and joins them and
    (for a server that owns its session) releases the worker pools of
    :class:`repro.runtime.lifecycle.EngineHost`.

The server adds exactly three behaviours on top of
:meth:`repro.session.Session.solve_many`:

* **admission control** — a bounded queue with an explicit, typed
  backpressure rejection instead of unbounded latency;
* **coalescing** — concurrent same-signature requests are drained as one
  batch and served by a single ``solve_many`` execution whose deterministic
  result every ticket in the group shares, amortising the tuner/plan
  resolution, the worker-pool warm-up *and the grid sweep itself*;
* **observability and lifecycle** — per-request/aggregate metrics as JSON
  (:mod:`repro.server.metrics`) and graceful drain/shutdown.

Requests may be submitted before :meth:`ReproServer.start`; they queue (and
count against capacity) until the scheduler workers come up — which also
makes batching deterministic to test.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.adaptive.controller import (
    ADAPTIVE_MODES,
    AdaptiveConfig,
    AdaptiveController,
)
from repro.core.exceptions import (
    BackpressureError,
    DeadlineError,
    ServerError,
    ShardUnavailableError,
)
from repro.server.faults import FaultPlan
from repro.server.metrics import ServerMetrics
from repro.server.queue import RequestQueue, ServeRequest
from repro.server.supervisor import ShardSupervisor, SupervisorConfig
from repro.session import Session

#: Default bound of the request queue (admission control).
DEFAULT_QUEUE_CAPACITY = 64
#: Default maximum number of same-signature requests served per batch.
DEFAULT_MAX_BATCH = 8
#: Default per-request deadline (seconds) when the client sends none.
DEFAULT_DEADLINE_S = 30.0
#: How long an idle scheduler worker waits before re-checking for shutdown.
_IDLE_WAIT_S = 0.05


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of one :class:`ReproServer`.

    ``queue_capacity`` bounds admitted-but-unscheduled requests (overflow is
    rejected with backpressure); ``max_batch`` bounds how many coalesced
    same-signature requests one coalesced execution serves; ``workers`` is
    the number of scheduler threads (more than one only overlaps planning —
    the session's run lock serialises grid execution); ``drain_timeout_s``
    bounds how long :meth:`ReproServer.close` waits for in-flight work.

    ``default_deadline_s`` is the per-request deadline applied when the
    client sends none (``None`` disables the default — requests without an
    explicit deadline then wait unboundedly); ``shards`` is the number of
    supervised worker shards (1 = the degenerate in-thread shard sharing
    the server's session); ``degraded_fallback`` makes the scheduler solve
    directly on the server's session when every shard is unavailable,
    instead of shedding the request with 429.

    ``adaptive`` selects how far the online tuning loop runs
    (:data:`repro.adaptive.ADAPTIVE_MODES`): ``"off"`` builds no
    controller, ``"shadow"`` (the default) observes, detects drift and
    logs would-be decisions, ``"live"`` additionally promotes them to
    rollback-guarded plan swaps.
    """

    queue_capacity: int = DEFAULT_QUEUE_CAPACITY
    max_batch: int = DEFAULT_MAX_BATCH
    workers: int = 1
    drain_timeout_s: float = 30.0
    default_deadline_s: float | None = DEFAULT_DEADLINE_S
    shards: int = 1
    degraded_fallback: bool = False
    adaptive: str = "shadow"

    def __post_init__(self) -> None:
        """Validate the knobs once, at construction."""
        if self.queue_capacity < 1:
            raise ServerError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_batch < 1:
            raise ServerError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.workers < 1:
            raise ServerError(f"workers must be >= 1, got {self.workers}")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ServerError(
                f"default_deadline_s must be > 0 or None, "
                f"got {self.default_deadline_s}"
            )
        if self.shards < 1:
            raise ServerError(f"shards must be >= 1, got {self.shards}")
        if self.adaptive not in ADAPTIVE_MODES:
            raise ServerError(
                f"adaptive must be one of {ADAPTIVE_MODES}, got {self.adaptive!r}"
            )


class ReproServer:
    """Concurrent, batching front-end over one :class:`~repro.session.Session`.

    The server *borrows* the session by default (closing the server leaves
    the session usable); pass ``own_session=True`` to transfer ownership so
    :meth:`close` also releases the session's engines and worker pools —
    the CLI's ``repro serve`` does exactly that.

    Use as a context manager for deterministic teardown::

        with ReproServer(session, ServerConfig(max_batch=16)) as server:
            ticket = server.submit("lcs", 256)
            result = ticket.result(timeout=30)
    """

    def __init__(
        self,
        session: Session,
        config: ServerConfig | None = None,
        *,
        own_session: bool = False,
        session_factory: Callable[[int], Session] | None = None,
        supervisor_config: SupervisorConfig | None = None,
        fault_plan: FaultPlan | None = None,
        adaptive_config: AdaptiveConfig | None = None,
    ) -> None:
        self.session = session
        self.config = config if config is not None else ServerConfig()
        self.metrics_store = ServerMetrics()
        self._queue = RequestQueue(self.config.queue_capacity)
        self._own_session = own_session
        self._threads: list[threading.Thread] = []
        self._lifecycle = threading.Lock()
        self._started = False
        self._closed = False
        # Every execution goes through the supervisor.  With shards == 1 and
        # no factory this is the degenerate in-thread shard borrowing the
        # server's own session — same execution semantics as before, but the
        # supervision/chaos path is always exercised.  A factory builds one
        # session per shard (share a warmed tuner and one ResultCache across
        # them so re-dispatches coalesce); `session` stays the degraded
        # fallback and the metrics/cache-info source either way.
        self.supervisor = ShardSupervisor(
            session=None if session_factory is not None else session,
            shards=self.config.shards,
            session_factory=session_factory,
            config=supervisor_config,
            fault_plan=fault_plan,
        )
        # The online tuning loop.  An explicit adaptive_config wins; the
        # ServerConfig.adaptive mode otherwise selects the defaults; "off"
        # builds nothing and costs nothing on the serving path.
        if adaptive_config is None:
            adaptive_config = AdaptiveConfig(mode=self.config.adaptive)
        self.adaptive: AdaptiveController | None = None
        if adaptive_config.mode != "off":
            self.adaptive = AdaptiveController(
                session, adaptive_config, sessions=self._adaptive_sessions
            )

    def _adaptive_sessions(self) -> list[Session]:
        """Every session a live plan swap must reach (server + shards)."""
        sessions = [self.session]
        sessions.extend(shard.session for shard in self.supervisor.shards)
        return sessions

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReproServer":
        """Spawn the scheduler workers; idempotent until :meth:`close`."""
        with self._lifecycle:
            if self._closed:
                raise ServerError("cannot start a closed server")
            if self._started:
                return self
            self.supervisor.start()
            if self.adaptive is not None:
                # Shard sessions exist by now; their pure solve walls feed
                # the run-observation log (shadow retraining evidence).
                for session in {id(s): s for s in self._adaptive_sessions()}.values():
                    session.attach_observer(self.adaptive.record_run)
            for index in range(self.config.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-serve-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
            self._started = True
            return self

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admission and wait for queued + in-flight work to finish.

        Returns ``True`` when everything completed within ``timeout``
        (default: the config's ``drain_timeout_s``).  The server cannot
        accept requests afterwards.
        """
        timeout = timeout if timeout is not None else self.config.drain_timeout_s
        self._queue.close()
        with self._lifecycle:
            started = self._started
        if not started:
            # No scheduler workers exist, so waiting cannot make progress;
            # report the truth immediately (close() fails any stragglers).
            return self._queue.depth == 0 and self.metrics_store.in_flight == 0
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            if self._queue.depth == 0 and self.metrics_store.in_flight == 0:
                return True
            time.sleep(0.01)
        return self._queue.depth == 0 and self.metrics_store.in_flight == 0

    def close(self) -> None:
        """Graceful shutdown: drain, join workers, release owned resources.

        Safe to call more than once.  Requests still queued after the drain
        timeout are failed with :class:`~repro.core.exceptions.ServerError`
        so no client blocks forever.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
        drained = self.drain()
        if not drained:
            stranded = self._queue.drain_rejected(
                ServerError("server shut down before the request was scheduled")
            )
            for request in stranded:
                # Account the stranded requests so the accepted ==
                # completed + failed + cancelled + in_flight invariant
                # survives shutdown; no latency sample — they never ran, so
                # their queue wait would distort the service percentiles.
                self.metrics_store.record_failed(None)
        for thread in self._threads:
            thread.join(timeout=self.config.drain_timeout_s)
        self._threads.clear()
        self.supervisor.close()
        if self._own_session:
            self.session.close()

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`close`."""
        with self._lifecycle:
            return self._started and not self._closed

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(
        self,
        app: str,
        dim: int | None = None,
        mode: str | None = None,
        deadline_s: float | None = None,
        **plan_kwargs,
    ) -> ServeRequest:
        """Admit one request; return its ticket immediately.

        Raises :class:`~repro.core.exceptions.BackpressureError` when the
        queue is full (including its :class:`~repro.core.exceptions.\
ShardUnavailableError` subclass when every shard's restart budget is
        exhausted and no degraded fallback is configured — shedding early
        beats queueing into a black hole) and
        :class:`~repro.core.exceptions.ServerError` once the server is
        shutting down.  ``deadline_s`` bounds the request end-to-end
        (default: the config's ``default_deadline_s``; pass ``0`` or a
        negative value to wait unboundedly).  ``plan_kwargs`` forward to
        :meth:`repro.session.Session.plan` (backend/engine/workers/app
        constructor overrides).
        """
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        now = time.perf_counter()
        deadline_at = (
            now + deadline_s if deadline_s is not None and deadline_s > 0 else None
        )
        if self.supervisor.circuit_open and not self.config.degraded_fallback:
            self.metrics_store.record_rejected()
            raise ShardUnavailableError(
                "no healthy shard available (restart budgets exhausted); "
                "shedding load — retry later"
            )
        request = ServeRequest(
            app=app,
            dim=dim,
            mode=mode,
            plan_kwargs=dict(plan_kwargs),
            enqueued_at=now,
            deadline_at=deadline_at,
        )
        # Count acceptance BEFORE the request becomes visible to workers, so
        # a fast completion can never be recorded ahead of it (in_flight
        # would transiently read -1 and drain() could return early).
        self.metrics_store.record_accepted()
        try:
            self._queue.submit(request)
        except BackpressureError:
            # Load shedding: roll the acceptance back and count the
            # rejection; re-raised unchanged so callers can branch on it.
            self.metrics_store.record_rejected(rollback_accept=True)
            raise
        except ServerError:
            # Closed queue (shutdown) is not backpressure — the request was
            # simply never admitted, so it leaves no counter behind.
            self.metrics_store.rollback_accepted()
            raise
        return request

    def solve(
        self,
        app: str,
        dim: int | None = None,
        mode: str | None = None,
        timeout: float | None = None,
        deadline_s: float | None = None,
        **plan_kwargs,
    ):
        """Submit and block for the result (the synchronous convenience).

        With ``timeout=None`` the wait is bounded by the request deadline
        (explicit ``deadline_s`` or the config default) — no more hard-coded
        client-side timeouts racing the server's own deadline handling.
        """
        ticket = self.submit(app, dim, mode, deadline_s=deadline_s, **plan_kwargs)
        return ticket.result(timeout)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """The JSON-safe metrics snapshot (``GET /metrics`` payload)."""
        return self.metrics_store.snapshot(
            queue_depth=self._queue.depth,
            queue_capacity=self._queue.capacity,
            queue_high_water=self._queue.high_water,
            caches=self.session.cache_info(),
            cache=(
                self.session.result_cache.info()
                if self.session.result_cache is not None
                else None
            ),
            supervisor=self.supervisor.info(),
            adaptive=(
                self.adaptive.snapshot() if self.adaptive is not None else None
            ),
        )

    def readiness(self) -> dict:
        """The ``GET /readyz`` payload: per-shard state and degraded mode.

        ``ready`` is true while at least one shard is healthy *or* the
        degraded fallback can still answer requests on the server's own
        session; external probes should route traffic away on 503.
        """
        info = self.supervisor.info()
        degraded = info["circuit_open"] and self.config.degraded_fallback
        return {
            "ready": self.running and (info["ready"] or degraded),
            "running": self.running,
            "degraded": degraded,
            "shards": info["shards"],
            "restarts": info["restarts"],
            "circuit_open": info["circuit_open"],
        }

    # ------------------------------------------------------------------
    # Scheduler workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        """Drain coalesced batches until the queue closes and empties."""
        while True:
            batch = self._queue.next_batch(self.config.max_batch, _IDLE_WAIT_S)
            if not batch:
                if self._queue.closed and self._queue.depth == 0:
                    return
                continue
            self._serve_batch(batch)

    def _serve_batch(self, batch: list[ServeRequest]) -> None:
        """Serve one same-signature batch with a single execution.

        Requests whose waiter already gave up (``cancel()``) are dropped
        here instead of executed — no ghost work for absent clients.  The
        batch is identical by construction (one signature → one plan, one
        deterministic answer), so it is **executed once** and every ticket
        completes with the same shared :class:`ExecutionResult` — callers
        must treat results as read-only, which every shipped consumer (HTTP
        payload, verification, metrics) already does.  A failure applies to
        the whole batch, is delivered to each waiting client, and never
        kills the worker — the server keeps serving subsequent batches.
        """
        live = []
        for request in batch:
            if request.cancelled:
                request.fail(ServerError("request was cancelled by its client"))
                self.metrics_store.record_cancelled()
            elif request.expired:
                # The deadline passed while the request sat in the queue:
                # fail it typed instead of executing work nobody can use.
                request.fail(
                    DeadlineError(
                        f"request {request.app}[dim={request.dim}] expired "
                        "in the queue before execution"
                    )
                )
                self.metrics_store.record_deadline_expired(None)
            else:
                live.append(request)
        if not live:
            return
        batch = live
        self.metrics_store.record_batch(len(batch))
        # The strictest deadline in the batch bounds the shared execution;
        # coalesced peers are identical apart from their deadlines, so the
        # tightest one is the only one that can expire first.
        deadlines = [r.deadline_at for r in batch if r.deadline_at is not None]
        deadline_at = min(deadlines) if deadlines else None
        executed_at = time.perf_counter()
        try:
            result = self.supervisor.execute(
                batch[0].as_request(),
                mode=batch[0].mode,
                deadline_at=deadline_at,
                signature=batch[0].signature,
                count=len(batch),
            )
        except DeadlineError as error:
            now = time.perf_counter()
            for request in batch:
                request.fail(error)
                self.metrics_store.record_deadline_expired(
                    now - request.enqueued_at
                )
            return
        except ShardUnavailableError as error:
            if self.config.degraded_fallback:
                self._serve_degraded(batch)
                return
            now = time.perf_counter()
            for request in batch:
                request.fail(error)
                self.metrics_store.record_failed(now - request.enqueued_at)
            return
        except Exception as error:  # noqa: BLE001 - delivered to the client
            now = time.perf_counter()
            for request in batch:
                request.fail(error)
                self.metrics_store.record_failed(now - request.enqueued_at)
            return
        now = time.perf_counter()
        service_s = now - executed_at
        for request in batch:
            request.complete(result)
            self.metrics_store.record_completed(
                now - request.enqueued_at, signature=request.signature
            )
        if self.adaptive is not None:
            head = batch[0]
            self.adaptive.observe(
                head.app,
                head.dim,
                head.mode,
                head.plan_kwargs,
                service_s,
                count=len(batch),
            )

    def _serve_degraded(self, batch: list[ServeRequest]) -> None:
        """Answer one batch directly on the server's session (last resort).

        Graceful degradation: every shard is dead, but going dark is worse
        than serving slowly — solve in the scheduler thread on the borrowed
        session.  Deterministic execution keeps the response bit-exact with
        what a shard would have produced.
        """
        executed_at = time.perf_counter()
        try:
            result = self.session.solve_many(
                [batch[0].as_request()], mode=batch[0].mode
            )[0]
        except Exception as error:  # noqa: BLE001 - delivered to the client
            now = time.perf_counter()
            for request in batch:
                request.fail(error)
                self.metrics_store.record_failed(now - request.enqueued_at)
            return
        now = time.perf_counter()
        service_s = now - executed_at
        for request in batch:
            request.complete(result)
            self.metrics_store.record_completed(
                now - request.enqueued_at, signature=request.signature
            )
        if self.adaptive is not None:
            head = batch[0]
            self.adaptive.observe(
                head.app,
                head.dim,
                head.mode,
                head.plan_kwargs,
                service_s,
                count=len(batch),
            )
