"""The serving layer's bounded request queue with admission control.

Requests enter the server through exactly one door: :meth:`RequestQueue.submit`.
Admission control happens there — a queue at capacity rejects immediately
with :class:`repro.core.exceptions.BackpressureError` instead of letting
latency grow without bound, which is the explicit-backpressure half of the
serving contract (the other half, batching, lives in
:mod:`repro.server.service`).

The queue also implements *signature-aware draining*: a scheduler worker
calling :meth:`RequestQueue.next_batch` receives the oldest request **plus
every queued request with the same signature** (up to the batch bound), even
when other signatures are interleaved between them.  Same-signature requests
resolve to one tuned plan and reuse one warm worker pool, so handing them to
:meth:`repro.session.Session.solve_many` as one batch amortises the per-plan
work across the whole group.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.adaptive.observations import observation_signature
from repro.core.exceptions import BackpressureError, DeadlineError, ServerError

#: Hashable request signature: ``(app, dim, mode, sorted plan overrides)``.
Signature = tuple


def request_signature(
    app: str, dim: int | None, mode: str | None, plan_kwargs: dict
) -> Signature:
    """The coalescing key of one request.

    Two requests with equal signatures resolve to the same tuned plan (same
    application instance, same overrides, same execution mode), so the
    scheduler may serve them in one batch.  Delegates to
    :func:`repro.adaptive.observations.observation_signature` — the one
    canonical signature implementation — so coalescing keys and adaptive
    observation keys can never diverge.
    """
    return observation_signature(app, dim, mode, plan_kwargs)


@dataclass
class ServeRequest:
    """One queued request and its completion state.

    Created by :meth:`repro.server.ReproServer.submit`; callers hold it as a
    ticket and block on :meth:`result`.  The scheduler worker fills exactly
    one of ``_result`` / ``_error`` and sets the event.
    """

    app: str
    dim: int | None
    mode: str | None
    plan_kwargs: dict
    enqueued_at: float
    #: Absolute ``time.perf_counter()`` deadline; ``None`` means unbounded.
    deadline_at: float | None = None
    signature: Signature = field(default=None)  # type: ignore[assignment]
    _done: threading.Event = field(default_factory=threading.Event, repr=False)
    _result: Any = field(default=None, repr=False)
    _error: BaseException | None = field(default=None, repr=False)
    _cancelled: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        """Derive the coalescing signature once, at admission time."""
        if self.signature is None:
            self.signature = request_signature(
                self.app, self.dim, self.mode, self.plan_kwargs
            )

    # ------------------------------------------------------------------
    def as_request(self) -> dict:
        """The :meth:`repro.session.Session.solve_many` mapping form."""
        return {"app": self.app, "dim": self.dim, **self.plan_kwargs}

    @property
    def done(self) -> bool:
        """True once the request completed (successfully or not)."""
        return self._done.is_set()

    @property
    def cancelled(self) -> bool:
        """True once the waiter abandoned the request (best-effort)."""
        return self._cancelled

    @property
    def expired(self) -> bool:
        """True once the request's deadline (if any) has passed."""
        return (
            self.deadline_at is not None
            and time.perf_counter() > self.deadline_at
        )

    @property
    def remaining_s(self) -> float | None:
        """Seconds left until the deadline (``None`` when unbounded)."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - time.perf_counter())

    def cancel(self) -> bool:
        """Mark the request abandoned; return whether it was still pending.

        Best-effort: a still-queued request is skipped by the scheduler
        (no ghost work for a client that gave up); one already mid-execution
        completes normally — compute cannot be aborted part-way.
        """
        if self._done.is_set():
            return False
        self._cancelled = True
        return True

    def complete(self, result: Any) -> None:
        """Deliver the execution result and wake the waiting client."""
        self._result = result
        self._done.set()

    def fail(self, error: BaseException) -> None:
        """Deliver a failure and wake the waiting client."""
        self._error = error
        self._done.set()

    def result(self, timeout: float | None = None) -> Any:
        """Block until the request completes; return or re-raise its outcome.

        With ``timeout=None`` the wait is bounded by the request's own
        deadline (plus a short grace for the server to deliver the typed
        failure first): a deadline-carrying ticket raises
        :class:`~repro.core.exceptions.DeadlineError` instead of blocking
        forever.  An explicit ``timeout`` that expires first raises
        :class:`~repro.core.exceptions.ServerError`.
        """
        if timeout is None and self.deadline_at is not None:
            # Grace of 0.25s: the scheduler fails expired tickets with the
            # typed DeadlineError; this local fallback only fires when the
            # server never answered at all.
            remaining = self.deadline_at + 0.25 - time.perf_counter()
            if not self._done.wait(max(0.0, remaining)):
                raise DeadlineError(
                    f"request {self.app}[dim={self.dim}] missed its deadline "
                    "and the server delivered no response"
                )
        elif not self._done.wait(timeout):
            raise ServerError(
                f"request {self.app}[dim={self.dim}] did not complete "
                f"within {timeout:g}s"
            )
        if self._error is not None:
            raise self._error
        return self._result


class RequestQueue:
    """Bounded FIFO of :class:`ServeRequest` with coalescing batch drains.

    ``capacity`` bounds the number of *queued* (admitted, not yet scheduled)
    requests; :meth:`submit` beyond it raises
    :class:`~repro.core.exceptions.BackpressureError`.  :meth:`close` stops
    admission and wakes every waiting scheduler worker so the server can
    drain and exit.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ServerError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._items: deque[ServeRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False
        #: Highest queue depth ever observed (served to the metrics page).
        self.high_water = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of admitted requests not yet handed to a scheduler."""
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` stopped admission."""
        with self._cond:
            return self._closed

    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest) -> ServeRequest:
        """Admit one request, or reject it with explicit backpressure.

        Raises :class:`~repro.core.exceptions.BackpressureError` when the
        queue is at capacity and :class:`~repro.core.exceptions.ServerError`
        when the queue was closed.
        """
        with self._cond:
            if self._closed:
                raise ServerError("request queue is closed (server shutting down)")
            if len(self._items) >= self.capacity:
                raise BackpressureError(
                    f"request queue is full ({self.capacity} requests queued); "
                    "retry with backoff or reduce the offered load"
                )
            self._items.append(request)
            self.high_water = max(self.high_water, len(self._items))
            self._cond.notify()
            return request

    def next_batch(
        self, max_batch: int, timeout: float | None = None
    ) -> list[ServeRequest]:
        """The oldest request plus queued same-signature peers (coalescing).

        Blocks up to ``timeout`` seconds for a request to arrive; returns an
        empty list on timeout or once the queue is closed *and* drained.
        Requests with other signatures keep their relative order.  The scan
        stops as soon as the batch is full, so one drain touches at most the
        prefix it needed — not the whole backlog.
        """
        with self._cond:
            while not self._items:
                if self._closed:
                    return []
                if not self._cond.wait(timeout):
                    return []
            head = self._items.popleft()
            batch = [head]
            if max_batch > 1 and self._items:
                skipped: deque[ServeRequest] = deque()
                while self._items and len(batch) < max_batch:
                    candidate = self._items.popleft()
                    if candidate.signature == head.signature:
                        batch.append(candidate)
                    else:
                        skipped.append(candidate)
                skipped.extend(self._items)  # untouched tail stays behind
                self._items = skipped
            return batch

    def close(self) -> None:
        """Stop admission and wake every waiting scheduler worker."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain_rejected(self, error: BaseException) -> list[ServeRequest]:
        """Fail every still-queued request with ``error``; return them.

        Used by non-graceful shutdown so no client blocks forever on a
        request that will never run; the caller accounts the returned
        requests in its metrics.
        """
        with self._cond:
            failed: list[ServeRequest] = []
            while self._items:
                request = self._items.popleft()
                request.fail(error)
                failed.append(request)
            return failed
