"""Shard supervision for the serving layer: heartbeats, restarts, re-dispatch.

The hardest part of sharded serving is not the fan-out but surviving it: a
shard that dies mid-solve must not take the service down or lose the
request.  :class:`ShardSupervisor` owns N worker :class:`Shard` lanes (each
hosting its own :class:`~repro.session.Session` and executing
:class:`ShardTask` work items from a signature-routed inbox) plus one
monitor thread, and guarantees:

* **crash detection** — a shard is declared crashed when its loop raises
  :class:`~repro.core.exceptions.ShardCrashError` (injected kill) or
  :class:`~repro.core.exceptions.WorkerCrashError` (a broken
  multiprocessing pool under the session), when an idle shard misses its
  heartbeats, or when an executing shard hangs past the in-flight request's
  deadline plus a grace period;
* **automatic restart** — a crashed shard restarts under jittered
  exponential backoff; a restart-budget circuit breaker (too many crashes
  inside a sliding window) declares the shard ``dead`` instead of
  restarting it forever;
* **bounded re-dispatch** — the in-flight task of a crashed shard is
  re-dispatched (up to ``max_redispatch`` extra attempts) to a healthy
  shard, or back into the restarting shard's inbox when it is the only
  lane.  At-most-once *divergence* is enforced by construction: solving is
  deterministic and, when the shards share one persistent
  :class:`repro.cache.ResultCache`, retried requests coalesce on the
  cache's leader/follower keys so a retry never double-solves;
* **deadline enforcement** — :meth:`ShardSupervisor.execute` never blocks
  past the request deadline: an unanswered task fails with a typed
  :class:`~repro.core.exceptions.DeadlineError` (HTTP 504), which is also
  how a chaos ``drop`` fault (response discarded after solving) resolves.

The degenerate configuration — one in-thread shard borrowing the server's
session — is the default, so a 1-core CI host exercises every code path:
dispatch, heartbeats, crash, backoff, restart, re-dispatch and circuit
breaking all behave identically at N=1.  Chaos injection
(:mod:`repro.server.faults`) hooks the shard loop between dequeue and
execution, which is what keeps injected kills at-most-once: the fault
fires *before* any solve starts.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.exceptions import (
    DeadlineError,
    ServerError,
    ShardCrashError,
    ShardUnavailableError,
    WorkerCrashError,
)
from repro.server.faults import FaultInjector, FaultPlan
from repro.session import Session

#: Extra seconds a waiter allows past the deadline before failing the task,
#: absorbing scheduler wake-up latency without weakening the guarantee.
DEADLINE_GRACE_S = 0.1


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs of one :class:`ShardSupervisor`.

    ``heartbeat_interval_s`` paces both the shard beats and the monitor;
    an *idle* shard missing ``missed_heartbeats`` consecutive beats is
    declared crashed, an *executing* shard only once its current task's
    deadline is exceeded by ``hang_grace_s`` (so long legitimate solves are
    never penalised).  Restart delays grow as
    ``backoff_base_s * 2^(consecutive crashes - 1)`` capped at
    ``backoff_cap_s``, with up to ``backoff_jitter`` relative jitter; more
    than ``restart_budget`` crashes inside ``restart_window_s`` trip the
    circuit breaker (shard state ``dead``).  ``max_redispatch`` bounds how
    many *extra* attempts a crashed shard's in-flight task gets.
    """

    heartbeat_interval_s: float = 0.1
    missed_heartbeats: int = 5
    hang_grace_s: float = 0.5
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    backoff_jitter: float = 0.25
    restart_budget: int = 5
    restart_window_s: float = 30.0
    max_redispatch: int = 2

    def __post_init__(self) -> None:
        """Validate the knobs once, at construction."""
        if self.heartbeat_interval_s <= 0:
            raise ServerError(
                f"heartbeat_interval_s must be > 0, got {self.heartbeat_interval_s}"
            )
        if self.missed_heartbeats < 1:
            raise ServerError(
                f"missed_heartbeats must be >= 1, got {self.missed_heartbeats}"
            )
        for name in ("hang_grace_s", "backoff_base_s", "backoff_cap_s"):
            if getattr(self, name) < 0:
                raise ServerError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.backoff_jitter < 0:
            raise ServerError(
                f"backoff_jitter must be >= 0, got {self.backoff_jitter}"
            )
        if self.restart_budget < 0:
            raise ServerError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )
        if self.restart_window_s <= 0:
            raise ServerError(
                f"restart_window_s must be > 0, got {self.restart_window_s}"
            )
        if self.max_redispatch < 0:
            raise ServerError(
                f"max_redispatch must be >= 0, got {self.max_redispatch}"
            )


class ShardTask:
    """One unit of shard work: a coalesced batch's single execution.

    Created by :meth:`ShardSupervisor.execute`, carried through a shard
    inbox, possibly re-dispatched after a crash.  ``request`` is the
    :meth:`repro.session.Session.solve_many` mapping of the batch head;
    ``count`` is the number of coalesced client requests it answers (the
    fault injector advances its request ordinal by this much).  Exactly one
    of result/error is delivered; a chaos ``drop`` fault delivers neither,
    leaving the waiter to fail at its deadline.
    """

    __slots__ = (
        "request",
        "mode",
        "deadline_at",
        "signature",
        "count",
        "attempts",
        "abandoned",
        "dropped",
        "_done",
        "_result",
        "_error",
    )

    def __init__(
        self,
        request: dict,
        mode: str | None,
        deadline_at: float | None,
        signature: Any = None,
        count: int = 1,
    ) -> None:
        self.request = request
        self.mode = mode
        self.deadline_at = deadline_at
        self.signature = signature
        self.count = max(1, int(count))
        #: Executions started (first dispatch + re-dispatches).
        self.attempts = 0
        #: Set by the waiter at deadline so a queued task is skipped.
        self.abandoned = False
        #: Set when a chaos drop fault discarded the computed response.
        self.dropped = False
        self._done = threading.Event()
        self._result: Any = None
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        """True once a result or error was delivered."""
        return self._done.is_set()

    @property
    def expired(self) -> bool:
        """True once the task's deadline (if any) has passed."""
        return (
            self.deadline_at is not None
            and time.perf_counter() > self.deadline_at
        )

    def complete(self, result: Any) -> None:
        """Deliver the execution result and wake the waiter."""
        self._result = result
        self._done.set()

    def fail(self, error: BaseException) -> None:
        """Deliver a failure and wake the waiter."""
        self._error = error
        self._done.set()

    def wait(self) -> bool:
        """Block until resolved or the deadline (+grace) passes.

        Returns ``True`` when the task resolved in time; ``False`` means
        the deadline expired with no response (crash re-dispatch could not
        finish in time, or a drop fault discarded the answer).
        """
        if self.deadline_at is None:
            self._done.wait()
            return True
        remaining = self.deadline_at + DEADLINE_GRACE_S - time.perf_counter()
        return self._done.wait(max(0.0, remaining))

    def outcome(self) -> Any:
        """The delivered result, or re-raise the delivered error."""
        if self._error is not None:
            raise self._error
        return self._result


class Shard:
    """One supervised worker lane: a session, an inbox and a beat clock.

    The shard thread loops dequeue → chaos hooks → execute → deliver,
    beating ``last_beat`` between tasks.  All mutable state (inbox,
    ``current`` task, ``state``, ``epoch``) is guarded by one condition;
    the ``epoch`` counter retires superseded threads — a thread that wakes
    from a hang after the monitor already restarted the shard observes a
    stale epoch and exits without touching anything.

    States: ``healthy`` (thread serving), ``restarting`` (crashed, waiting
    out its backoff), ``dead`` (restart budget exhausted — circuit open).
    """

    def __init__(
        self,
        index: int,
        session: Session,
        supervisor: "ShardSupervisor",
        owns_session: bool,
    ) -> None:
        self.index = index
        self.session = session
        self.supervisor = supervisor
        self.owns_session = owns_session
        self.state = "restarting"  # becomes healthy on first start()
        self.epoch = 0
        self.inbox: deque[ShardTask] = deque()
        self.current: ShardTask | None = None
        self.last_beat = time.perf_counter()
        self.restart_at = 0.0
        self.consecutive_crashes = 0
        self.crash_times: deque[float] = deque()
        self.restarts = 0
        self.crashes = 0
        self.dropped = 0
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        self._closed = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn (or respawn) the shard thread under a fresh epoch."""
        with self._cond:
            if self._closed:
                return
            self.epoch += 1
            self.state = "healthy"
            self.last_beat = time.perf_counter()
            epoch = self.epoch
            self._thread = threading.Thread(
                target=self._loop,
                args=(epoch,),
                name=f"repro-shard-{self.index}-e{epoch}",
                daemon=True,
            )
            self._thread.start()

    def dispatch(self, task: ShardTask, front: bool = False) -> None:
        """Queue one task; ``front`` puts a re-dispatched task first."""
        with self._cond:
            if self._closed or self.state == "dead":
                raise ShardUnavailableError(
                    f"shard {self.index} is {'closed' if self._closed else 'dead'}"
                )
            if front:
                self.inbox.appendleft(task)
            else:
                self.inbox.append(task)
            self._cond.notify()

    def snapshot(self) -> dict:
        """JSON-safe view of this shard for readiness and metrics pages."""
        with self._cond:
            return {
                "index": self.index,
                "state": self.state,
                "restarts": self.restarts,
                "crashes": self.crashes,
                "queued": len(self.inbox),
                "in_flight": self.current is not None,
                "dropped_responses": self.dropped,
            }

    def close(self) -> None:
        """Retire the thread and fail every unanswered task."""
        with self._cond:
            self._closed = True
            self.epoch += 1  # retire any live or hung thread
            stranded = list(self.inbox)
            self.inbox.clear()
            if self.current is not None:
                stranded.append(self.current)
                self.current = None
            self._cond.notify_all()
            thread = self._thread
        error = ServerError("shard shut down before the request completed")
        for task in stranded:
            if not task.done:
                task.fail(error)
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0)
        if self.owns_session:
            self.session.close()

    # ------------------------------------------------------------------
    def _loop(self, epoch: int) -> None:
        """Serve inbox tasks until superseded or closed, beating in between."""
        interval = self.supervisor.config.heartbeat_interval_s / 2
        while True:
            with self._cond:
                if self.epoch != epoch or self._closed:
                    return
                self.last_beat = time.perf_counter()
                if not self.inbox:
                    self._cond.wait(interval)
                    continue
                task = self.inbox.popleft()
                if task.abandoned or task.done:
                    continue
                self.current = task
            try:
                self._execute(task, epoch)
            except (ShardCrashError, WorkerCrashError) as crash:
                self.supervisor._on_crash(self, task, crash, epoch)
                return
            finally:
                with self._cond:
                    if self.epoch == epoch:
                        self.current = None
                        self.last_beat = time.perf_counter()

    def _stale(self, epoch: int) -> bool:
        """True when this thread was superseded by a restart."""
        with self._cond:
            return self.epoch != epoch or self._closed

    def _execute(self, task: ShardTask, epoch: int) -> None:
        """Run one task through the chaos hooks and the session."""
        task.attempts += 1
        faults = self.supervisor.injector.take(task.count)
        drop = any(fault.kind == "drop" for fault in faults)
        kill = next((fault for fault in faults if fault.kind == "kill"), None)
        for fault in faults:
            if fault.kind in ("slow", "hang"):
                time.sleep(fault.sleep_s)
        if self._stale(epoch):
            # A hang outlived this thread: the monitor restarted the shard
            # and re-dispatched the task — leave it to the new epoch.
            return
        if kill is not None:
            raise ShardCrashError(
                f"chaos kill fault on shard {self.index} "
                f"(request ordinal {kill.at})"
            )
        if task.expired:
            task.fail(
                DeadlineError(
                    f"request {task.request.get('app')!r} expired in the "
                    f"shard inbox before execution"
                )
            )
            return
        try:
            result = self.session.solve_many(
                [task.request], mode=task.mode, deadline_at=task.deadline_at
            )[0]
        except (ShardCrashError, WorkerCrashError):
            raise  # shard-level crash: handled by the loop / supervisor
        except Exception as error:  # noqa: BLE001 - delivered to the waiter
            task.fail(error)
            return
        if self._stale(epoch):
            return
        if drop:
            # Chaos: the work happened, the response vanishes.  The waiter
            # resolves the ticket at its deadline with DeadlineError.
            task.dropped = True
            with self._cond:
                self.dropped += 1
            return
        task.complete(result)


class ShardSupervisor:
    """Owner of N supervised shards and the monitor that keeps them alive.

    Construct with either a shared ``session`` (every shard borrows it —
    the degenerate in-thread configuration, correct because executions
    serialise on the session's run lock) or a ``session_factory`` building
    one session per shard index (the sharded configuration; give the
    factory sessions one shared :class:`repro.cache.ResultCache` so
    re-dispatched requests stay at-most-once across shards).  The
    supervisor closes factory-built sessions on :meth:`close` and never
    closes a borrowed one.
    """

    def __init__(
        self,
        session: Session | None = None,
        *,
        shards: int = 1,
        session_factory: Callable[[int], Session] | None = None,
        config: SupervisorConfig | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if shards < 1:
            raise ServerError(f"shards must be >= 1, got {shards}")
        if session is None and session_factory is None:
            raise ServerError(
                "ShardSupervisor needs a session or a session_factory"
            )
        self.config = config if config is not None else SupervisorConfig()
        self.injector = FaultInjector(
            plan=fault_plan if fault_plan is not None else FaultPlan()
        )
        self._rng = random.Random()
        self._lock = threading.Lock()
        self._started = False
        self._closed = False
        self._monitor: threading.Thread | None = None
        self._monitor_stop = threading.Event()
        self.redispatches = 0
        self.shards: list[Shard] = []
        for index in range(int(shards)):
            if session_factory is not None:
                shard_session = session_factory(index)
                owns = True
            else:
                shard_session = session  # type: ignore[assignment]
                owns = False
            self.shards.append(Shard(index, shard_session, self, owns))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardSupervisor":
        """Start every shard thread and the monitor; idempotent."""
        with self._lock:
            if self._closed:
                raise ServerError("cannot start a closed supervisor")
            if self._started:
                return self
            self._started = True
        for shard in self.shards:
            shard.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-shard-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def close(self) -> None:
        """Stop the monitor, retire every shard, fail unanswered tasks."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        for shard in self.shards:
            shard.close()

    @property
    def ready(self) -> bool:
        """True while at least one shard is healthy."""
        return any(shard.state == "healthy" for shard in self.shards)

    @property
    def circuit_open(self) -> bool:
        """True once every shard is dead (restart budgets exhausted)."""
        return all(shard.state == "dead" for shard in self.shards)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def execute(
        self,
        request: dict,
        mode: str | None = None,
        deadline_at: float | None = None,
        signature: Any = None,
        count: int = 1,
    ):
        """Run one (batch-head) request on a shard; block for the outcome.

        Routes by signature hash so equal-signature streams keep hitting
        one shard's warm caches, falling back to the next healthy lane.
        Raises :class:`~repro.core.exceptions.DeadlineError` when the
        deadline passes unanswered — the caller decides whether that fails
        the batch or triggers degraded fallback — and
        :class:`~repro.core.exceptions.ShardUnavailableError` when no lane
        can accept work at all.
        """
        task = ShardTask(request, mode, deadline_at, signature, count)
        self._pick_shard(signature).dispatch(task)
        if task.wait():
            return task.outcome()
        task.abandoned = True  # a still-queued task is skipped, not run late
        raise DeadlineError(
            f"request {request.get('app')!r} missed its deadline after "
            f"{task.attempts} execution attempt(s)"
            + (" (response dropped)" if task.dropped else "")
        )

    def _pick_shard(self, signature: Any) -> Shard:
        """The dispatch target: preferred healthy lane, else any viable one."""
        n = len(self.shards)
        preferred = (hash(signature) % n) if signature is not None else 0
        order = [self.shards[(preferred + i) % n] for i in range(n)]
        for shard in order:
            if shard.state == "healthy":
                return shard
        for shard in order:
            if shard.state == "restarting":
                # Queue behind the restart: the task runs once the backoff
                # elapses, bounded by its own deadline either way.
                return shard
        raise ShardUnavailableError(
            "no shard can accept work: every restart budget is exhausted; "
            "retry later or reduce the offered load"
        )

    # ------------------------------------------------------------------
    # Crash handling
    # ------------------------------------------------------------------
    def _on_crash(
        self,
        shard: Shard,
        task: ShardTask | None,
        error: BaseException,
        epoch: int,
    ) -> None:
        """Handle one shard crash: retire, back off or trip, re-dispatch."""
        now = time.perf_counter()
        with shard._cond:
            if shard.epoch != epoch or shard._closed:
                return  # already handled (monitor and loop can race here)
            shard.epoch += 1  # retire the crashed/hung thread
            shard.current = None
            shard.crashes += 1
            shard.consecutive_crashes += 1
            shard.crash_times.append(now)
            window = self.config.restart_window_s
            while shard.crash_times and shard.crash_times[0] < now - window:
                shard.crash_times.popleft()
            if len(shard.crash_times) > self.config.restart_budget:
                shard.state = "dead"
                stranded = list(shard.inbox)
                shard.inbox.clear()
            else:
                shard.state = "restarting"
                shard.restart_at = now + self._backoff_delay(
                    shard.consecutive_crashes
                )
                stranded = []
        breaker = ShardUnavailableError(
            f"shard {shard.index} exceeded its restart budget "
            f"({self.config.restart_budget} crashes per "
            f"{self.config.restart_window_s:g}s)"
        )
        for queued in stranded:
            if not queued.done:
                queued.fail(breaker)
        if task is not None and not task.done:
            self._redispatch(task, shard, error)

    def _backoff_delay(self, consecutive: int) -> float:
        """Jittered exponential restart delay for the Nth consecutive crash."""
        base = self.config.backoff_base_s * (2 ** max(0, consecutive - 1))
        delay = min(self.config.backoff_cap_s, base)
        return delay * (1.0 + self.config.backoff_jitter * self._rng.random())

    def _redispatch(
        self, task: ShardTask, crashed: Shard, error: BaseException
    ) -> None:
        """Give a crashed shard's in-flight task its bounded second chance."""
        if task.abandoned or task.expired:
            task.fail(
                DeadlineError(
                    f"request {task.request.get('app')!r} crashed with its "
                    f"shard and its deadline passed before re-dispatch"
                )
            )
            return
        if task.attempts > self.config.max_redispatch:
            task.fail(
                ShardCrashError(
                    f"request {task.request.get('app')!r} failed "
                    f"{task.attempts} times on crashing shards "
                    f"(re-dispatch budget {self.config.max_redispatch}): {error}"
                )
            )
            return
        target = crashed
        for shard in self.shards:
            if shard is not crashed and shard.state == "healthy":
                target = shard
                break
        try:
            target.dispatch(task, front=True)
        except ShardUnavailableError as unavailable:
            task.fail(unavailable)
            return
        with self._lock:
            self.redispatches += 1

    # ------------------------------------------------------------------
    # Monitor
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        """Detect hung/silent shards and restart crashed ones on schedule."""
        interval = self.config.heartbeat_interval_s
        while not self._monitor_stop.wait(interval):
            now = time.perf_counter()
            for shard in self.shards:
                self._check_shard(shard, now)

    def _check_shard(self, shard: Shard, now: float) -> None:
        """One monitor tick for one shard."""
        with shard._cond:
            state = shard.state
            epoch = shard.epoch
            current = shard.current
            last_beat = shard.last_beat
            restart_at = shard.restart_at
        if state == "restarting":
            if now >= restart_at and not self._closed:
                shard.start()
                with shard._cond:
                    shard.restarts += 1
            return
        if state != "healthy":
            return
        config = self.config
        if current is not None:
            # An executing shard is only hung once its task's deadline is
            # exceeded by the grace period — long legitimate solves within
            # deadline are never penalised.
            deadline_at = current.deadline_at
            if deadline_at is not None and now > deadline_at + config.hang_grace_s:
                self._on_crash(
                    shard,
                    current,
                    ShardCrashError(
                        f"shard {shard.index} hung past the request deadline"
                    ),
                    epoch,
                )
            return
        if now - last_beat > config.missed_heartbeats * config.heartbeat_interval_s:
            self._on_crash(
                shard,
                None,
                ShardCrashError(
                    f"shard {shard.index} missed "
                    f"{config.missed_heartbeats} heartbeats"
                ),
                epoch,
            )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def info(self) -> dict:
        """JSON-safe supervision snapshot for ``/metrics`` and ``/readyz``."""
        shard_snapshots = [shard.snapshot() for shard in self.shards]
        faults = self.injector.info()
        with self._lock:
            redispatches = self.redispatches
        return {
            "shards": shard_snapshots,
            "restarts": sum(s["restarts"] for s in shard_snapshots),
            "crashes": sum(s["crashes"] for s in shard_snapshots),
            "redispatches": redispatches,
            "faults_injected": faults["injected"],
            "faults": faults,
            "ready": self.ready,
            "circuit_open": self.circuit_open,
        }
