"""Chaos injection for the supervised serving stack (``--chaos <spec>``).

The PPoPP testing stance applied to serving: crash schedules must be
explored *deterministically*, not discovered in production.  A
:class:`FaultPlan` is a committed, replayable schedule of faults keyed by
the global request ordinal — replaying the same trace through the same plan
reproduces the same fault points, which is what lets the chaos-smoke CI
gate (``scripts/check_chaos.py``) assert exact survival properties.

Spec grammar (one comma-separated string)::

    kill@7,kill@31,slow@18:0.2,hang@40:3,drop@47

Each entry is ``kind@k[:seconds]`` — fire fault ``kind`` when the ``k``-th
request (1-based, counted across every shard dispatch) reaches a shard:

* ``kill`` — the shard raises :class:`~repro.core.exceptions.ShardCrashError`
  *before* executing, simulating a worker death; the supervisor restarts it
  and re-dispatches the in-flight request (at-most-once execution: the kill
  fires before any solve, and retried solves coalesce on the shared result
  cache's leader/follower keys).
* ``slow`` — the shard sleeps ``seconds`` (default 0.25) before executing;
  the request still completes bit-exactly, exercising deadline headroom.
* ``hang`` — the shard blocks for ``seconds`` (default 60, i.e. "forever"
  at serving timescales); the monitor declares it crashed once the request
  deadline (plus grace) passes, retires the hung thread's epoch and
  restarts the shard — the woken thread notices its stale epoch and exits
  without touching anything.
* ``drop`` — the shard executes the request and then discards the response
  without completing the ticket; the waiter fails at its deadline with a
  typed :class:`~repro.core.exceptions.DeadlineError` (HTTP 504), proving
  no request ever hangs past its deadline.

:class:`FaultInjector` is the runtime consumer: one per supervisor, shared
by every shard, counting dispatched requests under a lock and handing each
shard the faults scheduled for its slice of the ordinal space.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.exceptions import UsageError

#: Fault kinds understood by the spec parser and the shard loop.
FAULT_KINDS = ("kill", "slow", "hang", "drop")

#: Default sleep of a ``slow`` fault (seconds).
DEFAULT_SLOW_S = 0.25
#: Default block of a ``hang`` fault (seconds) — long enough that only the
#: supervisor's hang detection (deadline + grace) can end it.
DEFAULT_HANG_S = 60.0


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``kind`` fired at global request ordinal ``at``.

    ``seconds`` parameterises ``slow`` (sleep duration) and ``hang`` (block
    duration); it is ignored by ``kill`` and ``drop``.
    """

    kind: str
    at: int
    seconds: float | None = None

    def __post_init__(self) -> None:
        """Validate the spec once, at parse time."""
        if self.kind not in FAULT_KINDS:
            raise UsageError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.at < 1:
            raise UsageError(f"fault ordinal must be >= 1, got {self.at}")
        if self.seconds is not None and self.seconds < 0:
            raise UsageError(f"fault seconds must be >= 0, got {self.seconds}")

    @property
    def sleep_s(self) -> float:
        """The effective sleep/block duration of a slow/hang fault."""
        if self.seconds is not None:
            return self.seconds
        return DEFAULT_HANG_S if self.kind == "hang" else DEFAULT_SLOW_S

    def describe(self) -> str:
        """The spec entry's canonical ``kind@k[:seconds]`` form."""
        suffix = f":{self.seconds:g}" if self.seconds is not None else ""
        return f"{self.kind}@{self.at}{suffix}"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, replayable schedule of faults for one serving run.

    Parse one from a ``--chaos`` spec with :meth:`parse`; an empty plan
    (no spec) injects nothing and costs nothing.  The plan is immutable —
    runtime state (which faults already fired) lives in the
    :class:`FaultInjector` consuming it.
    """

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, spec: str | None) -> "FaultPlan":
        """Parse a ``kind@k[:seconds],...`` chaos spec string.

        Raises :class:`~repro.core.exceptions.UsageError` on malformed
        entries; ``None`` or an empty/whitespace spec yields the empty plan.
        """
        if spec is None or not spec.strip():
            return cls()
        parsed: list[FaultSpec] = []
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            kind, sep, rest = entry.partition("@")
            if not sep or not kind or not rest:
                raise UsageError(
                    f"bad chaos entry {entry!r}: expected kind@k[:seconds] "
                    f"(e.g. kill@7 or slow@18:0.2)"
                )
            at_text, _, seconds_text = rest.partition(":")
            try:
                at = int(at_text)
            except ValueError:
                raise UsageError(
                    f"bad chaos ordinal {at_text!r} in {entry!r}"
                ) from None
            seconds = None
            if seconds_text:
                try:
                    seconds = float(seconds_text)
                except ValueError:
                    raise UsageError(
                        f"bad chaos seconds {seconds_text!r} in {entry!r}"
                    ) from None
            parsed.append(FaultSpec(kind=kind.strip(), at=at, seconds=seconds))
        return cls(specs=tuple(sorted(parsed, key=lambda s: s.at)))

    def __len__(self) -> int:
        """Number of scheduled faults."""
        return len(self.specs)

    def describe(self) -> str:
        """The plan's canonical spec string (round-trips through parse)."""
        return ",".join(spec.describe() for spec in self.specs)


@dataclass
class FaultInjector:
    """Runtime consumer of one :class:`FaultPlan`, shared across shards.

    Shards call :meth:`take` with the number of requests they are about to
    execute; the injector advances the global ordinal under its lock and
    returns the faults whose scheduled ordinal falls inside that window
    (each fault fires exactly once).  Counters are JSON-safe and surface on
    ``/metrics`` as the ``supervisor.faults`` section — the chaos gate's
    evidence that the injected faults actually happened.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _ordinal: int = 0
    _fired: set = field(default_factory=set, repr=False)

    def take(self, count: int = 1) -> list[FaultSpec]:
        """Claim the next ``count`` request ordinals; return due faults.

        A coalesced batch of N requests advances the ordinal by N, so a
        fault scheduled "at request k" fires whichever batch contains the
        k-th request — replaying a fixed trace therefore replays the same
        fault points regardless of how batching interleaves.
        """
        if not self.plan.specs:
            return []
        with self._lock:
            lo = self._ordinal
            self._ordinal += max(1, int(count))
            hi = self._ordinal
            due = [
                spec
                for index, spec in enumerate(self.plan.specs)
                if index not in self._fired and lo < spec.at <= hi
            ]
            for index, spec in enumerate(self.plan.specs):
                if lo < spec.at <= hi:
                    self._fired.add(index)
            return due

    def info(self) -> dict:
        """JSON-safe injection counters (fired vs scheduled, by kind)."""
        with self._lock:
            fired = [self.plan.specs[index] for index in sorted(self._fired)]
            by_kind: dict[str, int] = {}
            for spec in fired:
                by_kind[spec.kind] = by_kind.get(spec.kind, 0) + 1
            return {
                "scheduled": len(self.plan),
                "injected": len(fired),
                "by_kind": by_kind,
                "requests_seen": self._ordinal,
                "plan": self.plan.describe(),
            }
