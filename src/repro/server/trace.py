"""Versioned request traces: seeded generation, record and bit-exact replay.

A trace pins the *workload* the way a saved plan pins a *configuration*: the
exact request sequence (and, for open-loop runs, the exact arrival offsets)
is generated once from a seed and replayed any number of times — across
machines, CI runs and cache states — so cache efficacy numbers (hit rate,
warm/cold latency ratios) compare like with like.

Generation is deliberately non-uniform, because real serving workloads are:

* **Zipf-skewed popularity** — mix entry *r* (1-based rank) is drawn with
  probability proportional to ``1 / r**zipf_s``, so a few signatures
  dominate (the regime caches exist for) while the tail stays present;
* **bursty open-loop arrivals** — inter-arrival gaps are gamma-distributed
  with shape ``1/burst`` and mean ``1/rate_rps``: ``burst=1`` is a Poisson
  process, larger values clump arrivals into bursts separated by lulls
  while preserving the aggregate rate.

Everything derives from one :class:`numpy.random.RandomState` seed; the
serialised form (:func:`save_trace` / :func:`load_trace`) is plain JSON with
a ``format_version`` marker, and loading a stale or foreign file raises
:class:`repro.core.exceptions.CacheError` (the CLI maps it to exit code 3).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.exceptions import CacheError, UsageError

#: Schema version of the serialised trace (bumped on layout changes).
TRACE_FORMAT_VERSION = 1

#: Top-level discriminator distinguishing traces from other JSON artifacts.
TRACE_KIND = "request-trace"


@dataclass(frozen=True)
class RequestTrace:
    """One immutable request stream: ``(app, dim, arrival offset)`` triples.

    ``entries`` is a tuple of ``{"app", "dim", "offset_s"}`` mappings in
    issue order (``offset_s`` is ``None`` for closed-loop traces, else the
    arrival time in seconds from the run's start); ``meta`` records the
    generation parameters (seed, mix, skew, rate, burst) so an artifact can
    name the workload that produced it.  Replaying the same trace issues a
    bit-identical request sequence.
    """

    entries: tuple[dict, ...]
    meta: dict

    def __len__(self) -> int:
        return len(self.entries)

    def schedule(self) -> list[tuple[str, int, float | None]]:
        """The issue plan: ``(app, dim, offset_s)`` per request, in order."""
        return [
            (str(e["app"]), int(e["dim"]), e.get("offset_s"))
            for e in self.entries
        ]

    def distinct_mix(self) -> tuple[tuple[str, int], ...]:
        """The distinct ``(app, dim)`` signatures, in first-seen order.

        This is what the loadgen verification reference solves — a replayed
        trace needs no separate ``--mix`` to know its instance set.
        """
        return tuple(
            dict.fromkeys((str(e["app"]), int(e["dim"])) for e in self.entries)
        )

    def describe(self) -> str:
        """One-line summary for progress output."""
        loop = "open" if self.entries and self.entries[0].get("offset_s") is not None else "closed"
        return (
            f"trace: {len(self.entries)} requests over "
            f"{len(self.distinct_mix())} signatures "
            f"(seed={self.meta.get('seed')}, zipf_s={self.meta.get('zipf_s')}, "
            f"{loop} loop)"
        )


def zipf_weights(count: int, s: float) -> np.ndarray:
    """Normalised Zipf probabilities over ``count`` 1-based ranks."""
    if count < 1:
        raise UsageError(f"zipf weights need at least one entry, got {count}")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-float(s))
    return weights / weights.sum()


def generate_trace(
    mix: tuple[tuple[str, int], ...],
    requests: int,
    seed: int,
    *,
    zipf_s: float = 1.1,
    rate_rps: float | None = None,
    burst: float = 1.0,
) -> RequestTrace:
    """Generate one seeded, Zipf-skewed (optionally bursty) request trace.

    ``mix`` orders the signatures by popularity rank (first entry is the
    hottest); ``zipf_s`` is the skew exponent (0 = uniform); ``rate_rps``
    adds open-loop arrival offsets at that aggregate rate, with ``burst``
    shaping their clumpiness (1 = Poisson; larger = burstier at the same
    mean rate).  The same arguments always produce the same trace.
    """
    if requests < 1:
        raise UsageError(f"trace needs requests >= 1, got {requests}")
    if zipf_s < 0:
        raise UsageError(f"zipf skew must be >= 0, got {zipf_s}")
    if burst <= 0:
        raise UsageError(f"burst must be > 0, got {burst}")
    if rate_rps is not None and rate_rps <= 0:
        raise UsageError(f"rate must be > 0, got {rate_rps}")
    rng = np.random.RandomState(int(seed))
    picks = rng.choice(len(mix), size=int(requests), p=zipf_weights(len(mix), zipf_s))
    offsets: list[float | None]
    if rate_rps is None:
        offsets = [None] * int(requests)
    else:
        # Gamma inter-arrivals with shape 1/burst and mean 1/rate: burst=1
        # recovers the exponential (Poisson) gap, burst>1 raises the gap's
        # coefficient of variation to sqrt(burst) without moving the mean.
        shape = 1.0 / float(burst)
        scale = float(burst) / float(rate_rps)
        gaps = rng.gamma(shape, scale, size=int(requests))
        offsets = [float(t) for t in np.cumsum(gaps)]
    entries = tuple(
        {"app": mix[i][0], "dim": int(mix[i][1]), "offset_s": offsets[n]}
        for n, i in enumerate(picks)
    )
    meta = {
        "seed": int(seed),
        "zipf_s": float(zipf_s),
        "rate_rps": float(rate_rps) if rate_rps is not None else None,
        "burst": float(burst),
        "mix": [f"{app}:{dim}" for app, dim in mix],
        "requests": int(requests),
    }
    return RequestTrace(entries=entries, meta=meta)


def save_trace(trace: RequestTrace, path: str | Path) -> Path:
    """Serialise one trace as versioned JSON (parents created as needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": TRACE_FORMAT_VERSION,
        "kind": TRACE_KIND,
        "meta": dict(trace.meta),
        "entries": list(trace.entries),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_trace(path: str | Path) -> RequestTrace:
    """Load one serialised trace, validating kind and format version.

    Raises :class:`CacheError` (CLI exit code 3) when the file is missing,
    undecodable, not a trace, stale-versioned, or carries malformed entries
    — a replay must never silently run a different workload.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CacheError(f"trace file {path} does not exist") from None
    except (ValueError, OSError) as error:
        raise CacheError(f"trace file {path} is not readable JSON: {error}") from None
    if not isinstance(payload, dict):
        raise CacheError(f"{path} is not a request trace (top level is not an object)")
    if payload.get("kind") != TRACE_KIND:
        raise CacheError(
            f"{path} is not a request trace (kind={payload.get('kind')!r}, "
            f"expected {TRACE_KIND!r})"
        )
    version = payload.get("format_version")
    if version != TRACE_FORMAT_VERSION:
        raise CacheError(
            f"trace {path} has unsupported format version {version!r} "
            f"(this build expects {TRACE_FORMAT_VERSION}); regenerate it with "
            "'repro-tune loadgen --trace-out'"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list) or not entries:
        raise CacheError(f"trace {path} carries no request entries")
    for n, entry in enumerate(entries):
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("app"), str)
            or not isinstance(entry.get("dim"), int)
        ):
            raise CacheError(
                f"trace {path} entry {n} is malformed: {entry!r} "
                "(expected {'app': str, 'dim': int, 'offset_s': float|null})"
            )
    return RequestTrace(
        entries=tuple(dict(e) for e in entries),
        meta=dict(payload.get("meta") or {}),
    )
