"""Setuptools entry point.

The build environment of this reproduction is fully offline and does not ship
the ``wheel`` package, so PEP 517/660 editable installs (which need to build a
wheel) are unavailable.  Keeping the project metadata here and leaving
``pyproject.toml`` without a ``[project]`` table lets ``pip install -e .``
fall back to the classic ``setup.py develop`` code path, which works offline.
"""

from pathlib import Path

from setuptools import find_packages, setup

_readme = Path(__file__).parent / "README.md"

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Autotuning Wavefront Applications for Multicore "
        "Multi-GPU Hybrid Architectures' (Mohanty & Cole, PMAM 2014)"
    ),
    long_description=_readme.read_text(encoding="utf-8") if _readme.exists() else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.23", "scipy>=1.9"],
    extras_require={
        "dev": ["pytest>=7.0", "pytest-benchmark>=4.0", "hypothesis>=6.0"],
    },
    entry_points={"console_scripts": ["repro-tune = repro.cli:main"]},
)
