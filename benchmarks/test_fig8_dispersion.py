"""Figure 8 — dispersion (violin statistics) of the configuration space.

The paper shows violins for dim=700 and dim=2700 on the i7-2600K; the reduced
bench space uses its nearest sampled problem sizes.  Checks the two
observations: small/fine instances cluster around the median with the best
point far below it, while large/coarse instances have a "flat base" (many
configurations near the optimum) — and picking the worst configuration is
costly in every case.
"""

import numpy as np
import pytest

from repro.analysis.dispersion import dispersion_stats
from repro.utils.tables import format_table

from benchmarks._common import write_result


def _nearest(values, target):
    values = sorted(set(values))
    return min(values, key=lambda v: abs(v - target))


@pytest.mark.parametrize("dsize", [1, 5])
def test_fig8_violin_statistics(benchmark, sweeps, space, dsize):
    results = sweeps["i7-2600K"]
    small_dim = _nearest(space.dims, 700)
    large_dim = _nearest(space.dims, 2700)
    instances = [
        p
        for p in results.instances()
        if p.dsize == dsize and p.dim in (small_dim, large_dim)
    ]

    def build():
        return [dispersion_stats(results, p) for p in instances]

    stats = benchmark(build)
    table = format_table(
        ["dim", "tsize", "dsize", "configs", "min", "q1", "median", "q3", "max"],
        [s.as_row() for s in stats],
        title=f"Figure 8 — i7-2600K configuration dispersion, dsize={dsize} (seconds)",
        float_fmt=".3f",
    )
    write_result(f"fig8_dispersion_dsize{dsize}.txt", table)

    assert stats
    for s in stats:
        assert s.minimum <= s.median <= s.maximum
    # Picking badly is costly: the worst configuration of the coarse-grained
    # large instances is several times slower than the best one.
    coarse = [s for s in stats if s.dim == large_dim and s.tsize >= 2000]
    assert any(s.maximum > 2.0 * s.minimum for s in coarse)


def test_fig8_relative_spread_shrinks_for_large_coarse_instances(benchmark, sweeps, space):
    """Figure 7/8: the ber-to-average gap narrows for the big dsize=5 groups."""
    results = sweeps["i7-2600K"]
    small_dim = _nearest(space.dims, 700)
    large_dim = _nearest(space.dims, 2700)
    coarse_tsize = max(space.tsizes)

    def gaps():
        out = {}
        for dim in (small_dim, large_dim):
            candidates = [
                p for p in results.instances() if p.dim == dim and p.dsize == 5 and p.tsize == coarse_tsize
            ]
            stats = dispersion_stats(results, candidates[0])
            out[dim] = stats.best_to_median_gap
        return out

    gap = benchmark(gaps)
    write_result(
        "fig8_best_to_median_gap.txt",
        "\n".join(f"dim={k}: best-to-median gap = {v:.3f}" for k, v in gap.items()),
    )
    assert gap[large_dim] <= gap[small_dim] + 0.35
