"""Table 4 — the experimental systems.

Regenerates the platform table and measures the cost-model evaluation rate on
each platform (predictions per second is what makes exhaustive search and
training tractable).
"""

import pytest

from repro.core.params import InputParams, TunableParams
from repro.hardware.costmodel import CostModel
from repro.utils.tables import format_table

from benchmarks._common import write_result


def test_table4_system_inventory(benchmark, systems):
    def build_rows():
        rows = []
        for s in systems:
            gpu_names = ", ".join(sorted({g.name for g in s.gpus}))
            rows.append(
                [
                    s.name,
                    f"{s.cpu.freq_mhz:.0f}",
                    s.cpu.cores,
                    f"{s.cpu.mem_gb:g}",
                    f"{len(s.gpus)}x {gpu_names}",
                    f"{s.gpu(0).freq_mhz:.0f}",
                    s.gpu(0).compute_units,
                    f"{s.gpu(0).mem_gb:g}",
                ]
            )
        return rows

    rows = benchmark(build_rows)
    text = format_table(
        ["system", "CPU MHz", "cores(HT)", "mem GB", "GPUs", "GPU MHz", "CU", "GPU GB"],
        rows,
        title="Table 4 — experimental systems",
    )
    write_result("table4_platforms.txt", text)
    assert len(rows) == 3


@pytest.mark.parametrize("system_index", [0, 1, 2], ids=["i3-540", "i7-2600K", "i7-3820"])
def test_table4_costmodel_throughput(benchmark, systems, system_index):
    """Predictions/second of the analytic model on each platform description."""
    system = systems[system_index]
    model = CostModel(system)
    params = InputParams(dim=1900, tsize=750, dsize=1)
    halo = 0 if system.max_usable_gpus >= 2 else -1
    config = TunableParams.from_encoding(8, 900, halo, 1)

    rtime = benchmark(model.predict, params, config)
    assert rtime > 0
