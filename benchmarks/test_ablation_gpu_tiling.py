"""Ablation — GPU tiling (Section 4.1.1).

The paper concludes that GPU tiling (gpu-tile > 1) "was not beneficial in our
search space": it only beat the untiled GPU when communication dominated
(tsize < 50), but in exactly those cases the CPU-only implementation
dominated anyway.  This bench reproduces both halves of that argument.
"""

import numpy as np
import pytest

from repro.core.params import InputParams, TunableParams
from repro.hardware.costmodel import CostModel
from repro.utils.tables import format_table

from benchmarks._common import write_result


@pytest.mark.parametrize("system_name", ["i3-540", "i7-2600K", "i7-3820"])
def test_gpu_tiling_never_wins_overall(benchmark, sweeps, system_name):
    results = sweeps[system_name]

    def best_tiles():
        return [results.best(p).tunables.gpu_tile for p in results.instances()]

    tiles = benchmark(best_tiles)
    fraction_tiled = float(np.mean([t > 1 for t in tiles]))
    write_result(
        f"ablation_gpu_tiling_{system_name}.txt",
        f"fraction of instances whose best configuration uses gpu-tile > 1: {fraction_tiled:.3f}",
    )
    # GPU tiling (almost) never appears at the optimum, as in the paper.
    assert fraction_tiled <= 0.1


def test_gpu_tiling_only_helps_when_cpu_wins_anyway(benchmark, systems):
    """Where tiling beats untiled GPU (tiny tsize), the CPU beats both."""
    system = systems[1]
    model = CostModel(system)

    def analyse():
        rows = []
        for tsize in (10, 30, 100, 1000, 8000):
            params = InputParams(dim=1900, tsize=tsize, dsize=1)
            untiled = model.predict(params, TunableParams.from_encoding(8, 1899, -1, 1))
            tiled = model.predict(params, TunableParams.from_encoding(8, 1899, -1, 8))
            cpu = model.baseline_cpu_parallel(params)
            rows.append([tsize, untiled, tiled, cpu, tiled < untiled, cpu < min(tiled, untiled)])
        return rows

    rows = benchmark(analyse)
    write_result(
        "ablation_gpu_tiling_tradeoff.txt",
        format_table(
            ["tsize", "GPU untiled (s)", "GPU tiled (s)", "CPU parallel (s)", "tiled wins", "CPU wins"],
            rows,
            title="GPU tiling trade-off, i7-2600K, dim=1900, dsize=1",
            float_fmt=".3f",
        ),
    )
    for tsize, untiled, tiled, cpu, tiled_wins, cpu_wins in rows:
        if tiled_wins:
            # Tiling only wins where the CPU-only scheme is the true optimum.
            assert cpu_wins
        if tsize >= 1000:
            # Once computation dominates, tiling is counter-productive.
            assert not tiled_wins
