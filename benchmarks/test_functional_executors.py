"""Micro-benchmarks of the functional executors.

Not a paper figure: these measure the reproduction's own machinery (serial
sweep, tiled CPU schedule, simulated GPU band with halo exchange) on a small
grid so regressions in the executors' overheads are visible over time.
"""

import pytest

from repro.apps.synthetic import SyntheticApp
from repro.core.params import TunableParams
from repro.runtime.cpu_parallel import CPUParallelExecutor
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.serial import SerialExecutor


@pytest.fixture(scope="module")
def small_problem():
    return SyntheticApp(dim=48, tsize=100, dsize=1).problem()


def test_serial_functional_sweep(benchmark, systems, small_problem):
    executor = SerialExecutor(systems[1])
    result = benchmark(executor.execute, small_problem)
    assert result.grid is not None


def test_cpu_parallel_functional_sweep(benchmark, systems, small_problem):
    executor = CPUParallelExecutor(systems[1])
    result = benchmark(executor.execute, small_problem, TunableParams(cpu_tile=8))
    assert result.grid is not None


def test_hybrid_dual_gpu_functional_sweep(benchmark, systems, small_problem):
    executor = HybridExecutor(systems[1])
    config = TunableParams.from_encoding(4, 20, 3, 1)
    result = benchmark(executor.execute, small_problem, config)
    assert result.grid is not None


def test_simulate_mode_prediction(benchmark, systems, small_problem):
    executor = HybridExecutor(systems[1])
    config = TunableParams.from_encoding(4, 20, 3, 1)
    result = benchmark(executor.execute, small_problem, config, "simulate")
    assert result.grid is None and result.rtime > 0
