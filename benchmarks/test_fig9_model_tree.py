"""Figure 9 — the learned M5 pruned model tree for halo prediction.

Regenerates (a) the text dump of the halo model tree learned for the
i7-2600K — the artefact Figure 9 shows a fragment of — and (b) verifies the
structural claim the paper draws from it: halo depends on band and cpu-tile
in addition to the instance features, while cpu-tile is predicted from the
instance features alone.
"""

from repro.autotuner.models import BAND_FEATURES, HALO_FEATURES
from repro.autotuner.training import INPUT_FEATURES

from benchmarks._common import write_result


def test_fig9_halo_model_tree_dump(benchmark, tuners):
    tuner = tuners["i7-2600K"]

    text = benchmark(tuner.model.model_tree_text, "halo")
    header = (
        "Figure 9 — M5 pruned model tree predicting halo for the i7-2600K\n"
        f"features: {list(HALO_FEATURES)}\n"
    )
    write_result("fig9_halo_model_tree_i7-2600K.txt", header + text)

    assert "LM" in text
    # At least one linear model must actually use band or cpu_tile, mirroring
    # the paper's LM1 (halo = f(tsize, dsize, cpu-tile, band)).
    assert ("band" in text) or ("cpu_tile" in text)


def test_fig9_feature_dependencies_match_paper(benchmark, tuners):
    def feature_sets():
        return {
            "halo": list(HALO_FEATURES),
            "band": list(BAND_FEATURES),
            "cpu_tile": list(INPUT_FEATURES),
        }

    feats = benchmark(feature_sets)
    write_result(
        "fig9_feature_dependencies.txt",
        "\n".join(f"{k}: {v}" for k, v in feats.items()),
    )
    # halo sees band and cpu-tile; cpu-tile sees only the input parameters.
    assert "band" in feats["halo"] and "cpu_tile" in feats["halo"]
    assert feats["cpu_tile"] == ["dim", "tsize", "dsize"]
    # band additionally sees the gpu-tile (GPU-use) decision.
    assert "gpu_tile" in feats["band"]


def test_fig9_band_tree_dump(benchmark, tuners):
    tuner = tuners["i7-3820"]
    text = benchmark(tuner.model.model_tree_text, "band")
    write_result("fig9_band_model_tree_i7-3820.txt", text)
    assert "LM" in text
