"""Figure 10 — autotuned vs exhaustive speedup over the sequential baseline.

For the coarse-grained Nash application on each system, compares the average
speedup over serial obtained by (a) the exhaustive-search optimum and (b) the
learned autotuner, and checks the headline claim that the autotuner achieves
the large majority (paper: ~98%, within 5%) of the exhaustive performance —
including the "super-optimal" possibility on the single-GPU i3-540.
"""

import numpy as np
import pytest

from repro.analysis.speedup import autotune_speedup_summary
from repro.apps.nash import NASH_DSIZE, NASH_TSIZE
from repro.core.params import InputParams
from repro.utils.tables import format_table

from benchmarks._common import write_result


def nash_instances(space):
    """Nash-like instances across the problem sizes of the bench space."""
    return [InputParams(dim=dim, tsize=NASH_TSIZE, dsize=NASH_DSIZE) for dim in space.dims]


@pytest.mark.parametrize("system_name", ["i3-540", "i7-2600K", "i7-3820"])
def test_fig10_autotuned_vs_exhaustive_nash(benchmark, tuners, space, system_name):
    tuner = tuners[system_name]
    instances = nash_instances(space)

    summary = benchmark(autotune_speedup_summary, tuner, instances)

    write_result(
        f"fig10_nash_{system_name}.txt",
        format_table(
            ["system", "instances", "exhaustive speedup", "autotuned speedup", "achieved fraction"],
            [summary.as_row()],
            title=f"Figure 10 — Nash application, {system_name}",
            float_fmt=".3f",
        ),
    )
    assert summary.exhaustive_speedup > 1.0
    assert summary.autotuned_speedup > 1.0
    # The tuner achieves the bulk of the exhaustive performance (paper: ~98%).
    assert summary.achieved_fraction > 0.75
    # Super-optimal (>1) is possible because the regression models may choose
    # parameter values between the finite search grid's points.
    assert summary.achieved_fraction < 1.5


def test_fig10_cross_system_average(benchmark, tuners, space):
    def fractions():
        out = {}
        for name, tuner in tuners.items():
            summary = autotune_speedup_summary(tuner, nash_instances(space))
            out[name] = summary.achieved_fraction
        return out

    fracs = benchmark(fractions)
    mean_fraction = float(np.mean(list(fracs.values())))
    write_result(
        "fig10_summary.txt",
        "\n".join([f"{k}: achieved fraction {v:.3f}" for k, v in fracs.items()])
        + f"\nmean across systems: {mean_fraction:.3f}  (paper reports ~0.98)",
    )
    assert mean_fraction > 0.8
