"""Ablation — halo size vs swap count (Section 2.1).

Reproduces the dual-GPU halo trade-off directly from the cost model and from
the functional band executor's operation counts: a larger halo reduces the
number of halo swaps (less communication) at the price of redundant
computation, so the optimal halo shrinks as task granularity grows.
"""

import numpy as np
import pytest

from repro.apps.synthetic import SyntheticApp
from repro.core.params import InputParams, TunableParams
from repro.core.plan import ThreePhasePlan
from repro.device.context import DeviceContext
from repro.hardware.costmodel import CostModel
from repro.runtime.band import BandRunner
from repro.runtime.serial import SerialExecutor
from repro.utils.tables import format_table

from benchmarks._common import write_result

HALOS = (0, 2, 8, 30, 120)


def test_optimal_halo_shrinks_with_granularity(benchmark, systems):
    system = systems[2]  # i7-3820, dual Tesla
    model = CostModel(system)

    def best_halo_by_tsize():
        out = []
        for tsize in (50, 500, 4000, 12000):
            params = InputParams(dim=1900, tsize=tsize, dsize=1)
            rtimes = {
                halo: model.predict(params, TunableParams.from_encoding(8, 1200, halo, 1))
                for halo in HALOS
            }
            best = min(rtimes, key=rtimes.get)
            out.append([tsize, best] + [rtimes[h] for h in HALOS])
        return out

    rows = benchmark(best_halo_by_tsize)
    write_result(
        "ablation_halo_tradeoff.txt",
        format_table(
            ["tsize", "best halo"] + [f"rtime halo={h}" for h in HALOS],
            rows,
            title="Halo ablation — i7-3820, dim=1900, band=1200, dual GPU",
            float_fmt=".3f",
        ),
    )
    best_halos = [r[1] for r in rows]
    # The optimal halo is (weakly) non-increasing as granularity grows.
    assert all(a >= b for a, b in zip(best_halos, best_halos[1:]))
    assert best_halos[0] > best_halos[-1] or best_halos[0] > 0


def test_functional_swap_counts_match_halo(benchmark, systems):
    """The functional band executor's swap counts fall as the halo grows."""
    system = systems[2]
    problem = SyntheticApp(dim=40, tsize=50, dsize=1).problem()
    serial_grid = SerialExecutor(system).execute(problem).grid

    def run_with_halo(halo: int) -> int:
        tunables = TunableParams.from_encoding(4, 12, halo, 1).clipped(problem.dim)
        plan = ThreePhasePlan(problem.input_params(), tunables)
        grid = problem.make_grid()
        for d in range(0, plan.gpu.lo):
            grid.set_diagonal(d, serial_grid.get_diagonal(d))
        with DeviceContext(system, 2) as ctx:
            stats = BandRunner(problem, grid, plan, tunables, ctx).run()
        return stats["halo_swaps"]

    def sweep():
        return {halo: run_with_halo(halo) for halo in (0, 1, 3, 6)}

    swaps = benchmark(sweep)
    write_result(
        "ablation_halo_swap_counts.txt",
        "\n".join(f"halo={h}: swaps={s}" for h, s in swaps.items()),
    )
    values = list(swaps.values())
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert swaps[0] > swaps[6]
