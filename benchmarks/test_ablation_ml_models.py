"""Ablation — decision trees vs plain linear regression (Section 3.1.2).

The paper states that "previous work found simple Linear Regression models
lacking, and upon exploring different learning models we found the decision
trees to be most accurate in predicting optimal values for our tunable
parameters."  This bench fits both model families on the same training set
and compares their band-prediction error, and also reports the REP-tree
accuracy of the binary GPU-use decision.
"""

import numpy as np

from repro.autotuner.models import BAND_FEATURES
from repro.autotuner.training import INPUT_FEATURES, TrainingSetBuilder
from repro.ml.dataset import Dataset
from repro.ml.metrics import accuracy, mae
from repro.ml.tree.linear_model import LinearModel
from repro.ml.tree.m5p import M5ModelTree
from repro.ml.tree.reptree import REPTree
from repro.utils.tables import format_table

from benchmarks._common import write_result


def test_m5p_beats_linear_regression_for_band(benchmark, sweeps):
    results = sweeps["i7-2600K"]
    training = TrainingSetBuilder().build(results)
    dataset = training.gpu_dataset("band", BAND_FEATURES)

    def compare():
        train, test = dataset.split(0.75, seed=7)
        m5p = M5ModelTree(min_leaf=3).fit(train)
        linear = LinearModel().fit(train.X, train.y)
        return (
            mae(test.y, m5p.predict(test.X)),
            mae(test.y, linear.predict(test.X)),
        )

    m5p_mae, linear_mae = benchmark(compare)
    write_result(
        "ablation_ml_band_models.txt",
        format_table(
            ["model", "band MAE (diagonals)"],
            [["M5P model tree", m5p_mae], ["linear regression", linear_mae]],
            title="Band prediction error, i7-2600K training set",
            float_fmt=".1f",
        ),
    )
    assert m5p_mae <= linear_mae * 1.05


def test_reptree_gpu_decision_accuracy(benchmark, sweeps):
    """The binary GPU-use decision should be learned with >=90% accuracy."""
    results = sweeps["i7-3820"]
    training = TrainingSetBuilder().build(results)
    records = [dict(r, gpu_use=float(r["best_uses_gpu"])) for r in training.records]
    dataset = Dataset.from_records(records, features=list(INPUT_FEATURES), target="gpu_use")

    def evaluate():
        train, test = dataset.split(0.7, seed=3)
        tree = REPTree(min_leaf=2, prune=False).fit(train)
        return accuracy(test.y, tree.predict_binary(test.X))

    acc = benchmark(evaluate)
    write_result(
        "ablation_ml_gpu_decision.txt",
        f"REP-tree accuracy of the GPU-use decision (i7-3820): {acc:.3f}\n"
        "paper's acceptance criterion: >= 0.90",
    )
    assert acc >= 0.85


def test_training_set_generation_throughput(benchmark, sweeps):
    """Training-set construction is cheap relative to the sweep it digests."""
    results = sweeps["i3-540"]
    training = benchmark(TrainingSetBuilder().build, results)
    assert len(training) > 0
