"""Shared fixtures for the benchmark harness.

Every figure/table of the paper's evaluation has one bench module.  The
expensive ingredients — the exhaustive sweep of the synthetic application and
the trained tuners, one per Table 4 system — are computed once per benchmark
session here and shared.

By default the sweeps use the *reduced* parameter space (same structure as
Table 3, coarser grids) so the whole harness finishes in a few minutes.  Set
``REPRO_BENCH_FULL=1`` to sweep the full Table 3 space instead.

Each bench writes the regenerated table/series to ``benchmarks/results/`` so
the numbers are inspectable after a ``--benchmark-only`` run (whose stdout
only shows timing statistics).
"""

from __future__ import annotations

import pytest

from repro.autotuner.exhaustive import ExhaustiveSearch
from repro.autotuner.tuner import AutoTuner
from repro.hardware import platforms

from benchmarks._common import bench_space


@pytest.fixture(scope="session")
def space():
    """The sweep's parameter space."""
    return bench_space()


@pytest.fixture(scope="session")
def systems():
    """The three Table 4 systems."""
    return list(platforms.ALL_SYSTEMS)


@pytest.fixture(scope="session")
def sweeps(space, systems):
    """Exhaustive-search results per system (the Figure 5-8 substrate)."""
    return {
        system.name: ExhaustiveSearch(system, space).sweep() for system in systems
    }


@pytest.fixture(scope="session")
def tuners(space, systems):
    """Trained autotuners per system (the Figure 9-11 substrate)."""
    return {system.name: AutoTuner(system, space=space).train() for system in systems}
