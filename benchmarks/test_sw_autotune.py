"""Section 4.2 — Smith-Waterman (biological sequence comparison) autotuning.

The paper: "For the fine grained Smith-Waterman string compare application
autotuning was trivial as the band prediction were 100% accurate, i.e. do
everything on the CPU.  Our learning model had predicted band=-1 for all
tsize<100, across our search space of dim<=3100."
"""

import pytest

from repro.apps.sequence import SW_TSIZE
from repro.core.params import InputParams
from repro.utils.tables import format_table

from benchmarks._common import write_result


@pytest.mark.parametrize("system_name", ["i3-540", "i7-2600K", "i7-3820"])
def test_sw_band_prediction_is_cpu_only(benchmark, tuners, space, system_name):
    tuner = tuners[system_name]
    dims = list(space.dims)

    def predictions():
        out = []
        for dim in dims:
            params = InputParams(dim=dim, tsize=SW_TSIZE, dsize=1)
            config = tuner.tune(params)
            out.append([dim, config.band, config.gpu_count, config.cpu_tile])
        return out

    rows = benchmark(predictions)
    write_result(
        f"sw_autotune_{system_name}.txt",
        format_table(
            ["dim", "predicted band", "gpu_count", "cpu_tile"],
            rows,
            title=f"Smith-Waterman predictions, {system_name} (tsize={SW_TSIZE})",
        ),
    )
    # band = -1 (no GPU) for every problem size, as in the paper.
    assert all(row[1] == -1 and row[2] == 0 for row in rows)


def test_sw_fine_grain_threshold(benchmark, tuners):
    """band=-1 should hold for every tsize below 100 (the paper's statement)."""
    tuner = tuners["i7-2600K"]

    def all_cpu_below_100():
        for tsize in (0.5, 1, 5, 10, 50, 99):
            for dim in (500, 1100, 1900, 2700, 3100):
                config = tuner.tune(InputParams(dim=dim, tsize=tsize, dsize=1))
                if config.uses_gpu:
                    return False, tsize, dim
        return True, None, None

    ok, tsize, dim = benchmark(all_cpu_below_100)
    write_result(
        "sw_fine_grain_threshold.txt",
        "band=-1 for all tsize<100, dim<=3100: " + ("confirmed" if ok else f"violated at tsize={tsize}, dim={dim}"),
    )
    assert ok
