"""Figure 6 — speedup of the best exhaustive points over the simple schemes.

For each system the bench reports the average speedup of the heatmap (best)
points over (a) serial, (b) all-core CPU parallel and (c) GPU-only execution,
and checks the paper's observations: the tuned points beat every simple
scheme on average, and on the fast-CPU i7 systems the GPU-only scheme is on
average worse than the CPU-only scheme.
"""

from repro.analysis.speedup import scheme_speedup_summary
from repro.autotuner.baselines import simple_scheme_times
from repro.hardware import platforms
from repro.utils.tables import format_table

from benchmarks._common import write_result


def test_fig6_speedup_over_simple_schemes(benchmark, sweeps, systems):
    def build():
        return {s.name: scheme_speedup_summary(s, sweeps[s.name]) for s in systems}

    summaries = benchmark(build)

    rows = [s.as_row() for s in summaries.values()]
    text = format_table(
        ["system", "instances", "vs serial", "vs CPU-parallel", "vs GPU-only", "max vs serial"],
        rows,
        title="Figure 6 — average speedup of best exhaustive points over simple schemes",
        float_fmt=".2f",
    )
    write_result("fig6_baseline_speedup.txt", text)

    for summary in summaries.values():
        assert summary.vs_serial > 1.0
        assert summary.vs_cpu_parallel >= 1.0
        assert summary.vs_gpu_only >= 1.0
    # Headline claim neighbourhood: max speedup of order 10-25x over serial.
    assert max(s.max_vs_serial for s in summaries.values()) > 8.0


def test_fig6_gpu_only_loses_to_cpu_only_on_i7_average(benchmark, sweeps):
    """Paper: "in case of the i7 systems, on average, doing everything on the
    GPU is worse than doing everything on the CPU"."""

    def average_ratio(system):
        results = sweeps[system.name]
        ratios = []
        for params in results.instances():
            schemes = simple_scheme_times(system, params)
            ratios.append(schemes.gpu_only / schemes.cpu_parallel)
        return sum(ratios) / len(ratios)

    ratio_i7 = benchmark(average_ratio, platforms.I7_3820)
    write_result(
        "fig6_gpu_only_vs_cpu_only.txt",
        f"i7-3820 mean (GPU-only rtime) / (CPU-parallel rtime) = {ratio_i7:.2f}\n"
        "values > 1 mean GPU-only is worse on average, as in the paper",
    )
    assert ratio_i7 > 1.0
