"""Figure 11 — per-group runtime: exhaustive optimum (bars) vs autotuned (line).

Regenerates the runtime series for the Nash application over dim-tsize groups
on every system and checks the paper's reading of the figure: the autotuned
runtime tracks the exhaustive optimum closely, sitting slightly below it at
some points on the i3-540 (super-optimal) and slightly above it on the i7
systems (prediction is harder with more tunables).
"""

import numpy as np
import pytest

from repro.apps.nash import NASH_DSIZE
from repro.core.params import InputParams
from repro.utils.tables import format_table

from benchmarks._common import write_result

#: Task granularities used for the Figure 11 groups (a spread around the
#: Nash application's tsize=750 point, as the figure groups tsize 10..12000).
GROUP_TSIZES = (100, 750, 2000, 8000)


def build_series(tuner, space):
    rows = []
    for dim in space.dims:
        for tsize in GROUP_TSIZES:
            params = InputParams(dim=dim, tsize=tsize, dsize=NASH_DSIZE)
            best = min(
                (r.rtime for r in tuner.search.sweep_instance(params) if not r.exceeded_threshold),
                default=np.nan,
            )
            tuned = tuner.predicted_rtime(params)
            rows.append([dim, tsize, best, tuned, tuned / best if best == best else np.nan])
    return rows


@pytest.mark.parametrize("system_name", ["i3-540", "i7-2600K", "i7-3820"])
def test_fig11_runtime_series(benchmark, tuners, space, system_name):
    tuner = tuners[system_name]
    rows = benchmark(build_series, tuner, space)

    write_result(
        f"fig11_nash_runtime_{system_name}.txt",
        format_table(
            ["dim", "tsize", "exhaustive best (s)", "autotuned (s)", "autotuned / best"],
            rows,
            title=f"Figure 11 — {system_name}, Nash-style application",
            float_fmt=".3f",
        ),
    )

    ratios = np.array([r[4] for r in rows if np.isfinite(r[4])])
    assert ratios.size > 0
    # The autotuned runtime tracks the optimum: median within ~35%.
    assert np.median(ratios) < 1.35
    # And it never collapses to something absurd.
    assert np.max(ratios) < 20.0
