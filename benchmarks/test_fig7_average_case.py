"""Figure 7 — best exhaustive runtime vs average-case behaviour.

Regenerates, for every dim-tsize group and both element sizes, the best
exhaustive runtime (ber), the average runtime over all below-threshold
configurations and its standard deviation, per system.
"""

import math

import pytest

from repro.analysis.aggregate import average_case_table
from repro.utils.tables import format_table

from benchmarks._common import write_result


@pytest.mark.parametrize("system_name", ["i3-540", "i7-2600K", "i7-3820"])
@pytest.mark.parametrize("dsize", [1, 5])
def test_fig7_best_vs_average(benchmark, sweeps, system_name, dsize):
    results = sweeps[system_name]
    rows = benchmark(average_case_table, results, dsize)

    table = format_table(
        ["dim", "tsize", "dsize", "Best (ber)", "AVG", "S.D.", "AVG/Best", "configs", "excluded"],
        [r.as_row() for r in rows],
        title=f"Figure 7 — {system_name}, dsize={dsize} (seconds)",
        float_fmt=".3f",
    )
    write_result(f"fig7_average_case_{system_name}_dsize{dsize}.txt", table)

    # The paper's qualitative statements:
    # (1) the best point is meaningfully faster than the average configuration
    #     (roughly 1.5-2x for 16-byte elements on mid-size problems);
    finite = [r for r in rows if not math.isnan(r.avg_rtime)]
    assert finite
    mean_gap = sum(r.avg_over_best for r in finite) / len(finite)
    assert mean_gap > 1.2
    # (2) some of the largest/coarsest configurations exceed the 90 s
    #     threshold and are excluded from the averages.
    if dsize == 5 and system_name == "i3-540":
        assert any(r.n_excluded > 0 for r in rows)


def test_fig7_runtime_scale_matches_paper_order(benchmark, sweeps):
    """The y-axis range of Figure 7 is tens of seconds for the largest groups."""

    def largest_group_best():
        results = sweeps["i3-540"]
        rows = average_case_table(results, dsize=1)
        biggest = max(rows, key=lambda r: (r.dim, r.tsize))
        return biggest.best_rtime

    ber = benchmark(largest_group_best)
    write_result(
        "fig7_scale_check.txt",
        f"i3-540, largest dim/tsize group, best exhaustive runtime = {ber:.1f} s\n"
        "paper's Figure 7 shows tens of seconds for the same corner",
    )
    assert 5.0 < ber < 90.0
