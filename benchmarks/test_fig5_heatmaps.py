"""Figure 5 — heatmaps of the best band and halo values.

For each system and each dsize slice (16-byte and 48-byte elements) the bench
regenerates the (dim x tsize) grid of the band / halo value at the best
exhaustive-search point, writes it to ``benchmarks/results/`` and checks the
paper's qualitative observations:

* the GPU becomes favourable (band > 0) only above a task-granularity
  threshold,
* that threshold is lower on the slow-CPU i3-540 than on the i7 systems,
* halo values shrink as task granularity grows (multi-GPU systems).
"""

import numpy as np
import pytest

from repro.analysis.heatmap import build_heatmap
from repro.analysis.report import render_heatmap

from benchmarks._common import write_result


@pytest.mark.parametrize("system_name", ["i3-540", "i7-2600K", "i7-3820"])
@pytest.mark.parametrize("dsize", [1, 5])
def test_fig5_band_heatmap(benchmark, sweeps, system_name, dsize):
    results = sweeps[system_name]
    heatmap = benchmark(build_heatmap, results, dsize, "band")
    write_result(f"fig5_band_{system_name}_dsize{dsize}.txt", render_heatmap(heatmap))

    # GPU offload must appear somewhere, and never for the finest granularity.
    assert np.any(heatmap.values > 0)
    finest_col = heatmap.values[:, 0]
    assert np.all(finest_col <= 0)
    # For the largest problem size, band should be monotone-ish: once the GPU
    # is used at some tsize, it stays used for larger tsize.
    row = heatmap.values[-1, :]
    used = row > 0
    if used.any():
        first = int(np.argmax(used))
        assert used[first:].all()


@pytest.mark.parametrize("system_name", ["i7-2600K", "i7-3820"])
@pytest.mark.parametrize("dsize", [1, 5])
def test_fig5_halo_heatmap(benchmark, sweeps, system_name, dsize):
    results = sweeps[system_name]
    heatmap = benchmark(build_heatmap, results, dsize, "halo")
    write_result(f"fig5_halo_{system_name}_dsize{dsize}.txt", render_heatmap(heatmap))
    assert np.any(heatmap.values >= 0)  # dual-GPU configurations do win somewhere


def test_fig5_i3_threshold_lower_than_i7(benchmark, sweeps):
    """Paper: GPU use becomes feasible at lower tsize on the i3 than on the i7s."""

    def thresholds():
        out = {}
        for name in ("i3-540", "i7-2600K", "i7-3820"):
            hm = build_heatmap(sweeps[name], dsize=1, quantity="band")
            dim = hm.dims[-2] if len(hm.dims) > 1 else hm.dims[-1]
            out[name] = hm.gpu_threshold_tsize(dim) or float("inf")
        return out

    ts = benchmark(thresholds)
    write_result(
        "fig5_gpu_thresholds.txt",
        "GPU-offload tsize thresholds (dsize=1, second-largest dim)\n"
        + "\n".join(f"{k}: {v}" for k, v in ts.items()),
    )
    assert ts["i3-540"] <= ts["i7-2600K"]
    assert ts["i3-540"] <= ts["i7-3820"]


def test_fig5_halo_shrinks_with_granularity(benchmark, sweeps):
    """Paper: halo sizes are higher when tsize values are lower."""

    def halo_by_tsize():
        hm = build_heatmap(sweeps["i7-3820"], dsize=1, quantity="halo")
        row = hm.values[-1, :]
        used = row >= 0
        return row, used

    row, used = benchmark(halo_by_tsize)
    if used.sum() >= 2:
        first_used = int(np.argmax(used))
        last_used = len(row) - 1 - int(np.argmax(used[::-1]))
        assert row[first_used] >= row[last_used]
