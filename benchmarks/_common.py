"""Shared helpers for the benchmark harness (see conftest.py for fixtures)."""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.parameter_space import ParameterSpace

#: Directory where the regenerated figures/tables are written.
RESULTS_DIR = Path(__file__).parent / "results"


def bench_space() -> ParameterSpace:
    """The parameter space used by the harness (reduced unless overridden).

    Set ``REPRO_BENCH_FULL=1`` to sweep the full Table 3 space.
    """
    if os.environ.get("REPRO_BENCH_FULL", "0") == "1":
        return ParameterSpace.paper()
    return ParameterSpace.reduced()


def write_result(name: str, text: str) -> Path:
    """Persist one regenerated artefact under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path
