"""Table 3 — the tuning parameter space.

Regenerates the parameter ranges and measures how quickly the configuration
generator enumerates one instance's search space (the quantity that bounds
the exhaustive-search cost).
"""

from repro.autotuner.search_space import SearchSpace
from repro.core.params import InputParams
from repro.utils.tables import format_table

from benchmarks._common import write_result


def test_table3_parameter_ranges(benchmark, space, systems):
    system = systems[1]  # i7-2600K, the richest system (dual GPU usable)
    search = SearchSpace(space, system)
    instance = InputParams(dim=space.dims[-1], tsize=space.tsizes[-1], dsize=space.dsizes[-1])

    configs = benchmark(lambda: search.configurations(instance))

    info = search.describe()
    rows = [[k, str(v)] for k, v in sorted(info.items())]
    rows.append(["configurations for largest instance", str(len(configs))])
    text = format_table(["parameter", "range / value"], rows, title="Table 3 — parameter space")
    write_result("table3_search_space.txt", text)
    assert len(configs) > 10


def test_table3_per_system_space_size(benchmark, space, systems):
    def sizes():
        return {s.name: SearchSpace(space, s).size_estimate() for s in systems}

    estimate = benchmark(sizes)
    rows = [[name, value] for name, value in estimate.items()]
    write_result(
        "table3_space_sizes.txt",
        format_table(["system", "points in sweep"], rows, title="Sweep sizes per system"),
    )
    # The single-GPU i3 explores a smaller space than the dual-GPU systems.
    assert estimate["i3-540"] < estimate["i7-2600K"]
