#!/usr/bin/env python
"""Explore the tuning search space of one platform (paper Figures 5-8).

Runs the exhaustive sweep of the synthetic application on a chosen system,
then prints the band heatmap (when does GPU offload pay off?), the
best-vs-average runtime table and the dispersion statistics of two contrasting
instances — the data behind Figures 5, 7 and 8 of the paper.

Run:  python examples/search_space_study.py [system-name]
      (system-name is one of: i3-540, i7-2600K, i7-3820; default i7-2600K)
"""

from __future__ import annotations

import sys

from repro.analysis.aggregate import average_case_table
from repro.analysis.dispersion import dispersion_stats
from repro.analysis.heatmap import build_heatmap
from repro.analysis.report import render_heatmap, render_table
from repro.autotuner.exhaustive import ExhaustiveSearch
from repro.core.parameter_space import ParameterSpace
from repro.hardware import platforms


def main() -> None:
    system_name = sys.argv[1] if len(sys.argv) > 1 else "i7-2600K"
    system = platforms.get_system(system_name)
    space = ParameterSpace.reduced()

    print(f"Sweeping the synthetic application on {system.name} ...")
    results = ExhaustiveSearch(system, space).sweep()
    print(f"  {len(results)} configuration points, {len(results.instances())} instances\n")

    # Figure 5: when does the GPU pay off?
    for dsize in (1, 5):
        print(render_heatmap(build_heatmap(results, dsize=dsize, quantity="band")))
        print()
    if system.max_usable_gpus >= 2:
        print(render_heatmap(build_heatmap(results, dsize=1, quantity="halo")))
        print()

    # Figure 7: best exhaustive runtime vs the average configuration.
    rows = average_case_table(results, dsize=1)
    print(
        render_table(
            ["dim", "tsize", "dsize", "best", "avg", "sd", "avg/best", "configs", "excluded"],
            [r.as_row() for r in rows],
            title=f"Figure 7 — best vs average runtime on {system.name} (dsize=1, seconds)",
        )
    )
    print()

    # Figure 8: dispersion of two contrasting instances.
    instances = results.instances()
    fine = min(instances, key=lambda p: (p.tsize, p.dim))
    coarse = max(instances, key=lambda p: (p.tsize, p.dim))
    print("Figure 8 — dispersion of the configuration space (seconds):")
    for params in (fine, coarse):
        stats = dispersion_stats(results, params)
        print(
            f"  dim={stats.dim} tsize={stats.tsize} dsize={stats.dsize}: "
            f"min {stats.minimum:.3f}, median {stats.median:.3f}, max {stats.maximum:.3f}, "
            f"best-to-median gap {stats.best_to_median_gap:.1%}, flat base: {stats.flat_base}"
        )


if __name__ == "__main__":
    main()
