#!/usr/bin/env python
"""The coarse-grained Nash-equilibrium evaluation (paper Figures 10 and 11).

Trains one autotuner per Table 4 system, tunes Nash-style instances across a
range of problem sizes, and prints the exhaustive-vs-autotuned comparison the
paper reports: the learned heuristics recover ~98% of the performance an
exhaustive search of the tuning space would find.

Run:  python examples/nash_equilibrium_study.py            (reduced space, ~1 min)
      REPRO_BENCH_FULL=1 python examples/nash_equilibrium_study.py   (full Table 3 space)
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis.speedup import autotune_speedup_summary
from repro.apps.nash import NASH_DSIZE, NASH_TSIZE
from repro.autotuner.tuner import AutoTuner
from repro.core.parameter_space import ParameterSpace
from repro.core.params import InputParams
from repro.hardware import platforms
from repro.utils.tables import format_table


def main() -> None:
    space = (
        ParameterSpace.paper()
        if os.environ.get("REPRO_BENCH_FULL", "0") == "1"
        else ParameterSpace.reduced()
    )
    nash_instances = [
        InputParams(dim=dim, tsize=NASH_TSIZE, dsize=NASH_DSIZE) for dim in space.dims
    ]

    rows = []
    fractions = []
    for system in platforms.ALL_SYSTEMS:
        print(f"Training the autotuner for {system.name} ...")
        tuner = AutoTuner(system, space=space).train()
        summary = autotune_speedup_summary(tuner, nash_instances)
        fractions.append(summary.achieved_fraction)
        rows.append(summary.as_row())

        # Show the actual tuning decisions for the Nash application.
        print(f"  tuned configurations ({system.name}):")
        for params in nash_instances:
            config = tuner.tune(params)
            print(
                f"    dim={params.dim:<5d} -> {config.describe():<55s} "
                f"predicted rtime {tuner.predicted_rtime(params, config):7.2f}s"
            )

    print()
    print(
        format_table(
            ["system", "instances", "exhaustive speedup", "autotuned speedup", "achieved fraction"],
            rows,
            title="Figure 10 — Nash application: autotuned vs exhaustive (speedup over serial)",
            float_fmt=".2f",
        )
    )
    print(
        f"\nMean achieved fraction across systems: {np.mean(fractions):.1%} "
        "(the paper reports ~98%)"
    )


if __name__ == "__main__":
    main()
