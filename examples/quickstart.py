#!/usr/bin/env python
"""Quickstart: tune and run a wavefront application in a few lines.

This example mirrors the paper's deployment scenario end to end:

1. pick a target platform (one of the paper's Table 4 systems),
2. train the autotuner on the synthetic application ("in the factory"),
3. hand it a previously unseen wavefront problem,
4. execute the tuned configuration — functionally on a small grid (the
   results are checked against the serial sweep) and in simulate mode at the
   paper's problem scale.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.apps.nash import NashEquilibriumApp
from repro.apps.synthetic import SyntheticApp
from repro.autotuner.tuner import AutoTuner
from repro.hardware import platforms
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.serial import SerialExecutor
from repro.utils.logging import configure_logging, get_logger

log = get_logger("examples.quickstart")


def main() -> None:
    configure_logging()
    system = platforms.I7_2600K
    print(system.describe())

    # ------------------------------------------------------------------
    # 1. Train the autotuner on the synthetic application (reduced space so
    #    the example stays interactive; pass ParameterSpace.paper() for the
    #    full Table 3 sweep).
    # ------------------------------------------------------------------
    print("\nTraining the autotuner on the synthetic application ...")
    tuner = AutoTuner.quick(system)
    print(
        f"  training sweep: {len(tuner.results)} configurations, "
        f"{len(tuner.training)} training records"
    )
    print(
        f"  held-out efficiency: mean {tuner.validation.mean_efficiency:.2%}, "
        f"min {tuner.validation.min_efficiency:.2%}"
    )

    # ------------------------------------------------------------------
    # 2. Deploy on an unseen application: a small Nash-equilibrium problem.
    # ------------------------------------------------------------------
    app = NashEquilibriumApp(dim=64)
    problem = app.problem()
    config = tuner.tune(problem)
    print(f"\nNash equilibrium ({problem.dim}x{problem.dim}): tuned config = {config.describe()}")

    executor = HybridExecutor(system)
    tuned = executor.execute(problem, config, mode="functional")
    serial = SerialExecutor(system).execute(problem, mode="functional")
    assert tuned.matches(serial), "tuned execution must agree with the serial sweep"
    print(
        f"  functional run OK (matches serial); simulated rtime "
        f"{tuned.rtime:.4f}s vs serial {serial.rtime:.4f}s "
        f"({serial.rtime / tuned.rtime:.1f}x)"
    )

    # ------------------------------------------------------------------
    # 3. The same workflow at paper scale, in simulate mode.
    # ------------------------------------------------------------------
    big = SyntheticApp(dim=2700, tsize=8000, dsize=1)
    big_config = tuner.tune(big)
    predicted = executor.execute(big.problem(), big_config, mode="simulate")
    serial_pred = tuner.cost_model.baseline_serial(big.input_params())
    print(
        f"\nSynthetic 2700x2700, tsize=8000: tuned config = {big_config.describe()}\n"
        f"  predicted runtime {predicted.rtime:.1f}s vs serial {serial_pred:.1f}s "
        f"({serial_pred / predicted.rtime:.1f}x speedup)"
    )


if __name__ == "__main__":
    main()
