#!/usr/bin/env python
"""Quickstart: tune and run a wavefront application in a few lines.

The single public entry point is :class:`repro.Session` — one object that
plans, executes and serves, mirroring the paper's deployment scenario:

1. pick a target platform (one of the paper's Table 4 systems),
2. the session trains the autotuner on the synthetic application lazily,
   "in the factory", on the first planning call,
3. hand it a previously unseen wavefront application and get an
   inspectable, replayable plan back,
4. execute the plan — functionally on a small grid (checked against the
   serial sweep) and in simulate mode at the paper's problem scale —
   and finish with a batched-serving taste of ``solve_many``.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Session
from repro.hardware import platforms
from repro.utils.logging import configure_logging, get_logger

log = get_logger("examples.quickstart")


def main() -> None:
    """Run the end-to-end session workflow on the i7-2600K platform."""
    configure_logging()
    system = platforms.I7_2600K
    print(system.describe())

    with Session(system=system, tuner="learned") as session:
        # --------------------------------------------------------------
        # 1. Plan an unseen application: a small Nash-equilibrium problem.
        #    The first plan() call trains the autotuner on the synthetic
        #    sweep (reduced space by default so the example stays quick).
        # --------------------------------------------------------------
        print("\nPlanning (trains the autotuner on the synthetic application) ...")
        plan = session.plan("nash-equilibrium", 64)
        tuner = session.tuner  # the AutoTuner behind the session
        print(
            f"  held-out efficiency: mean {tuner.validation.mean_efficiency:.2%}, "
            f"min {tuner.validation.min_efficiency:.2%}"
        )
        print(f"  resolved plan: {plan.describe()}")

        # --------------------------------------------------------------
        # 2. Execute the plan functionally and verify against serial.
        # --------------------------------------------------------------
        tuned = session.run(plan)
        serial = session.solve("nash-equilibrium", 64, backend="serial")
        assert tuned.matches(serial), "tuned execution must agree with the serial sweep"
        print(
            f"  functional run OK (matches serial); simulated rtime "
            f"{tuned.rtime:.4f}s vs serial {serial.rtime:.4f}s "
            f"({serial.rtime / tuned.rtime:.1f}x)"
        )

        # --------------------------------------------------------------
        # 3. The same workflow at paper scale, in simulate mode.
        # --------------------------------------------------------------
        big_plan = session.plan("synthetic", 2700, tsize=8000, dsize=1)
        predicted = session.run(big_plan, mode="simulate")
        serial_pred = tuner.cost_model.baseline_serial(big_plan.params)
        print(
            f"\nSynthetic 2700x2700, tsize=8000: tuned config = "
            f"{big_plan.tunables.describe()}\n"
            f"  predicted runtime {predicted.rtime:.1f}s vs serial {serial_pred:.1f}s "
            f"({serial_pred / predicted.rtime:.1f}x speedup)"
        )

        # --------------------------------------------------------------
        # 4. Batched serving: repeated requests hit the tuned-plan cache.
        # --------------------------------------------------------------
        results = session.solve_many([("nash-equilibrium", 64)] * 25)
        info = session.cache_info()
        print(
            f"\nServed {len(results)} repeated requests with "
            f"{info['requests']['plans_resolved']} tuner resolution(s) and "
            f"{info['plans']['hits']} plan-cache hits."
        )


if __name__ == "__main__":
    main()
