#!/usr/bin/env python
"""Biological sequence comparison (Smith-Waterman) through the framework.

The paper's fine-grained evaluation application: enormous grids, almost no
work per cell.  The interesting outcome is the *tuning decision*: the learned
model maps every instance to a CPU-only configuration (band = -1), exactly as
Section 4.2 reports, because kernel-launch and transfer overheads can never
be amortised at tsize ~ 0.5.

Run:  python examples/sequence_alignment.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.sequence import SequenceComparisonApp, decode_dna
from repro.autotuner.tuner import AutoTuner
from repro.core.params import InputParams
from repro.hardware import platforms
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.serial import SerialExecutor


def align_and_report(similarity: float, system) -> None:
    app = SequenceComparisonApp(dim=96, similarity=similarity, seed=42)
    problem = app.problem()
    kernel = problem.kernel

    serial = SerialExecutor(system).execute(problem)
    best_score = float(np.max(serial.grid.values))
    print(
        f"  similarity {similarity:.0%}: best local alignment score {best_score:.0f} "
        f"(query prefix {decode_dna(kernel.seq_a[:24])}...)"
    )


def main() -> None:
    system = platforms.I7_3820
    print(f"Target system: {system.name}\n")

    print("Alignment scores for sequence pairs of varying similarity:")
    for similarity in (0.95, 0.7, 0.3):
        align_and_report(similarity, system)

    # ------------------------------------------------------------------
    # What does the autotuner decide for Smith-Waterman at paper scale?
    # ------------------------------------------------------------------
    print("\nTraining the autotuner and tuning Smith-Waterman instances ...")
    tuner = AutoTuner.quick(system)
    print(f"{'dim':>6} | tuned configuration")
    for dim in (500, 1100, 1900, 2700, 3100):
        params = InputParams(dim=dim, tsize=0.5, dsize=1)
        config = tuner.tune(params)
        print(f"{dim:>6} | {config.describe()}")
    print(
        "\nAs in the paper (Section 4.2), the fine-grained kernel maps to "
        "CPU-only configurations: the GPU is never worth starting."
    )

    # ------------------------------------------------------------------
    # Confirm functionally that the tuned (CPU-only) configuration computes
    # the same alignment matrix as the serial reference.
    # ------------------------------------------------------------------
    small = SequenceComparisonApp(dim=80, similarity=0.7, seed=7).problem()
    config = tuner.tune(small)
    tuned = HybridExecutor(system).execute(small, config)
    reference = SerialExecutor(system).execute(small)
    assert tuned.matches(reference)
    print("\nFunctional check passed: tuned execution reproduces the serial alignment matrix.")


if __name__ == "__main__":
    main()
