"""Tests for the user-facing wavefront pattern API."""

import numpy as np
import pytest

from repro.core.exceptions import InvalidParameterError, KernelError
from repro.core.pattern import FunctionKernel, WavefrontProblem


def max_plus_kernel():
    return FunctionKernel(
        lambda i, j, w, n, nw: np.maximum(w, n) + 1.0, tsize=2.0, dsize=1, name="max-plus"
    )


class TestFunctionKernel:
    def test_cell_wraps_diagonal(self):
        kernel = max_plus_kernel()
        assert kernel.cell(1, 1, 2.0, 5.0, 0.0) == 6.0

    def test_metadata(self):
        kernel = max_plus_kernel()
        assert kernel.tsize == 2.0 and kernel.dsize == 1 and kernel.name == "max-plus"

    def test_invalid_metadata_rejected(self):
        with pytest.raises(InvalidParameterError):
            FunctionKernel(lambda *a: a, tsize=0)
        with pytest.raises(InvalidParameterError):
            FunctionKernel(lambda *a: a, dsize=-1)

    def test_validate_output_shape(self):
        kernel = max_plus_kernel()
        with pytest.raises(KernelError):
            kernel.validate_output(np.zeros((2, 2)), 4)
        with pytest.raises(KernelError):
            kernel.validate_output(np.zeros(3), 4)

    def test_validate_output_rejects_nan(self):
        kernel = max_plus_kernel()
        with pytest.raises(KernelError):
            kernel.validate_output(np.array([1.0, np.nan]), 2)

    def test_validate_output_passthrough(self):
        kernel = max_plus_kernel()
        out = kernel.validate_output(np.array([1, 2, 3]), 3)
        assert out.dtype == float


class TestWavefrontProblem:
    def test_input_params_from_kernel(self):
        problem = WavefrontProblem(dim=16, kernel=max_plus_kernel())
        params = problem.input_params()
        assert params.dim == 16 and params.tsize == 2.0 and params.dsize == 1

    def test_make_grid_matches_dsize(self):
        problem = WavefrontProblem(dim=8, kernel=max_plus_kernel())
        grid = problem.make_grid()
        assert grid.dim == 8 and grid.dsize == 1

    def test_features(self):
        problem = WavefrontProblem(dim=8, kernel=max_plus_kernel())
        assert problem.features() == {"dim": 8.0, "tsize": 2.0, "dsize": 1.0}

    def test_name_defaults_to_kernel_name(self):
        assert WavefrontProblem(dim=8, kernel=max_plus_kernel()).name == "max-plus"
        assert WavefrontProblem(dim=8, kernel=max_plus_kernel(), name="custom").name == "custom"

    def test_small_dim_rejected(self):
        with pytest.raises(InvalidParameterError):
            WavefrontProblem(dim=1, kernel=max_plus_kernel())
