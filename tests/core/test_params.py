"""Tests for the input/tunable parameter models (Tables 1 and 2)."""

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.core.params import InputParams, TunableParams, SERIAL_BASELINE


class TestInputParams:
    def test_element_size_matches_paper_examples(self):
        # "dsize=5 means size of each element is 8+5*8=48 bytes"
        assert InputParams(dim=500, tsize=10, dsize=5).element_nbytes == 48
        assert InputParams(dim=500, tsize=10, dsize=1).element_nbytes == 16

    def test_cells_and_diagonals(self):
        p = InputParams(dim=6, tsize=1, dsize=0)
        assert p.cells == 36
        assert p.n_diagonals == 11
        assert p.main_diagonal == 5

    def test_total_nbytes(self):
        p = InputParams(dim=10, tsize=1, dsize=1)
        assert p.total_nbytes == 100 * 16

    def test_features_keys(self):
        feats = InputParams(dim=700, tsize=750, dsize=4).features()
        assert set(feats) == {"dim", "tsize", "dsize"}
        assert feats["tsize"] == 750.0

    def test_with_replaces_fields(self):
        p = InputParams(dim=700, tsize=10, dsize=1)
        q = p.with_(tsize=500)
        assert q.tsize == 500 and q.dim == 700
        assert p.tsize == 10  # original unchanged

    @pytest.mark.parametrize(
        "kwargs",
        [dict(dim=1, tsize=1, dsize=0), dict(dim=10, tsize=0, dsize=0), dict(dim=10, tsize=1, dsize=-1)],
    )
    def test_invalid_inputs_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            InputParams(**kwargs)


class TestTunableParams:
    def test_defaults_are_cpu_only(self):
        t = TunableParams()
        assert t.is_cpu_only and not t.uses_gpu
        assert t.offloaded_diagonals == 0

    def test_encoding_no_gpu(self):
        t = TunableParams.from_encoding(cpu_tile=4, band=-1, halo=7, gpu_tile=8)
        assert t.gpu_count == 0 and t.band == -1 and t.halo == -1 and t.gpu_tile == 1

    def test_encoding_single_gpu(self):
        t = TunableParams.from_encoding(cpu_tile=2, band=10, halo=-1, gpu_tile=4)
        assert t.gpu_count == 1 and t.band == 10 and t.halo == -1
        assert t.offloaded_diagonals == 21

    def test_encoding_dual_gpu(self):
        t = TunableParams.from_encoding(cpu_tile=2, band=10, halo=0, gpu_tile=1)
        assert t.gpu_count == 2 and t.halo == 0

    def test_encoding_roundtrip(self):
        t = TunableParams.from_encoding(cpu_tile=8, band=33, halo=5, gpu_tile=4)
        assert TunableParams.from_encoding(*[t.to_encoding()[i] for i in (0, 1, 2, 3)]) == t

    def test_inconsistent_combinations_rejected(self):
        with pytest.raises(InvalidParameterError):
            TunableParams(cpu_tile=1, band=5, gpu_count=0)
        with pytest.raises(InvalidParameterError):
            TunableParams(cpu_tile=1, band=-1, gpu_count=1)
        with pytest.raises(InvalidParameterError):
            TunableParams(cpu_tile=1, band=5, gpu_count=1, halo=3)
        with pytest.raises(InvalidParameterError):
            TunableParams(cpu_tile=1, band=5, gpu_count=2, halo=-1)

    def test_clipping_band_and_halo(self):
        t = TunableParams.from_encoding(cpu_tile=16, band=5000, halo=4000, gpu_tile=64)
        c = t.clipped(dim=100)
        assert c.band == 99
        assert c.cpu_tile == 16 or c.cpu_tile <= 100
        assert c.halo <= (100 - c.band) // 2 + 1
        assert c.gpu_tile <= 100

    def test_clipping_preserves_cpu_only(self):
        t = TunableParams(cpu_tile=8)
        assert t.clipped(64) == TunableParams(cpu_tile=8)

    def test_from_features_rounding(self):
        t = TunableParams.from_features(
            {"cpu_tile": 3.7, "band": 10.2, "halo": -0.6, "gpu_tile": 1.1}, dim=64
        )
        assert t.cpu_tile == 4 and t.band == 10 and t.gpu_count == 1

    def test_from_features_negative_band_means_cpu(self):
        t = TunableParams.from_features({"cpu_tile": 2.0, "band": -0.8, "halo": 3.0})
        assert t.is_cpu_only

    def test_describe_mentions_mode(self):
        assert "CPU-only" in TunableParams(cpu_tile=2).describe()
        dual = TunableParams.from_encoding(1, 5, 2, 1)
        assert "halo=2" in dual.describe()

    def test_serial_baseline_constant(self):
        assert SERIAL_BASELINE.is_cpu_only and SERIAL_BASELINE.cpu_tile == 1

    def test_ordering_and_hashing(self):
        a = TunableParams(cpu_tile=1)
        b = TunableParams(cpu_tile=2)
        assert a < b
        assert len({a, b, TunableParams(cpu_tile=1)}) == 2
