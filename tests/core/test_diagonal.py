"""Tests for the anti-diagonal geometry helpers."""

import numpy as np
import pytest

from repro.core import diagonal as dg
from repro.core.exceptions import InvalidParameterError


class TestDiagonalGeometry:
    def test_num_diagonals(self):
        assert dg.num_diagonals(4, 6) == 9  # the paper's Figure 1 example
        assert dg.num_diagonals(5, 5) == 9

    def test_lengths_square(self):
        lengths = [dg.diagonal_length(d, 4, 4) for d in range(7)]
        assert lengths == [1, 2, 3, 4, 3, 2, 1]

    def test_lengths_rectangular(self):
        lengths = [dg.diagonal_length(d, 4, 6) for d in range(9)]
        assert lengths == [1, 2, 3, 4, 4, 4, 3, 2, 1]
        assert max(lengths) == 4  # "maximum parallelism ... at iterations 3,4 and 5"

    def test_diagonal_lengths_vector_matches_scalar(self):
        vec = dg.diagonal_lengths(7, 5)
        assert vec.shape == (11,)
        for d in range(11):
            assert vec[d] == dg.diagonal_length(d, 7, 5)

    def test_diagonal_cells_sum_to_grid(self):
        total = sum(dg.diagonal_cells(d, 5, 7).shape[0] for d in range(11))
        assert total == 35

    def test_diagonal_cells_are_on_diagonal_and_ordered(self):
        cells = dg.diagonal_cells(6, 5, 7)
        assert np.all(cells.sum(axis=1) == 6)
        assert np.all(np.diff(cells[:, 0]) == 1)

    def test_diagonal_bounds(self):
        assert dg.diagonal_bounds(0, 4, 4) == (0, 0)
        assert dg.diagonal_bounds(3, 4, 4) == (0, 3)
        assert dg.diagonal_bounds(5, 4, 4) == (2, 3)

    def test_cells_before_diagonal(self):
        dim = 6
        for d in range(2 * dim):
            expected = sum(dg.diagonal_length(k, dim, dim) for k in range(min(d, 2 * dim - 1)))
            assert dg.cells_before_diagonal(d, dim) == expected
        assert dg.cells_before_diagonal(2 * dim - 1, dim) == dim * dim

    def test_cells_in_diagonal_range(self):
        assert dg.cells_in_diagonal_range(0, 10, 6) == 36
        assert dg.cells_in_diagonal_range(5, 5, 6) == 6
        assert dg.cells_in_diagonal_range(7, 3, 6) == 0

    def test_band_diagonal_range_centred_on_main(self):
        lo, hi = dg.band_diagonal_range(dim=10, band=2)
        assert (lo, hi) == (7, 11)
        assert hi - lo + 1 == 5  # 2*band + 1 diagonals

    def test_band_diagonal_range_clipped(self):
        lo, hi = dg.band_diagonal_range(dim=10, band=100)
        assert (lo, hi) == (0, 18)

    @pytest.mark.parametrize("bad_call", [
        lambda: dg.diagonal_length(-1, 4, 4),
        lambda: dg.diagonal_length(7, 4, 4),
        lambda: dg.num_diagonals(0, 4),
        lambda: dg.band_diagonal_range(10, -1),
        lambda: dg.cells_before_diagonal(-1, 4),
    ])
    def test_out_of_range_rejected(self, bad_call):
        with pytest.raises(InvalidParameterError):
            bad_call()
