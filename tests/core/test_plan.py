"""Tests for the three-phase hybrid plan."""

import pytest

from repro.core.exceptions import PlanError
from repro.core.params import InputParams, TunableParams
from repro.core.plan import Phase, ThreePhasePlan


def plan_for(dim=20, band=-1, halo=-1, cpu_tile=4, tsize=100, dsize=1, gpu_tile=1):
    params = InputParams(dim=dim, tsize=tsize, dsize=dsize)
    tunables = TunableParams.from_encoding(cpu_tile, band, halo, gpu_tile)
    return ThreePhasePlan(params, tunables)


class TestThreePhasePlan:
    def test_cpu_only_plan_has_empty_gpu_phase(self):
        plan = plan_for(band=-1)
        assert plan.is_all_cpu and not plan.is_all_gpu
        assert plan.gpu.is_empty
        assert plan.pre.cells(20) + plan.post.cells(20) == 400

    def test_band_covers_2b_plus_1_diagonals(self):
        plan = plan_for(dim=20, band=3)
        assert plan.gpu.n_diagonals == 7
        assert plan.gpu.lo == 16 and plan.gpu.hi == 22

    def test_full_band_is_all_gpu(self):
        plan = plan_for(dim=20, band=19)
        assert plan.is_all_gpu
        assert plan.pre.is_empty and plan.post.is_empty
        assert plan.gpu.cells(20) == 400

    def test_cells_partition_the_grid(self):
        for band in (-1, 0, 1, 5, 10, 19):
            plan = plan_for(dim=20, band=band)
            cells = plan.cells_per_phase()
            assert sum(cells.values()) == 400

    def test_phase_of_diagonal(self):
        plan = plan_for(dim=20, band=2)
        assert plan.phase_of_diagonal(0) is Phase.CPU_PRE
        assert plan.phase_of_diagonal(19) is Phase.GPU_BAND
        assert plan.phase_of_diagonal(38) is Phase.CPU_POST
        with pytest.raises(PlanError):
            plan.phase_of_diagonal(39)

    def test_band_larger_than_grid_is_clipped(self):
        plan = plan_for(dim=20, band=500)
        assert plan.is_all_gpu

    def test_gpu_diagonal_lengths(self):
        plan = plan_for(dim=10, band=1)
        assert plan.gpu_diagonal_lengths() == [9, 10, 9]
        assert plan_for(dim=10, band=-1).gpu_diagonal_lengths() == []

    def test_offload_bytes_include_boundary(self):
        params = InputParams(dim=10, tsize=1, dsize=1)
        plan = ThreePhasePlan(params, TunableParams.from_encoding(1, 1, -1, 1))
        band_cells = plan.gpu.cells(10)
        boundary_cells = 8 + 7  # diagonals 7 and 6
        assert plan.offload_nbytes() == (band_cells + boundary_cells) * 16

    def test_offload_bytes_zero_for_cpu_only(self):
        assert plan_for(band=-1).offload_nbytes() == 0

    def test_symmetric_phases_for_centred_band(self):
        plan = plan_for(dim=21, band=4)
        assert plan.pre.n_diagonals == plan.post.n_diagonals
        assert plan.pre.cells(21) == plan.post.cells(21)

    def test_describe_mentions_phases(self):
        text = plan_for(dim=20, band=3).describe()
        assert "CPU_PRE" in text and "GPU_BAND" in text and "CPU_POST" in text

    def test_dual_gpu_plan_accepted(self):
        plan = plan_for(dim=30, band=10, halo=2)
        assert plan.tunables.gpu_count == 2
        assert not plan.gpu.is_empty
