"""Tests for the Table 3 parameter space."""

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.core.parameter_space import (
    PAPER_CPU_TILES,
    PAPER_DIMS,
    PAPER_DSIZES,
    PAPER_GPU_TILES,
    PAPER_TSIZES,
    ParameterSpace,
)
from repro.core.params import InputParams


class TestPaperRanges:
    def test_table3_values(self):
        # Spot-check the published Table 3 ranges.
        assert PAPER_DIMS[0] == 500 and PAPER_DIMS[-1] == 3100
        assert 12000 in PAPER_TSIZES and 10 in PAPER_TSIZES
        assert PAPER_DSIZES == (1, 3, 5)
        assert PAPER_CPU_TILES == (1, 2, 4, 8, 10)
        assert PAPER_GPU_TILES == (1, 4, 8, 11, 16, 21, 25)

    def test_paper_space_instance_count(self):
        space = ParameterSpace.paper()
        assert space.n_instances == len(PAPER_DIMS) * len(PAPER_TSIZES) * len(PAPER_DSIZES)


class TestParameterSpace:
    def test_instances_enumeration(self):
        space = ParameterSpace.tiny()
        instances = list(space.instances())
        assert len(instances) == space.n_instances
        assert all(isinstance(p, InputParams) for p in instances)

    def test_band_values_contain_anchors(self):
        space = ParameterSpace.reduced()
        bands = space.band_values(1100)
        assert -1 in bands and 0 in bands and 1099 in bands
        assert bands == sorted(bands)
        assert all(-1 <= b <= 1099 for b in bands)

    def test_band_values_deterministic(self):
        space = ParameterSpace.reduced()
        assert space.band_values(1900) == space.band_values(1900)

    def test_band_values_irregular_spacing(self):
        # Interior values should not form a perfectly regular lattice.
        bands = [b for b in ParameterSpace.reduced().band_values(2700) if b > 0]
        gaps = {b2 - b1 for b1, b2 in zip(bands, bands[1:])}
        assert len(gaps) > 1

    def test_halo_values_for_cpu_band(self):
        assert ParameterSpace.tiny().halo_values(128, -1) == [-1]

    def test_halo_values_bounded_by_half_first_diagonal(self):
        space = ParameterSpace.reduced()
        halos = space.halo_values(1100, 100)
        max_allowed = (1100 - 100) // 2
        assert all(h <= max_allowed for h in halos)
        assert -1 in halos and 0 in halos

    def test_configurations_respect_gpu_limit(self):
        space = ParameterSpace.tiny()
        instance = InputParams(dim=64, tsize=10, dsize=1)
        cpu_only = list(space.configurations(instance, max_gpus=0))
        assert all(c.is_cpu_only for c in cpu_only)
        single = list(space.configurations(instance, max_gpus=1))
        assert all(c.gpu_count <= 1 for c in single)
        dual = list(space.configurations(instance, max_gpus=2))
        assert any(c.gpu_count == 2 for c in dual)

    def test_configurations_are_valid_for_instance(self):
        space = ParameterSpace.tiny()
        instance = InputParams(dim=64, tsize=10, dsize=1)
        for config in space.configurations(instance):
            assert config.band <= 63
            assert config.cpu_tile <= 64

    def test_count_configurations_deduplicates(self):
        space = ParameterSpace.tiny()
        instance = InputParams(dim=64, tsize=10, dsize=1)
        assert space.count_configurations(instance) <= len(
            list(space.configurations(instance))
        )

    def test_describe_contents(self):
        info = ParameterSpace.reduced().describe()
        assert info["n_instances"] == ParameterSpace.reduced().n_instances
        assert "dims" in info and "gpu_tiles" in info

    def test_invalid_construction(self):
        with pytest.raises(InvalidParameterError):
            ParameterSpace(dims=())
        with pytest.raises(InvalidParameterError):
            ParameterSpace(n_band_values=0)
